# Development targets for the Leviathan reproduction.

PYTHON ?= python

.PHONY: install test bench experiments report examples clean

install:
	pip install -e . || pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all

report:
	$(PYTHON) -m repro.experiments all --markdown report.md

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -f report.md

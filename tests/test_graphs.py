"""Unit and property tests for the graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.graphs import Graph, community_graph, uniform_graph


def check_csr_invariants(graph):
    assert graph.offsets[0] == 0
    assert graph.offsets[-1] == graph.n_edges
    assert np.all(np.diff(graph.offsets) >= 0)
    assert np.all(graph.neighbors >= 0)
    assert np.all(graph.neighbors < graph.n_vertices)
    assert graph.out_degree.sum() == graph.n_edges


class TestUniformGraph:
    def test_shape(self):
        graph = uniform_graph(100, 500, seed=1)
        assert graph.n_vertices == 100
        assert graph.n_edges == 500
        check_csr_invariants(graph)

    def test_no_self_loops(self):
        graph = uniform_graph(50, 400, seed=2)
        for src, dst in graph.edges():
            assert src != dst

    def test_deterministic(self):
        a = uniform_graph(64, 256, seed=3)
        b = uniform_graph(64, 256, seed=3)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert np.array_equal(a.offsets, b.offsets)

    def test_seed_changes_graph(self):
        a = uniform_graph(64, 256, seed=3)
        b = uniform_graph(64, 256, seed=4)
        assert not np.array_equal(a.neighbors, b.neighbors)

    def test_rejects_tiny_graphs(self):
        with pytest.raises(ValueError):
            uniform_graph(1, 10)

    def test_in_neighbors(self):
        graph = uniform_graph(20, 100, seed=5)
        for v in range(20):
            assert len(graph.in_neighbors(v)) == graph.in_degree(v)

    def test_edges_iterates_all(self):
        graph = uniform_graph(20, 100, seed=5)
        assert sum(1 for _ in graph.edges()) == 100


class TestCommunityGraph:
    def test_shape(self):
        graph = community_graph(200, 1000, seed=1)
        check_csr_invariants(graph)
        assert graph.n_edges == 1000

    def test_community_structure_measurable(self):
        """Neighborhoods overlap far more than in a uniform graph."""

        def neighborhood_overlap(graph):
            # Average Jaccard-ish overlap between the in-neighbor sets
            # of endpoints of edges: high in community graphs.
            total, count = 0.0, 0
            for dst in range(0, graph.n_vertices, 7):
                mine = set(graph.in_neighbors(dst).tolist())
                if not mine:
                    continue
                for src in list(mine)[:3]:
                    theirs = set(graph.in_neighbors(int(src)).tolist())
                    if theirs:
                        union = mine | theirs
                        total += len(mine & theirs) / len(union)
                        count += 1
            return total / max(count, 1)

        comm = community_graph(
            256, 4096, n_communities=8, intra_fraction=0.95, seed=7
        )
        unif = uniform_graph(256, 4096, seed=7)
        assert neighborhood_overlap(comm) > 2 * neighborhood_overlap(unif)

    def test_explicit_community_count(self):
        graph = community_graph(100, 500, n_communities=5, seed=2)
        check_csr_invariants(graph)

    def test_intra_fraction_zero_is_uniform_like(self):
        graph = community_graph(100, 500, intra_fraction=0.0, seed=2)
        check_csr_invariants(graph)

    def test_deterministic(self):
        a = community_graph(100, 500, seed=9)
        b = community_graph(100, 500, seed=9)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_locality_advantage_of_bdfs(self):
        """The reason HATS works: BDFS order has better LRU locality on
        source accesses than layout order, on a community graph."""
        from collections import OrderedDict

        graph = community_graph(512, 8192, n_communities=16, intra_fraction=0.95, seed=3)

        def lru_misses(sequence, capacity):
            cache = OrderedDict()
            misses = 0
            for item in sequence:
                if item in cache:
                    cache.move_to_end(item)
                else:
                    misses += 1
                    cache[item] = True
                    if len(cache) > capacity:
                        cache.popitem(last=False)
            return misses

        csr_sources = [int(s) for s, _ in graph.edges()]
        # A bounded DFS over the same graph.
        active = np.ones(graph.n_vertices, dtype=bool)
        bdfs_sources = []
        for root in range(graph.n_vertices):
            if not active[root]:
                continue
            active[root] = False
            stack = [root]
            while stack:
                dst = stack.pop()
                for src in graph.in_neighbors(dst):
                    src = int(src)
                    bdfs_sources.append(src)
                    if len(stack) < 8 and active[src]:
                        active[src] = False
                        stack.append(src)
        assert lru_misses(bdfs_sources, 64) < lru_misses(csr_sources, 64)


@settings(max_examples=20, deadline=None)
@given(
    n_vertices=st.integers(min_value=4, max_value=128),
    n_edges=st.integers(min_value=1, max_value=512),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_uniform_graph_invariants(n_vertices, n_edges, seed):
    graph = uniform_graph(n_vertices, n_edges, seed=seed)
    check_csr_invariants(graph)


@settings(max_examples=15, deadline=None)
@given(
    n_vertices=st.integers(min_value=8, max_value=128),
    n_edges=st.integers(min_value=8, max_value=512),
    intra=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_community_graph_invariants(n_vertices, n_edges, intra, seed):
    graph = community_graph(n_vertices, n_edges, intra_fraction=intra, seed=seed)
    check_csr_invariants(graph)

"""Unit tests for data-triggered actions (Morphs)."""

import pytest

from repro.core.morph import Morph, MorphLayoutError, MorphView
from repro.sim.ops import Compute, Load, Store
from tests.conftest import run_program


class RecordingMorph(Morph):
    """Zero-fills on construction; records every ctor/dtor call."""

    def __init__(self, runtime, n_actors=32, object_size=8, level="l2", **kwargs):
        self.constructions = []
        self.destructions = []
        super().__init__(runtime, level, n_actors, object_size, **kwargs)

    def construct(self, view, index):
        self.constructions.append((view.tile, index))
        self.machine.mem[self.get_actor_addr(index)] = index * 10
        yield Compute(1)

    def destruct(self, view, index, dirty):
        self.destructions.append((view.tile, index, dirty))
        yield Compute(1)


class TestRegistration:
    def test_registered_on_creation(self, runtime):
        morph = RecordingMorph(runtime)
        assert morph.registered
        assert morph in runtime.morphs

    def test_invalid_level_rejected(self, runtime):
        with pytest.raises(ValueError):
            Morph(runtime, "l3", 8, 8)

    def test_invalid_count_rejected(self, runtime):
        with pytest.raises(ValueError):
            Morph(runtime, "l2", 0, 8)

    def test_overlapping_morphs_rejected(self, runtime):
        morph = RecordingMorph(runtime)
        with pytest.raises(ValueError):
            runtime.register_morph(morph)

    def test_unregister_removes(self, runtime):
        morph = RecordingMorph(runtime)
        morph.unregister()
        assert not morph.registered
        assert morph not in runtime.morphs
        morph.unregister()  # idempotent

    def test_unpadded_non_dividing_layout_rejected(self, runtime):
        with pytest.raises(MorphLayoutError):
            RecordingMorph(runtime, object_size=6, padding=False)

    def test_unpadded_dividing_layout_allowed(self, runtime):
        morph = RecordingMorph(runtime, object_size=8, padding=False)
        assert morph.registered


class TestTriggers:
    def test_constructor_on_miss(self, machine, runtime):
        morph = RecordingMorph(runtime)
        run_program(machine, [Load(morph.get_actor_addr(3), 8)])
        # All eight 8 B objects of the line construct together.
        assert len(morph.constructions) == 8
        assert (0, 3) in morph.constructions
        assert machine.mem[morph.get_actor_addr(3)] == 30

    def test_no_dram_for_phantom_fill(self, machine, runtime):
        morph = RecordingMorph(runtime)
        run_program(machine, [Load(morph.get_actor_addr(0), 8)])
        assert machine.stats["dram.accesses"] == 0

    def test_constructor_runs_once_while_cached(self, machine, runtime):
        morph = RecordingMorph(runtime)
        run_program(
            machine,
            [Load(morph.get_actor_addr(0), 8), Load(morph.get_actor_addr(1), 8)],
        )
        assert len(morph.constructions) == 8  # one line, one construction

    def test_destructor_on_unregister_flush(self, machine, runtime):
        morph = RecordingMorph(runtime)
        run_program(machine, [Store(morph.get_actor_addr(0), 8)])
        morph.unregister()
        assert len(morph.destructions) == 8
        assert any(dirty for _, _, dirty in morph.destructions)

    def test_clean_destruction_flag(self, machine, runtime):
        morph = RecordingMorph(runtime)
        run_program(machine, [Load(morph.get_actor_addr(0), 8)])
        morph.unregister()
        assert all(not dirty for _, _, dirty in morph.destructions)

    def test_llc_level_morph(self, machine, runtime):
        morph = RecordingMorph(runtime, level="llc")
        run_program(machine, [Load(morph.get_actor_addr(0), 8)])
        assert machine.stats["morph.llc_constructions"] == 1
        assert machine.stats["dram.accesses"] == 0

    def test_llc_ctor_runs_at_bank_engine(self, machine, runtime):
        morph = RecordingMorph(runtime, level="llc")
        addr = morph.get_actor_addr(0)
        bank = machine.hierarchy.bank_of(machine.hierarchy.line_of(addr))
        run_program(machine, [Load(addr, 8)], tile=(bank + 1) % 4)
        assert morph.constructions[0][0] == bank


class TestLargeObjects:
    def test_multi_line_object_constructs_once(self, machine, runtime):
        morph = RecordingMorph(runtime, n_actors=8, object_size=128)
        run_program(machine, [Load(morph.get_actor_addr(0), 128)])
        assert morph.constructions == [(0, 0)]

    def test_all_lines_inserted_together(self, machine, runtime):
        morph = RecordingMorph(runtime, n_actors=8, object_size=128)
        run_program(machine, [Load(morph.get_actor_addr(0), 8)])
        lines = morph.object_lines(0)
        assert len(lines) == 2
        for line in lines:
            assert machine.hierarchy.l2[0].contains(line)

    def test_object_lines_geometry(self, machine, runtime):
        morph = RecordingMorph(runtime, n_actors=8, object_size=256)
        assert len(morph.object_lines(0)) == 4


class TestViews:
    def test_one_view_per_tile(self, runtime):
        morph = RecordingMorph(runtime)
        assert len(morph.views) == runtime.machine.config.n_tiles
        assert all(isinstance(v, MorphView) for v in morph.views)

    def test_view_local_state(self, runtime):
        morph = RecordingMorph(runtime)
        morph.views[1].state["log"] = [1, 2]
        assert morph.views[0].state == {}

    def test_get_offset(self, runtime):
        morph = RecordingMorph(runtime)
        view = morph.views[0]
        assert view.get_offset(morph.get_actor_addr(5)) == 5


class TestIndexing:
    def test_actor_addr_index_roundtrip(self, runtime):
        morph = RecordingMorph(runtime, n_actors=16, object_size=24)
        for i in range(16):
            assert morph.index_of(morph.get_actor_addr(i)) == i

    def test_covers_line(self, runtime):
        morph = RecordingMorph(runtime)
        assert morph.covers_line(morph.base // 64)
        assert not morph.covers_line(morph.bound // 64 + 100)

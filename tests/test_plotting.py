"""Unit tests for the ASCII figure rendering."""

from repro.experiments.plotting import bar_chart, line_plot, speedup_chart
from repro.experiments.runner import Experiment


class TestBarChart:
    def test_renders_labels_and_values(self):
        chart = bar_chart([("baseline", 1.0), ("leviathan", 3.7)], unit="x")
        assert "baseline" in chart and "leviathan" in chart
        assert "3.7x" in chart

    def test_bar_lengths_proportional(self):
        chart = bar_chart([("a", 1.0), ("b", 2.0)])
        line_a, line_b = chart.splitlines()
        assert line_b.count("#") > line_a.count("#")

    def test_baseline_marker(self):
        chart = bar_chart([("a", 0.5), ("b", 2.0)], baseline=1.0)
        assert "|" in chart

    def test_non_finite_values(self):
        chart = bar_chart([("broken", float("nan")), ("ok", 1.0)])
        assert "(n/a)" in chart

    def test_empty(self):
        assert bar_chart([]) == "(empty chart)"


class TestLinePlot:
    def test_renders_points(self):
        plot = line_plot([(1, 1.0), (2, 1.5), (4, 1.2)], x_label="size", y_label="speedup")
        assert plot.count("*") == 3
        assert "size" in plot

    def test_needs_two_points(self):
        assert "two points" in line_plot([(1, 1.0)])

    def test_flat_series(self):
        plot = line_plot([(1, 2.0), (2, 2.0), (3, 2.0)])
        assert plot.count("*") == 3


class TestSpeedupChart:
    def test_uses_experiment_rows(self):
        exp = Experiment(name="x", paper_reference="-")
        exp.add_row(variant="baseline", speedup=1.0)
        exp.add_row(variant="leviathan", speedup=2.5)
        chart = speedup_chart(exp)
        assert "leviathan" in chart and "2.5x" in chart

    def test_skips_rows_without_speedup(self):
        exp = Experiment(name="x", paper_reference="-")
        exp.add_row(variant="a", speedup=1.0)
        exp.add_row(note="not a bar")
        assert "not a bar" not in speedup_chart(exp)

"""Unit and property tests for the padding/compaction allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import Allocator, Pool, padded_size_of


class TestPaddedSize:
    @pytest.mark.parametrize(
        "size,expected",
        [(1, 1), (6, 8), (8, 8), (24, 32), (33, 64), (64, 64), (65, 128), (128, 128), (200, 256)],
    )
    def test_next_power_of_two(self, size, expected):
        assert padded_size_of(size) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            padded_size_of(0)

    def test_rejects_beyond_hardware_max(self):
        # Four cache lines (256 B) is the evaluation's maximum.
        with pytest.raises(ValueError):
            padded_size_of(257)

    def test_custom_max(self):
        assert padded_size_of(500, max_object_lines=16) == 512


class TestPool:
    def test_addr_roundtrip(self):
        pool = Pool(base=0x1000, capacity=8, padded_size=32, entry=None)
        for i in range(8):
            addr = pool.addr_of(i)
            assert pool.index_of(addr) == i
            assert pool.index_of(addr + 31) == i

    def test_bounds(self):
        pool = Pool(base=0x1000, capacity=8, padded_size=32, entry=None)
        with pytest.raises(IndexError):
            pool.addr_of(8)
        with pytest.raises(ValueError):
            pool.index_of(0xFFF)


class TestAllocator:
    def test_padded_objects_do_not_straddle_lines(self, runtime):
        alloc = runtime.allocator(24, capacity=64)
        for _ in range(32):
            addr = alloc.allocate()
            assert addr // 64 == (addr + 23) // 64

    def test_dense_objects_may_straddle(self, runtime):
        alloc = runtime.allocator(24, capacity=64, padding=False)
        addrs = [alloc.allocate() for _ in range(32)]
        straddlers = [a for a in addrs if a // 64 != (a + 23) // 64]
        assert straddlers  # dense 24 B objects must cross lines sometimes

    def test_allocations_distinct(self, runtime):
        alloc = runtime.allocator(24, capacity=8)
        addrs = {alloc.allocate() for _ in range(40)}  # spans multiple pools
        assert len(addrs) == 40

    def test_deallocate_reuses_address(self, runtime):
        alloc = runtime.allocator(24, capacity=8)
        addr = alloc.allocate()
        alloc.deallocate(addr)
        assert alloc.allocate() == addr

    def test_deallocate_actor(self, runtime):
        from repro.core.actor import Actor

        class Obj(Actor):
            SIZE = 24

        alloc = runtime.allocator_for(Obj, capacity=8)
        obj = alloc.allocate()
        alloc.deallocate(obj)
        assert alloc.allocate().addr == obj.addr

    def test_deallocate_unallocated_rejected(self, runtime):
        from repro.core.actor import Actor

        class Obj(Actor):
            SIZE = 24

        alloc = runtime.allocator_for(Obj, capacity=8)
        with pytest.raises(ValueError):
            alloc.deallocate(Obj())

    def test_compaction_registers_translation(self, runtime):
        before = len(runtime.mapping)
        alloc = runtime.allocator(24, capacity=8, compaction=True)
        alloc.allocate()
        assert len(runtime.mapping) == before + 1

    def test_no_padding_no_translation(self, runtime):
        before = len(runtime.mapping)
        alloc = runtime.allocator(24, capacity=8, padding=False)
        alloc.allocate()
        assert len(runtime.mapping) == before

    def test_large_objects_map_to_one_bank(self, runtime):
        alloc = runtime.allocator(128, capacity=16)
        hierarchy = runtime.machine.hierarchy
        for _ in range(8):
            addr = alloc.allocate()
            lines = range(addr // 64, (addr + 127) // 64 + 1)
            banks = {hierarchy.bank_of(line) for line in lines}
            assert len(banks) == 1

    def test_no_llc_mapping_spreads_banks(self, runtime):
        alloc = runtime.allocator(128, capacity=16, llc_mapping=False)
        hierarchy = runtime.machine.hierarchy
        spread = 0
        for _ in range(8):
            addr = alloc.allocate()
            lines = range(addr // 64, (addr + 127) // 64 + 1)
            if len({hierarchy.bank_of(line) for line in lines}) > 1:
                spread += 1
        assert spread == 8  # consecutive lines interleave across banks

    def test_fragmentation_accounting(self, runtime):
        compacted = runtime.allocator(24, capacity=8, compaction=True)
        padded = runtime.allocator(24, capacity=8, compaction=False)
        assert compacted.fragmentation() == 0.0
        assert padded.fragmentation() == pytest.approx(0.25)
        assert compacted.dram_bytes_per_object() == 24
        assert padded.dram_bytes_per_object() == 32

    def test_allocate_array_contiguous_addresses(self, runtime):
        alloc = runtime.allocator(8, capacity=64)
        addrs = alloc.allocate_array(16)
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {8}

    def test_capacity_validation(self, runtime):
        with pytest.raises(ValueError):
            Allocator(runtime, 8, capacity=0)


@settings(max_examples=60, deadline=None)
@given(size=st.integers(min_value=1, max_value=256))
def test_property_padded_size_is_power_of_two_and_covers(size):
    padded = padded_size_of(size)
    assert padded >= size
    assert padded & (padded - 1) == 0
    # Padding never more than doubles the object (tight bound).
    assert padded < 2 * size or size == 1


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=200),
    count=st.integers(min_value=1, max_value=40),
)
def test_property_padded_objects_line_aligned_groups(size, count):
    """No padded object ever straddles a cache-line boundary."""
    from repro.core.runtime import Leviathan
    from repro.sim.config import small_config
    from repro.sim.system import Machine

    runtime = Leviathan(Machine(small_config()))
    alloc = runtime.allocator(size, capacity=max(count, 4))
    for _ in range(count):
        addr = alloc.allocate()
        first_line = addr // 64
        last_line = (addr + size - 1) // 64
        span = last_line - first_line + 1
        # Either within one line, or line-aligned spanning whole lines.
        if size <= 64:
            assert span == 1
        else:
            assert addr % 64 == 0

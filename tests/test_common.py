"""Unit tests for the shared workload result types."""

import pytest

from repro.workloads.common import RunResult, StudyResult


def make_result(name, cycles, energy, functional=True):
    return RunResult(
        name=name,
        cycles=cycles,
        energy_pj=energy,
        stats={"dram.accesses": 10},
        functional=functional,
        notes="" if functional else "broken layout",
    )


class TestRunResult:
    def test_speedup_over(self):
        base = make_result("base", 1000, 100)
        fast = make_result("fast", 250, 60)
        assert fast.speedup_over(base) == 4.0
        assert base.speedup_over(base) == 1.0

    def test_energy_savings_over(self):
        base = make_result("base", 1000, 100)
        lean = make_result("lean", 500, 75)
        assert lean.energy_savings_over(base) == pytest.approx(0.25)

    def test_non_functional_scores_zero(self):
        base = make_result("base", 1000, 100)
        broken = make_result("broken", float("inf"), float("inf"), functional=False)
        assert broken.speedup_over(base) == 0.0
        assert broken.energy_savings_over(base) == 0.0

    def test_stat_accessor(self):
        result = make_result("x", 1, 1)
        assert result.stat("dram.accesses") == 10
        assert result.stat("missing") == 0


class TestStudyResult:
    def make_study(self):
        study = StudyResult(study="demo", baseline="base")
        study.add(make_result("base", 1000, 100))
        study.add(make_result("lev", 400, 70))
        study.add(make_result("broken", float("inf"), float("inf"), functional=False))
        return study

    def test_speedups(self):
        study = self.make_study()
        assert study.speedups() == {"base": 1.0, "lev": 2.5, "broken": 0.0}

    def test_energy_savings(self):
        study = self.make_study()
        assert study.energy_savings()["lev"] == pytest.approx(0.30)

    def test_contains_and_getitem(self):
        study = self.make_study()
        assert "lev" in study
        assert study["lev"].cycles == 400

    def test_report_marks_broken_variants(self):
        report = self.make_study().report()
        assert "DOES NOT WORK" in report
        assert "broken layout" in report
        assert "2.50x" in report

"""Workload-level tests: functional correctness of every case-study
variant at small scale, plus qualitative orderings.

These are integration tests: each run exercises the full stack
(allocator, engines, morphs/streams, hierarchy, scheduler) end to end
and validates the computed values against NumPy oracles -- the oracle
checks live inside the workloads' ``verify`` helpers and raise on any
functional divergence.
"""

import pytest

from repro.workloads import decompress, hashtable, hats, phi

PHI_SMALL = dict(n_vertices=512, n_edges=3072, n_threads=8, seed=7)
DC_SMALL = dict(n_pixels=2048, n_accesses=4096, n_threads=1)
HT_SMALL = dict(n_buckets=16, nodes_per_bucket=8, n_threads=8, lookups_per_thread=16)
HATS_SMALL = dict(n_vertices=512, n_edges=4096, n_communities=8, seed=31)


class TestPhiFunctional:
    def test_baseline_correct(self):
        result = phi.run_baseline(PHI_SMALL)
        assert result.functional

    def test_tako_fence_correct(self):
        assert phi.run_tako(PHI_SMALL, relaxed=False).functional

    def test_tako_relax_correct(self):
        assert phi.run_tako(PHI_SMALL, relaxed=True).functional

    def test_leviathan_correct(self):
        assert phi.run_leviathan(PHI_SMALL).functional

    def test_ideal_correct(self):
        assert phi.run_leviathan(PHI_SMALL, ideal=True).functional

    def test_all_variants_same_checksum(self):
        study = phi.run_all(PHI_SMALL, include_ideal=False)
        outputs = {round(r.output, 9) for r in study.results.values()}
        assert len(outputs) == 1

    def test_leviathan_uses_no_fences(self):
        result = phi.run_leviathan(PHI_SMALL)
        assert result.stat("core.fences") == 0

    def test_tako_fence_uses_fences(self):
        result = phi.run_tako(PHI_SMALL, relaxed=False)
        assert result.stat("core.fences") >= PHI_SMALL["n_edges"]

    def test_morph_machinery_engaged(self):
        result = phi.run_leviathan(PHI_SMALL)
        assert result.stat("morph.llc_constructions") > 0
        assert result.stat("morph.llc_destructions") > 0

    def test_offload_machinery_engaged(self):
        result = phi.run_leviathan(PHI_SMALL)
        assert result.stat("engine.tasks") == PHI_SMALL["n_edges"]


class TestDecompressFunctional:
    def test_baseline_correct(self):
        assert decompress.run_baseline(DC_SMALL).functional

    def test_leviathan_correct(self):
        assert decompress.run_leviathan(DC_SMALL).functional

    def test_offload_correct(self):
        small = dict(DC_SMALL, n_accesses=512)
        assert decompress.run_offload(small).functional

    def test_no_padding_does_not_work(self):
        result = decompress.run_no_padding(DC_SMALL)
        assert not result.functional
        assert "divide" in result.notes

    def test_same_output_across_variants(self):
        a = decompress.run_baseline(DC_SMALL)
        b = decompress.run_leviathan(DC_SMALL)
        assert a.output == b.output

    def test_leviathan_decompresses_fewer_times(self):
        base = decompress.run_baseline(DC_SMALL)
        lev = decompress.run_leviathan(DC_SMALL)
        # Constructions (per line) are far fewer than per-access work.
        assert lev.stat("morph.l2_constructions") < DC_SMALL["n_accesses"] / 2


class TestHashtableFunctional:
    @pytest.mark.parametrize("size", [24, 64, 128])
    def test_baseline_correct(self, size):
        params = dict(HT_SMALL, object_size=size)
        assert hashtable.run_baseline(params).functional

    @pytest.mark.parametrize("size", [24, 64, 128])
    def test_leviathan_correct(self, size):
        params = dict(HT_SMALL, object_size=size)
        assert hashtable.run_leviathan(params).functional

    def test_no_padding_correct_but_slower_path(self):
        params = dict(HT_SMALL, object_size=24)
        assert hashtable.run_no_padding(params).functional

    def test_no_llc_mapping_correct(self):
        params = dict(HT_SMALL, object_size=128)
        assert hashtable.run_no_llc_mapping(params).functional

    def test_lookup_values_match(self):
        params = dict(HT_SMALL, object_size=64)
        base = hashtable.run_baseline(params)
        lev = hashtable.run_leviathan(params)
        assert base.output == lev.output

    def test_leviathan_reduces_noc_traffic(self):
        params = dict(HT_SMALL, object_size=64, nodes_per_bucket=16)
        base = hashtable.run_baseline(params)
        lev = hashtable.run_leviathan(params)
        assert lev.stat("noc.flit_hops") < base.stat("noc.flit_hops")


class TestHatsFunctional:
    def test_baseline_correct(self):
        assert hats.run_baseline(HATS_SMALL).functional

    def test_sw_bdfs_correct(self):
        assert hats.run_sw_bdfs(HATS_SMALL).functional

    def test_tako_correct(self):
        assert hats.run_tako(HATS_SMALL).functional

    def test_leviathan_correct(self):
        assert hats.run_leviathan(HATS_SMALL).functional

    def test_bdfs_covers_every_edge_once(self, machine):
        from repro.sim.system import Machine

        m = Machine(hats.hats_config())
        data = hats._HatsData(m, HATS_SMALL)
        edges = data.bdfs_edges()
        assert len(edges) == data.graph.n_edges
        # Destinations appear in contiguous groups (each visited once).
        dsts = [d for _, d, _ in edges]
        seen = set()
        previous = None
        for d in dsts:
            if d != previous:
                assert d not in seen
                seen.add(d)
                previous = d

    def test_engine_variants_eliminate_mispredictions(self):
        tako = hats.run_tako(HATS_SMALL)
        lev = hats.run_leviathan(HATS_SMALL)
        assert tako.stat("core.branch_mispredictions") == 0
        assert lev.stat("core.branch_mispredictions") == 0

    def test_sw_bdfs_mispredicts(self):
        sw = hats.run_sw_bdfs(HATS_SMALL)
        assert sw.stat("core.branch_mispredictions") > 0

    def test_stream_used_by_leviathan(self):
        lev = hats.run_leviathan(HATS_SMALL)
        assert lev.stat("stream.pushes") == HATS_SMALL["n_edges"]


class TestStudyResults:
    def test_phi_study_report(self):
        study = phi.run_all(PHI_SMALL, include_ideal=False)
        report = study.report()
        assert "baseline" in report and "leviathan" in report
        assert study.speedups()["baseline"] == 1.0

    def test_energy_savings_sign_convention(self):
        study = phi.run_all(PHI_SMALL, include_ideal=False)
        savings = study.energy_savings()
        assert savings["baseline"] == 0.0


class TestEnergyBreakdown:
    def test_breakdown_sums_to_total(self):
        result = phi.run_baseline(PHI_SMALL)
        assert abs(sum(result.energy_breakdown.values()) - result.energy_pj) < 1e-6

    def test_breakdown_table_normalized(self):
        from repro.workloads.common import energy_breakdown_table

        study = phi.run_all(PHI_SMALL, include_ideal=False)
        rows = energy_breakdown_table(study)
        by_variant = {r["variant"]: r for r in rows}
        assert by_variant["baseline"]["total_pct"] == 100.0
        # Leviathan has engine energy the baseline lacks.
        assert by_variant["leviathan"].get("engine.instructions", 0) > 0
        assert by_variant["baseline"].get("engine.instructions", 0) == 0

    def test_leviathan_eliminates_fence_component(self):
        from repro.workloads.common import energy_breakdown_table

        study = phi.run_all(PHI_SMALL, include_ideal=False)
        rows = {r["variant"]: r for r in energy_breakdown_table(study)}
        assert rows["baseline"].get("core.fences", 0) > 0
        assert rows["leviathan"].get("core.fences", 0) == 0


class TestComponentsFunctional:
    CC_SMALL = dict(n_vertices=256, n_edges=1536, rounds=3, n_threads=8)

    def test_baseline_correct(self):
        from repro.workloads import components

        assert components.run_baseline(self.CC_SMALL).functional

    def test_leviathan_correct(self):
        from repro.workloads import components

        assert components.run_leviathan(self.CC_SMALL).functional

    def test_min_combining_through_morph(self):
        from repro.workloads import components

        result = components.run_leviathan(self.CC_SMALL)
        assert result.stat("morph.llc_constructions") > 0
        assert result.stat("engine.tasks") > 0

    def test_same_labels_across_variants(self):
        from repro.workloads import components

        a = components.run_baseline(self.CC_SMALL)
        b = components.run_leviathan(self.CC_SMALL)
        assert a.output == b.output

    def test_labels_converge_to_components(self):
        """With enough rounds, labels equal the true component minima."""
        import networkx as nx
        import numpy as np
        from repro.sim.system import Machine
        from repro.workloads import components
        from repro.workloads.phi import phi_config

        machine = Machine(phi_config())
        params = dict(self.CC_SMALL, rounds=40)
        data = components._ComponentsData(machine, params)
        graph = nx.Graph()
        graph.add_nodes_from(range(data.n_vertices))
        graph.add_edges_from(zip(data.edge_u.tolist(), data.edge_v.tolist()))
        expected = np.empty(data.n_vertices, dtype=np.int64)
        for component in nx.connected_components(graph):
            low = min(component)
            for v in component:
                expected[v] = low
        assert np.array_equal(data.oracle, expected)


class TestHatsParallel:
    """The paper's 16-thread configuration: range-partitioned BDFS."""

    P4 = dict(n_vertices=512, n_edges=4096, n_communities=8, n_threads=4, seed=31)

    def test_all_variants_correct_with_threads(self):
        for fn in (hats.run_baseline, hats.run_sw_bdfs, hats.run_tako, hats.run_leviathan):
            assert fn(self.P4).functional

    def test_threads_cover_edges_disjointly(self):
        from repro.sim.system import Machine

        machine = Machine(hats.hats_config())
        data = hats._HatsData(machine, self.P4)
        seen = set()
        total = 0
        for lo, hi in data.vertex_slices():
            for src, dst, _ in data.bdfs_edges_for(lo, hi):
                assert lo <= dst < hi
                total += 1
        assert total == data.graph.n_edges

    def test_parallel_faster_than_serial(self):
        serial = hats.run_leviathan(dict(self.P4, n_threads=1))
        parallel = hats.run_leviathan(self.P4)
        assert parallel.cycles < serial.cycles

    def test_one_stream_per_thread(self):
        result = hats.run_leviathan(self.P4)
        assert result.stat("stream.started") == 4
        assert result.stat("stream.pushes") == self.P4["n_edges"]

"""Live monitoring: heartbeats, ``status``, the pool poller, dashboards."""

import io
import json
import os
import threading
import time

from repro.experiments.monitor import (
    HeartbeatWriter,
    PoolMonitor,
    heartbeat_dir,
    read_heartbeats,
    render_status,
    summarize_sweep,
)
from repro.experiments.pool import ExperimentPool, RunSpec
from repro.sim.config import small_config
from repro.sim.system import Machine

_COMPACTION = "repro.experiments.ablations:compaction_point"


def _write_heartbeat(root, **overrides):
    directory = heartbeat_dir(str(root))
    os.makedirs(directory, exist_ok=True)
    now = time.time()
    payload = {
        "schema": 1,
        "kind": "leviathan-heartbeat",
        "hash": "a" * 24,
        "label": "w/0",
        "pid": 4242,
        "phase": "simulating",
        "interval": 1.0,
        "started": now - 5,
        "updated": now,
        "elapsed": 5.0,
        "sim_time": 1500.0,
        "instructions": 10,
        "machines": 1,
    }
    payload.update(overrides)
    path = os.path.join(directory, payload["hash"][:12] + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return payload


class TestHeartbeatWriter:
    def test_beats_sample_live_machines(self, tmp_path):
        writer = HeartbeatWriter(
            heartbeat_dir(str(tmp_path)), "b" * 24, "hb/run", interval=0.05
        )
        writer.start()
        try:
            Machine(small_config())  # observed while the writer is live
            payload = writer.beat(phase="simulating")
        finally:
            writer.stop(phase="done")
        assert payload["machines"] == 1
        assert payload["sim_time"] == 0
        beats = read_heartbeats(str(tmp_path))
        assert len(beats) == 1
        assert beats[0]["phase"] == "done"
        assert beats[0]["label"] == "hb/run"

    def test_stop_detaches_the_machine_observer(self, tmp_path):
        writer = HeartbeatWriter(
            heartbeat_dir(str(tmp_path)), "c" * 24, "hb/x", interval=0.05
        )
        writer.start()
        writer.stop()
        before = len(writer._machines)
        Machine(small_config())
        assert len(writer._machines) == before

    def test_torn_heartbeat_is_skipped(self, tmp_path):
        directory = heartbeat_dir(str(tmp_path))
        os.makedirs(directory)
        with open(os.path.join(directory, "torn.json"), "w") as handle:
            handle.write('{"kind": "leviathan-heart')
        assert read_heartbeats(str(tmp_path)) == []


class TestStatus:
    def test_missing_root_is_not_ok(self, tmp_path):
        text, ok = render_status(str(tmp_path / "nope"))
        assert not ok
        assert "no sweep directory" in text

    def test_empty_sweep_renders_ok(self, tmp_path):
        text, ok = render_status(str(tmp_path))
        assert ok
        assert "running (0)" in text

    def test_running_and_finished_runs(self, tmp_path):
        _write_heartbeat(tmp_path, hash="a" * 24, label="live/0")
        with open(os.path.join(str(tmp_path), "manifest.jsonl"), "w") as handle:
            handle.write(
                json.dumps({"hash": "d" * 24, "label": "done/0", "status": "ok",
                            "cached": False, "elapsed": 1.0}) + "\n"
            )
            handle.write('{"torn": "mid-appe')  # killed mid-append
        summary = summarize_sweep(str(tmp_path))
        assert summary["counts"] == {"ok": 1, "error": 0, "cached": 0}
        assert [b["label"] for b in summary["running"]] == ["live/0"]
        text, ok = render_status(str(tmp_path))
        assert ok
        assert "live/0" in text
        assert "1 ok" in text

    def test_stale_worker_flagged(self, tmp_path):
        _write_heartbeat(tmp_path, updated=time.time() - 60, interval=1.0)
        summary = summarize_sweep(str(tmp_path))
        assert not summary["running"]
        assert len(summary["stale"]) == 1
        text, _ok = render_status(str(tmp_path))
        assert "stale" in text

    def test_manifest_wins_over_a_live_heartbeat(self, tmp_path):
        # A worker killed before its final beat: the manifest entry for
        # the same hash marks the run finished anyway.
        beat = _write_heartbeat(tmp_path)
        with open(os.path.join(str(tmp_path), "manifest.jsonl"), "w") as handle:
            handle.write(
                json.dumps({"hash": beat["hash"], "label": beat["label"],
                            "status": "ok", "cached": False}) + "\n"
            )
        summary = summarize_sweep(str(tmp_path))
        assert not summary["running"]
        assert summary["finished_heartbeats"] == 1

    def test_failures_listed(self, tmp_path):
        with open(os.path.join(str(tmp_path), "manifest.jsonl"), "w") as handle:
            handle.write(
                json.dumps({"hash": "e" * 24, "label": "bad/0", "status": "error",
                            "cached": False,
                            "error": {"type": "DeadlockError", "message": "stuck"}})
                + "\n"
            )
        text, ok = render_status(str(tmp_path))
        assert ok
        assert "failed: bad/0: DeadlockError: stuck" in text


class TestLiveSweep:
    def test_status_concurrent_with_a_jobs2_sweep(self, tmp_path):
        pool = ExperimentPool(
            jobs=2,
            cache_dir=str(tmp_path),
            heartbeat_interval=0.05,
            progress=False,
        )
        specs = [
            RunSpec(
                "tests.obs_helpers:slow_point",
                {"tag": i, "seconds": 1.0},
                f"slow/{i}",
            )
            for i in range(2)
        ]
        thread = threading.Thread(target=pool.run, args=(specs,))
        thread.start()
        try:
            saw_running = []
            deadline = time.time() + 20
            while time.time() < deadline and not saw_running:
                summary = summarize_sweep(str(tmp_path))
                if summary["running"]:
                    saw_running = summary["running"]
                time.sleep(0.02)
        finally:
            thread.join(timeout=60)
        assert saw_running, "status never observed an in-flight run"
        assert saw_running[0]["label"].startswith("slow/")
        final = summarize_sweep(str(tmp_path))
        assert not final["running"]
        assert final["counts"]["ok"] == 2
        text, ok = render_status(str(tmp_path))
        assert ok
        assert "2 entr(ies)" in text


class TestPoolMonitor:
    def test_progress_line_rendering(self, tmp_path):
        class FakePool:
            def progress(self):
                return (1, 3)

        _write_heartbeat(tmp_path, label="live/0", sim_time=2500.0)
        stream = io.StringIO()
        monitor = PoolMonitor(FakePool(), str(tmp_path), stream=stream, interval=0.01)
        monitor.start()
        time.sleep(0.05)
        monitor.stop()
        out = stream.getvalue()
        assert "pool: 1/3 done" in out
        assert "live/0 t=2.5k" in out
        assert out.endswith("\n")


class TestDashboard:
    def test_dashboard_through_the_pool(self, tmp_path):
        telem = tmp_path / "telem"
        pool = ExperimentPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry_dir=str(telem),
        )
        pool.run_results(
            [
                RunSpec(_COMPACTION, {"compaction": True}, "dash/on"),
                RunSpec(_COMPACTION, {"compaction": False}, "dash/off"),
            ]
        )
        summary = pool.write_dashboard()
        assert summary["runs"] == 2
        assert summary["subsystems"], "no per-subsystem counters aggregated"
        payload = json.loads((telem / "dashboard.json").read_text())
        assert payload["kind"] == "leviathan-dashboard"
        assert payload["runs"] == 2
        markdown = (telem / "dashboard.md").read_text()
        assert "Sweep dashboard" in markdown
        assert "Per-subsystem counter totals" in markdown

    def test_dashboard_without_runs_is_none(self, tmp_path):
        pool = ExperimentPool(jobs=1, cache_dir=None, telemetry_dir=str(tmp_path))
        assert pool.write_dashboard() is None


class TestHeartbeatHelpers:
    def test_read_heartbeat_round_trip(self, tmp_path):
        from repro.experiments.monitor import read_heartbeat

        payload = _write_heartbeat(tmp_path)
        beat = read_heartbeat(str(tmp_path), payload["hash"])
        assert beat["label"] == payload["label"]
        assert read_heartbeat(str(tmp_path), "f" * 24) is None

    def test_read_heartbeat_tolerates_torn_file(self, tmp_path):
        from repro.experiments.monitor import heartbeat_path, read_heartbeat

        payload = _write_heartbeat(tmp_path)
        with open(heartbeat_path(str(tmp_path), payload["hash"]), "w") as handle:
            handle.write('{"kind": "leviathan-hea')
        assert read_heartbeat(str(tmp_path), payload["hash"]) is None

    def test_sweep_removes_terminal_and_finished_beats(self, tmp_path):
        from repro.experiments.monitor import sweep_heartbeats

        _write_heartbeat(tmp_path, hash="a" * 24, phase="done")
        _write_heartbeat(tmp_path, hash="b" * 24, phase="simulating")
        _write_heartbeat(tmp_path, hash="c" * 24, phase="simulating")
        removed = sweep_heartbeats(str(tmp_path), finished_hashes={"b" * 24})
        assert removed == 2  # the terminal one and the finished one
        remaining = {b["hash"] for b in read_heartbeats(str(tmp_path))}
        assert remaining == {"c" * 24}  # live in-flight beat untouched

    def test_suspend_skips_periodic_beats_but_not_stop(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), "d" * 24, "w/susp", interval=0.05)
        writer.start()
        try:
            writer.suspend()
            path = writer.path
            before = os.path.getmtime(path)
            stamp = json.load(open(path))["updated"]
            time.sleep(0.2)
            assert json.load(open(path))["updated"] == stamp  # no beats
        finally:
            writer.stop(phase="done")
        assert json.load(open(path))["phase"] == "done"  # final beat wrote

    def test_current_heartbeat_tracks_active_writer(self, tmp_path):
        from repro.experiments.monitor import current_heartbeat

        assert current_heartbeat() is None
        writer = HeartbeatWriter(str(tmp_path), "e" * 24, "w/cur", interval=0.5)
        writer.start()
        try:
            assert current_heartbeat() is writer
        finally:
            writer.stop()
        assert current_heartbeat() is None


class TestRetriesInStatus:
    def _manifest(self, root, entries):
        os.makedirs(str(root), exist_ok=True)
        with open(os.path.join(str(root), "manifest.jsonl"), "w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")

    def test_summarize_counts_retries(self, tmp_path):
        self._manifest(
            tmp_path,
            [
                {"hash": "a" * 24, "status": "ok", "attempts": 3, "cached": False},
                {"hash": "b" * 24, "status": "ok", "attempts": 1, "cached": False},
                {"hash": "c" * 24, "status": "error", "attempts": 2, "cached": False},
            ],
        )
        summary = summarize_sweep(str(tmp_path))
        assert summary["retries"] == 3  # (3-1) + (2-1)

    def test_status_renders_retry_count(self, tmp_path):
        self._manifest(
            tmp_path,
            [{"hash": "a" * 24, "status": "ok", "attempts": 2, "cached": False}],
        )
        text, ok = render_status(str(tmp_path))
        assert ok and "1 retried" in text

    def test_status_omits_retries_when_none(self, tmp_path):
        self._manifest(
            tmp_path,
            [{"hash": "a" * 24, "status": "ok", "attempts": 1, "cached": False}],
        )
        text, ok = render_status(str(tmp_path))
        assert ok and "retried" not in text

"""Unit tests for the near-memory engine extension (Sec. IX)."""

import pytest

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine


class Probe(Actor):
    SIZE = 8

    @action
    def read(self, env):
        yield Load(self.addr, 8)
        yield Compute(1)
        return env.machine.mem.get(self.addr, 0)


def make(near_memory):
    cfg = small_config()
    cfg.leviathan.near_memory_engines = near_memory
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    actor = runtime.allocator_for(Probe, capacity=4).allocate()
    machine.mem[actor.addr] = 77
    return machine, runtime, actor


class TestPlacement:
    def test_uncached_actor_placed_at_controller(self):
        machine, runtime, actor = make(near_memory=True)
        got = []

        def prog():
            future = yield Invoke(actor, "read", location=Location.DYNAMIC, with_future=True)
            got.append((yield WaitFuture(future)))

        machine.spawn(prog(), tile=1)
        machine.run()
        assert got == [77]
        assert machine.stats["invoke.near_memory"] == 1
        assert machine.stats["near_memory.direct_accesses"] >= 1

    def test_disabled_by_default(self):
        machine, runtime, actor = make(near_memory=False)

        def prog():
            yield Invoke(actor, "read", location=Location.DYNAMIC)

        machine.spawn(prog(), tile=1)
        machine.run()
        assert machine.stats["invoke.near_memory"] == 0

    def test_cached_actor_not_redirected(self):
        machine, runtime, actor = make(near_memory=True)

        def prog():
            yield Load(actor.addr, 8)  # cache it (LLC + private)
            yield Invoke(actor, "read", location=Location.DYNAMIC)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.stats["invoke.near_memory"] == 0

    def test_direct_access_bypasses_llc(self):
        machine, runtime, actor = make(near_memory=True)

        def prog():
            future = yield Invoke(actor, "read", location=Location.DYNAMIC, with_future=True)
            yield WaitFuture(future)

        machine.spawn(prog(), tile=1)
        machine.run()
        line = machine.hierarchy.line_of(actor.addr)
        assert not machine.hierarchy.llc_has(line)

    def test_remote_placement_unaffected(self):
        machine, runtime, actor = make(near_memory=True)

        def prog():
            yield Invoke(actor, "read", location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        assert machine.stats["invoke.near_memory"] == 0

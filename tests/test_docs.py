"""Documentation hygiene: links resolve, README indexes every docs page.

CI runs this as the docs job; it keeps the markdown link graph honest
as files move.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) with an optional #fragment.
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)]*)?\)")

_DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: str(p),
)


def _links(path):
    found = []
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        found.append(target)
    return found


@pytest.mark.parametrize("doc", _DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _links(doc):
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO)} has broken links: {broken}"


def test_readme_links_every_docs_page():
    readme_targets = {
        (REPO / target).resolve() for target in _links(REPO / "README.md")
    }
    missing = [
        page.name
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.resolve() not in readme_targets
    ]
    assert not missing, f"docs pages not linked from README.md: {missing}"


def test_docs_exist():
    for name in ("experiments.md", "architecture.md"):
        assert (REPO / "docs" / name).exists()

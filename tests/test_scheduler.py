"""Unit tests for the scheduler: interleaving, blocking, determinism."""

import pytest

from repro.sim.config import small_config
from repro.sim.ops import Compute, Condition, Load, Sleep, Wait
from repro.sim.scheduler import SimDeadlock
from repro.sim.system import Machine


class TestInterleaving:
    def test_single_program_runs_to_completion(self, machine):
        done = []

        def prog():
            yield Compute(9)
            done.append(True)

        machine.spawn(prog(), tile=0)
        final = machine.run()
        assert done == [True]
        assert final == pytest.approx(3.0)  # 9 instructions / IPC 3

    def test_timestamp_ordered_interleaving(self, machine):
        order = []

        def slow():
            yield Sleep(100)
            order.append("slow")

        def fast():
            yield Sleep(10)
            order.append("fast")

        machine.spawn(slow(), tile=0)
        machine.spawn(fast(), tile=1)
        machine.run()
        assert order == ["fast", "slow"]

    def test_final_time_is_max_over_contexts(self, machine):
        from tests.conftest import as_program

        machine.spawn(as_program([Sleep(500)]), tile=0)
        machine.spawn(as_program([Sleep(100)]), tile=1)
        assert machine.run() >= 500

    def test_spawn_mid_run(self, machine):
        order = []

        def parent():
            yield Sleep(10)
            machine.spawn(child(), tile=1)
            order.append("parent")
            yield Sleep(100)

        def child():
            yield Sleep(5)
            order.append("child")

        machine.spawn(parent(), tile=0)
        machine.run()
        assert order == ["parent", "child"]

    def test_yielding_non_op_raises(self, machine):
        def bad():
            yield 42

        machine.spawn(bad(), tile=0)
        with pytest.raises(TypeError):
            machine.run()

    def test_context_result_captured(self, machine):
        def prog():
            yield Compute(1)
            return "answer"

        ctx = machine.spawn(prog(), tile=0)
        machine.run()
        assert ctx.done
        assert ctx.result == "answer"

    def test_on_done_callbacks_fire(self, machine):
        seen = []

        def prog():
            yield Compute(1)

        ctx = machine.spawn(prog(), tile=0)
        ctx.on_done.append(lambda m, c: seen.append(c.name))
        machine.run()
        assert seen == [ctx.name]


class TestBlocking:
    def test_wait_and_wake_all(self, machine):
        cond = Condition("gate")
        results = []

        def waiter():
            value = yield Wait(cond)
            results.append(value)

        def signaller():
            yield Sleep(50)
            machine.wake_all(cond, value="go")

        machine.spawn(waiter(), tile=0)
        machine.spawn(waiter(), tile=1)
        machine.spawn(signaller(), tile=2)
        machine.run()
        assert results == ["go", "go"]

    def test_wake_one_releases_single_waiter(self, machine):
        cond = Condition("slot")
        woken = []

        def waiter(tag):
            yield Wait(cond)
            woken.append(tag)

        def signaller():
            yield Sleep(10)
            machine.wake_one(cond)
            yield Sleep(10)
            machine.wake_one(cond)

        machine.spawn(waiter("a"), tile=0)
        machine.spawn(waiter("b"), tile=1)
        machine.spawn(signaller(), tile=2)
        machine.run()
        assert woken == ["a", "b"]  # FIFO wake order

    def test_wake_time_propagates(self, machine):
        cond = Condition("gate")
        times = []

        def waiter():
            yield Wait(cond)
            times.append(machine.now)

        def signaller():
            yield Sleep(77)
            machine.wake_all(cond)

        machine.spawn(waiter(), tile=0)
        machine.spawn(signaller(), tile=1)
        machine.run()
        assert times[0] >= 77

    def test_deadlock_detection(self, machine):
        cond = Condition("never")

        def stuck():
            yield Wait(cond)

        machine.spawn(stuck(), tile=0, name="stuck-thread")
        with pytest.raises(SimDeadlock, match="stuck-thread"):
            machine.run()

    def test_parked_contexts_listed(self, machine):
        cond = Condition("never")

        def stuck():
            yield Wait(cond)

        def other():
            yield Sleep(5)

        machine.spawn(stuck(), tile=0)
        machine.spawn(other(), tile=1)
        with pytest.raises(SimDeadlock):
            machine.run()
        assert len(machine.scheduler.parked_contexts) == 1


class TestDeterminism:
    def _run_once(self):
        machine = Machine(small_config())
        total = []

        def prog(base, n):
            for i in range(n):
                yield Load(base + (i * 8 * 7) % 4096, 8)
                yield Compute(3)
            total.append(machine.now)

        for t in range(4):
            machine.spawn(prog(0x10000 + t * 0x1000, 50), tile=t)
        final = machine.run()
        return final, dict(machine.stats.counters)

    def test_identical_runs_bitwise_equal(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second

"""Perfetto/Chrome-trace export: structure, nesting, validation."""

import json

from repro.sim.telemetry.metrics import MetricsRegistry
from repro.sim.telemetry.perfetto import (
    MACHINE_PID,
    chrome_trace,
    load_and_validate,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.telemetry.spans import Span


def make_span(name="invoke:poke", cid=1, pid=2, start=100, end=400, phases=()):
    span = Span(name, "invoke", cid, pid, start, args={"location": "remote"})
    span.end = end
    for phase_name, phase_start, phase_end in phases:
        span.phases.append([phase_name, phase_start, phase_end])
    return span


class TestExport:
    def test_span_becomes_async_pair(self):
        trace = chrome_trace([make_span()])
        pairs = [e for e in trace["traceEvents"] if e.get("ph") in ("b", "e")]
        assert [e["ph"] for e in pairs] == ["b", "e"]
        begin = pairs[0]
        assert begin["name"] == "invoke:poke"
        assert begin["ts"] == 100 and begin["pid"] == 2
        assert begin["args"]["cid"] == "1"
        assert validate_chrome_trace(trace) == []

    def test_phases_nest_inside_parent(self):
        span = make_span(
            phases=[("nack-wait", 120, 200), ("execute", 200, 380)]
        )
        trace = chrome_trace([span])
        names = [
            (e["ph"], e["name"])
            for e in trace["traceEvents"]
            if e.get("ph") in ("b", "e")
        ]
        assert names == [
            ("b", "invoke:poke"),
            ("b", "nack-wait"),
            ("e", "nack-wait"),
            ("b", "execute"),
            ("e", "execute"),
            ("e", "invoke:poke"),
        ]
        assert validate_chrome_trace(trace) == []

    def test_equal_timestamps_keep_nesting_order(self):
        # A zero-length span whose phase shares both endpoints: the
        # stable sort must keep parent-b, child-b, child-e, parent-e.
        span = make_span(start=100, end=100, phases=[("execute", 100, 100)])
        trace = chrome_trace([span])
        assert validate_chrome_trace(trace) == []

    def test_overlapping_spans_get_distinct_ids(self):
        spans = [
            make_span(cid=1, start=100, end=500),
            make_span(cid=2, start=200, end=400),
        ]
        trace = chrome_trace(spans)
        ids = {e["id"] for e in trace["traceEvents"] if e.get("ph") == "b"}
        assert len(ids) == 2
        assert validate_chrome_trace(trace) == []

    def test_open_spans_are_skipped(self):
        span = make_span()
        span.end = None
        trace = chrome_trace([span])
        assert all(e.get("ph") not in ("b", "e") for e in trace["traceEvents"])

    def test_counter_tracks_from_timeseries(self):
        reg = MetricsRegistry(default_window=100)
        series = reg.timeseries("occupancy", labels={"tile": 3})
        series.record(50, 2)
        series.record(150, 5)
        trace = chrome_trace([], metrics=reg)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["pid"] == 3  # anchored to the tile's process
        assert counters[0]["args"]["occupancy"] == 2

    def test_process_metadata(self):
        trace = chrome_trace([make_span(pid=2)])
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names[2] == "tile 2"

    def test_machine_pid_for_tileless_spans(self):
        span = make_span(pid=None)
        trace = chrome_trace([span])
        begin = next(e for e in trace["traceEvents"] if e.get("ph") == "b")
        assert begin["pid"] == MACHINE_PID


class TestValidation:
    def test_detects_unclosed(self):
        trace = chrome_trace([make_span()])
        trace["traceEvents"] = [
            e for e in trace["traceEvents"] if e.get("ph") != "e"
        ]
        assert any("unclosed" in p for p in validate_chrome_trace(trace))

    def test_detects_improper_nesting(self):
        base = {"cat": "invoke", "id": 0, "pid": 0, "tid": 0}
        trace = {
            "traceEvents": [
                dict(base, ph="b", name="a", ts=0),
                dict(base, ph="b", name="x", ts=1),
                dict(base, ph="e", name="a", ts=2),
                dict(base, ph="e", name="x", ts=3),
            ]
        }
        assert any("nesting" in p for p in validate_chrome_trace(trace))

    def test_detects_backwards_time(self):
        base = {"cat": "invoke", "id": 0, "pid": 0, "tid": 0}
        trace = {
            "traceEvents": [
                dict(base, ph="b", name="a", ts=100),
                dict(base, ph="e", name="a", ts=50),
            ]
        }
        assert any("before its" in p for p in validate_chrome_trace(trace))

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing traceEvents"]

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), [make_span()], meta={"run": "unit"}
        )
        trace, problems = load_and_validate(str(path))
        assert problems == []
        assert trace["otherData"]["run"] == "unit"
        # Plain JSON all the way down (Perfetto requires it).
        json.dumps(trace)

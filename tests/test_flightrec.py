"""The flight recorder: bounded rings, postmortems, pool integration."""

import json

import pytest

from repro.core.offload import InvokeTimeout
from repro.experiments.pool import ExperimentPool, RunSpec
from repro.sim.config import small_config
from repro.sim.faults import ContextExhaustion, FaultPlan
from repro.sim.ops import Compute, Condition, Wait
from repro.sim.scheduler import DeadlockError
from repro.sim.system import Machine
from repro.sim.telemetry.flightrec import (
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    FlightRecorderSession,
    event_vocabulary,
)
from tests.obs_helpers import invoke_burst


def spinning(machine, name="spinner"):
    def prog():
        while True:
            yield Compute(0)

    machine.spawn(prog(), tile=0, name=name)


class TestRing:
    def test_vocabulary_covers_the_event_module(self):
        names = {t.__name__ for t in event_vocabulary()}
        assert {"WatchdogFired", "InvokeDispatched", "FaultInjected"} <= names

    def test_ring_is_bounded(self):
        machine = Machine(small_config())
        recorder = FlightRecorder(machine, capacity=16)
        invoke_burst(machine)
        assert recorder.events_seen > 16
        assert len(recorder.ring) == 16
        events = recorder.recent_events()
        assert len(events) == 16
        assert all(isinstance(e["type"], str) for e in events)

    def test_detach_deactivates_the_bus(self):
        machine = Machine(small_config())
        recorder = FlightRecorder(machine, capacity=8)
        assert machine.events.active
        recorder.detach()
        assert not machine.events.active
        recorder.detach()  # idempotent

    def test_attached_recorder_does_not_change_the_run(self):
        clean = invoke_burst()
        recorded = Machine(small_config())
        FlightRecorder(recorded, capacity=64)
        invoke_burst(recorded)
        assert dict(recorded.stats.counters) == dict(clean.stats.counters)


class TestPostmortem:
    def test_watchdog_deadlock_postmortem(self, tmp_path):
        machine = Machine(small_config(watchdog_steps=500))
        recorder = FlightRecorder(machine, capacity=32, label="m0")
        spinning(machine)
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        path = recorder.save_postmortem(str(tmp_path), error=excinfo.value)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == POSTMORTEM_SCHEMA
        assert payload["kind"] == "leviathan-postmortem"
        assert payload["reason"] == "watchdog"
        assert payload["label"] == "m0"
        assert payload["error"]["type"] == "DeadlockError"
        assert any(e["type"] == "WatchdogFired" for e in payload["events"])
        stall = payload["stall"]
        assert stall["steps_without_progress"] == 500
        assert stall["running"]["name"] == "spinner"
        assert payload["stats"]["watchdog.fired"] == 1

    def test_drained_deadlock_postmortem(self):
        machine = Machine(small_config())
        recorder = FlightRecorder(machine)
        lonely = Condition("never-signaled")

        def waiter():
            yield Wait(lonely)

        machine.spawn(waiter(), tile=1, name="orphan-waiter")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert excinfo.value.kind == "drained"
        payload = recorder.postmortem(error=excinfo.value)
        assert payload["reason"] == "drained"
        assert payload["stall"]["parked_total"] == 1
        assert payload["stall"]["parked"][0]["name"] == "orphan-waiter"
        assert any(e["type"] == "WatchdogFired" for e in payload["events"])
        json.dumps(payload)  # the whole report must be serializable

    def test_unsurvivable_fault_plan_postmortem(self, tmp_path):
        plan = FaultPlan([ContextExhaustion(t, 0.0, 1e9) for t in range(4)])
        session = FlightRecorderSession(capacity=64)
        with session:
            machine = Machine(
                small_config(
                    **{"core.invoke_max_retries": 3, "core.invoke_retry_delay": 5}
                )
            )
            plan.attach(machine)
            with pytest.raises(InvokeTimeout) as excinfo:
                invoke_burst(machine)
            path = session.save_postmortem(str(tmp_path), error=excinfo.value)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["reason"] == "InvokeTimeout"
        assert payload["error"]["type"] == "InvokeTimeout"
        assert len(payload["machines"]) == 1
        report = payload["machines"][0]["fault_report"]
        assert report is not None
        assert sum(report["injected"].values()) > 0
        # The ring holds the *last* 64 events (retry traffic near the
        # timeout); earlier FaultInjected events were evicted by design.
        assert payload["machines"][0]["events"]
        assert payload["machines"][0]["events_seen"] > 64

    def test_session_requires_exclusivity(self):
        with FlightRecorderSession():
            with pytest.raises(RuntimeError):
                FlightRecorderSession().install()


class TestPoolIntegration:
    def test_failing_spec_writes_postmortem(self, tmp_path):
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path), flightrec=64)
        spec = RunSpec("tests.obs_helpers:deadlocking_point", {"tag": "pm"}, "pm/dead")
        outcome = pool.run([spec])[0]
        assert outcome["status"] == "error"
        path = outcome["postmortem"]
        assert path.startswith(str(tmp_path))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "leviathan-postmortem"
        assert payload["error"]["type"] == "DeadlockError"
        assert payload["machines"][0]["events"]

    def test_flightrec_does_not_block_cache_reads(self, tmp_path):
        spec = RunSpec(
            "repro.experiments.ablations:compaction_point",
            {"compaction": True},
            "cache/on",
        )
        first = ExperimentPool(jobs=1, cache_dir=str(tmp_path), flightrec=64)
        first.run([spec])
        assert first.consume_report().get("executed") == 1
        second = ExperimentPool(jobs=1, cache_dir=str(tmp_path), flightrec=64)
        second.run([spec])
        report = second.consume_report()
        assert report.get("cached") == 1
        assert not report.get("executed")

    def test_ok_run_leaves_no_postmortem(self, tmp_path):
        import os

        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path), flightrec=64)
        spec = RunSpec(
            "repro.experiments.ablations:compaction_point",
            {"compaction": False},
            "ok/off",
        )
        outcome = pool.run([spec])[0]
        assert outcome["status"] == "ok"
        assert "postmortem" not in outcome
        assert not os.path.isdir(os.path.join(str(tmp_path), "postmortems"))

"""Unit tests for the near-data engine: contexts, queueing, NACKs."""

from repro.core.engine import Engine
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute
from repro.sim.system import Machine


def make_engine(task_contexts=4, ideal=False):
    cfg = small_config(
        **{"engine.task_contexts": task_contexts, "engine.ideal": ideal}
    )
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    return machine, runtime.engines[0]


def task(duration=10):
    yield Compute(duration)


class TestSubmission:
    def test_accepts_with_free_context(self):
        machine, engine = make_engine()
        accepted = engine.submit(task(), at_time=0, name="t")
        assert accepted
        assert engine.busy_offload == 1
        machine.run()
        assert engine.busy_offload == 0

    def test_completion_callback(self):
        machine, engine = make_engine()
        results = []

        def job():
            yield Compute(1)
            return 42

        engine.submit(job(), at_time=0, name="t", on_complete=results.append)
        machine.run()
        assert results == [42]

    def test_accept_callback_gets_time(self):
        machine, engine = make_engine()
        times = []
        engine.submit(task(), at_time=33.0, name="t", on_accept=times.append)
        machine.run()
        assert times == [33.0]


class TestBackpressure:
    def test_nack_when_full(self):
        machine, engine = make_engine(task_contexts=2)  # 1 offload context
        assert engine.submit(task(100), at_time=0, name="a")
        assert not engine.submit(task(100), at_time=0, name="b")
        assert engine.queued_tasks == 1
        assert machine.stats["engine.nacks"] == 1
        machine.run()
        assert engine.queued_tasks == 0
        assert machine.stats["engine.tasks"] == 2

    def test_queued_task_starts_after_release(self):
        machine, engine = make_engine(task_contexts=2)
        finish_times = []

        def job(tag):
            yield Compute(100)
            finish_times.append((tag, machine.now))

        engine.submit(job("first"), at_time=0, name="a")
        engine.submit(job("second"), at_time=0, name="b")
        machine.run()
        order = [tag for tag, _ in finish_times]
        assert order == ["first", "second"]
        assert finish_times[1][1] > finish_times[0][1]

    def test_ideal_engine_unlimited_contexts(self):
        machine, engine = make_engine(task_contexts=2, ideal=True)
        for i in range(20):
            assert engine.submit(task(), at_time=0, name=f"t{i}")
        assert machine.stats["engine.nacks"] == 0
        machine.run()

    def test_context_freed_condition_woken(self):
        machine, engine = make_engine(task_contexts=2)
        woken = []
        from repro.sim.ops import Wait

        def waiter():
            yield Wait(engine.context_freed)
            woken.append(True)

        engine.submit(task(50), at_time=0, name="t")
        machine.spawn(waiter(), tile=0)
        machine.run()
        assert woken == [True]


class TestRepr:
    def test_repr_shows_occupancy(self):
        _, engine = make_engine()
        assert "busy=0" in repr(engine)


class TestRtlb:
    def test_miss_then_hit(self):
        machine, engine = make_engine()
        assert engine.rtlb_lookup(5) > 0  # cold miss pays refill
        assert engine.rtlb_lookup(5) == 0  # hit
        assert machine.stats["engine.rtlb_misses"] == 1
        assert machine.stats["engine.rtlb_lookups"] == 2

    def test_lru_capacity(self):
        machine, engine = make_engine()
        capacity = engine.config.rtlb_entries
        for page in range(capacity + 1):
            engine.rtlb_lookup(page)
        # Page 0 (LRU) was evicted; refilling it evicts page 1, but the
        # most recent pages are still resident.
        assert engine.rtlb_lookup(0) > 0
        assert engine.rtlb_lookup(capacity) == 0

    def test_ideal_engine_free_misses(self):
        machine, engine = make_engine(ideal=True)
        assert engine.rtlb_lookup(7) == 0
        assert machine.stats["engine.rtlb_misses"] == 1

    def test_morph_constructions_consult_rtlb(self):
        from repro.core.runtime import Leviathan
        from repro.sim.config import small_config
        from repro.sim.system import Machine
        from repro.sim.ops import Load
        from tests.test_morph import RecordingMorph

        machine = Machine(small_config())
        runtime = Leviathan(machine)
        morph = RecordingMorph(runtime)

        def prog():
            yield Load(morph.get_actor_addr(0), 8)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.stats["engine.rtlb_lookups"] >= 1

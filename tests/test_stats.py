"""Unit tests for the statistics bag."""

from repro.sim.stats import Stats


class TestCounters:
    def test_add_and_get(self):
        stats = Stats()
        stats.add("l1.hits")
        stats.add("l1.hits", 2)
        assert stats.get("l1.hits") == 3
        assert stats["l1.hits"] == 3

    def test_missing_counter_is_zero(self):
        assert Stats()["nothing"] == 0

    def test_matching_prefix(self):
        stats = Stats()
        stats.add("l1.hits", 3)
        stats.add("l1.misses", 1)
        stats.add("l2.hits", 7)
        assert stats.matching("l1.") == {"l1.hits": 3, "l1.misses": 1}

    def test_total_by_suffix(self):
        stats = Stats()
        stats.add("l1.hits", 3)
        stats.add("l2.hits", 7)
        stats.add("l2.misses", 1)
        assert stats.total("hits") == 10


class TestPhases:
    def test_phase_qualified_counters(self):
        stats = Stats()
        stats.set_phase("edge")
        stats.add("dram.accesses", 5)
        stats.set_phase(None)
        stats.add("dram.accesses", 2)
        assert stats["dram.accesses"] == 7
        assert stats["edge/dram.accesses"] == 5

    def test_phase_property(self):
        stats = Stats()
        assert stats.phase is None
        stats.set_phase("x")
        assert stats.phase == "x"

    def test_phase_totals_exclude_phased(self):
        stats = Stats()
        stats.set_phase("a")
        stats.add("x.hits", 1)
        assert stats.total("hits") == 1  # only the unphased copy counts


class TestSnapshots:
    def test_diff(self):
        stats = Stats()
        stats.add("a", 5)
        snap = stats.snapshot()
        stats.add("a", 2)
        stats.add("b", 1)
        assert stats.diff(snap) == {"a": 2, "b": 1}

    def test_snapshot_immutable(self):
        stats = Stats()
        stats.add("a", 1)
        snap = stats.snapshot()
        stats.add("a", 1)
        assert snap["a"] == 1


class TestViews:
    def test_convenience_properties(self):
        stats = Stats()
        stats.add("dram.accesses", 4)
        stats.add("noc.flit_hops", 9)
        stats.add("core.branch_mispredictions", 2)
        stats.add("engine.instructions", 11)
        assert stats.dram_accesses == 4
        assert stats.noc_flit_hops == 9
        assert stats.branch_mispredictions == 2
        assert stats.engine_instructions == 11

    def test_report_filters(self):
        stats = Stats()
        stats.add("a.x", 1)
        stats.add("b.y", 2)
        report = stats.report(prefixes=["a."])
        assert "a.x" in report
        assert "b.y" not in report

"""Detail tests for workload-module internals (layouts, policies,
oracles) that the end-to-end functional tests exercise only implicitly."""

import numpy as np
import pytest

from repro.core.runtime import Leviathan
from repro.sim.system import Machine
from repro.workloads import decompress, hashtable, hats, phi


class TestPhiInternals:
    def make(self, **overrides):
        params = dict(n_vertices=256, n_edges=1024, n_threads=4, seed=7)
        params.update(overrides)
        machine = Machine(phi.phi_config())
        data = phi._PhiData(machine, params)
        return machine, data

    def test_edge_slices_partition(self):
        _, data = self.make()
        slices = data.edge_slices()
        assert slices[0][0] == 0
        assert slices[-1][1] == data.n_edges
        for (_, hi), (lo, _) in zip(slices, slices[1:]):
            assert hi == lo

    def test_edges_sorted_by_source(self):
        _, data = self.make()
        assert np.all(np.diff(data.edge_src) >= 0)

    def test_oracle_matches_manual_accumulation(self):
        _, data = self.make()
        manual = np.zeros(data.n_vertices)
        for src, dst in zip(data.edge_src, data.edge_dst):
            manual[dst] += data.contrib[src]
        assert np.allclose(manual, data.oracle)

    def test_ranks_initialized_zero(self):
        _, data = self.make()
        assert data.ranks().sum() == 0.0

    def test_delta_morph_policy_split(self):
        """Dense lines apply in place; sparse lines log."""
        machine, data = self.make()
        runtime = Leviathan(machine)
        morph = phi.PhiDeltaMorph(runtime, data)
        mem = machine.mem
        # Make objects 0..7 (one line) all dirty -> in-place.
        for v in range(8):
            mem[morph.delta_addr(v)] = 1.0
        machine.run_inline(morph.destruct(morph.views[0], 0, True), 0)
        assert machine.stats["phi.inplace_applies"] == 1
        # A lone dirty object in its line -> logged.
        mem[morph.delta_addr(16)] = 1.0
        machine.run_inline(morph.destruct(morph.views[0], 16, True), 0)
        assert machine.stats["phi.logged_updates"] == 1

    def test_log_processing_applies_combined(self):
        machine, data = self.make()
        runtime = Leviathan(machine)
        morph = phi.PhiDeltaMorph(runtime, data)
        morph.views[2].state["log"] = [(5, 1.5), (5, 0.5), (9, 2.0)]
        machine.spawn(morph.log_processing_program(2), tile=2)
        machine.run()
        assert machine.mem[data.rank_addr(5)] == pytest.approx(2.0)
        assert machine.mem[data.rank_addr(9)] == pytest.approx(2.0)


class TestDecompressInternals:
    def make(self):
        machine = Machine(decompress.decompress_config())
        image = decompress._CompressedImage(
            machine, dict(n_pixels=512, n_accesses=256, n_threads=2)
        )
        return machine, image

    def test_pixel_value_formula(self):
        _, image = self.make()
        idx = 13
        expected = 0
        for c in range(3):
            base = int(image.bases[c][idx >> 3])
            delta = int(image.deltas[c][idx])
            expected += base + ((delta & 0b1111) << (delta >> 4))
        assert image.pixel_value(idx) == expected

    def test_compressed_load_ops_cover_channels(self):
        _, image = self.make()
        ops = image.compressed_load_ops(5)
        assert len(ops) == 6  # base + delta per channel

    def test_oracle_sum_deterministic(self):
        _, a = self.make()
        _, b = self.make()
        assert a.oracle_sum() == b.oracle_sum()

    def test_access_slices_cover_all(self):
        _, image = self.make()
        slices = image.access_slices()
        assert slices[0][0] == 0
        assert slices[-1][1] == len(image.indices)


class TestHashtableInternals:
    def make(self, **overrides):
        params = dict(
            n_buckets=8, nodes_per_bucket=4, n_threads=2, lookups_per_thread=4
        )
        params.update(overrides)
        machine = Machine(hashtable.hashtable_config())
        runtime = Leviathan(machine)
        return hashtable._Table(machine, runtime, params)

    def test_chains_linked_and_terminated(self):
        table = self.make()
        for chain in table.buckets:
            node = chain[0]
            count = 0
            while node is not None:
                record = table.machine.mem[node.addr]
                node = record["next"]
                count += 1
            assert count == 4

    def test_chains_scattered_in_memory(self):
        """Consecutive chain nodes are not address-adjacent (shuffled)."""
        table = self.make(n_buckets=16, nodes_per_bucket=8)
        adjacent = 0
        total = 0
        for head in table.buckets:
            node = head[0]
            while True:
                record = table.machine.mem[node.addr]
                nxt = record["next"]
                if nxt is None:
                    break
                total += 1
                if abs(nxt.addr - node.addr) == 64:
                    adjacent += 1
                node = nxt
        assert adjacent < total / 2

    def test_expected_value(self):
        table = self.make()
        assert table.expected_value(table._key_of(2, 1)) == table._key_of(2, 1) * 7
        assert table.expected_value(999_999) == -1

    def test_padded_table_bytes(self):
        params = dict(
            hashtable.DEFAULT_PARAMS, n_buckets=4, nodes_per_bucket=4, object_size=24
        )
        # 24 B pads to 32 B -> 4*4*32.
        assert hashtable._padded_table_bytes(params) == 512

    def test_lookup_keys_deterministic(self):
        a = self.make().lookup_keys()
        b = self.make().lookup_keys()
        assert a == b


class TestHatsInternals:
    def make(self, **overrides):
        params = dict(n_vertices=256, n_edges=2048, n_communities=8, seed=31)
        params.update(overrides)
        machine = Machine(hats.hats_config())
        return machine, hats._HatsData(machine, params)

    def test_csr_edges_complete_and_flagged(self):
        _, data = self.make()
        edges = list(data.csr_edges())
        assert len(edges) == data.graph.n_edges
        # Exactly one "last" flag per destination with in-edges.
        lasts = sum(1 for _, _, _, last in edges if last)
        with_in_edges = sum(1 for v in range(data.graph.n_vertices) if data.graph.in_degree(v))
        assert lasts == with_in_edges

    def test_bdfs_root_scan_totals(self):
        """Scan steps count exactly the inactive roots skipped."""
        _, data = self.make()
        edges = data.bdfs_edges()
        total_scans = sum(scan for _, _, scan in edges)
        # Every vertex is either a root or skipped during the scan;
        # skipped-before-last-burst counts must not exceed n_vertices.
        assert 0 < total_scans < data.graph.n_vertices

    def test_bdfs_cached(self):
        _, data = self.make()
        assert data.bdfs_edges() is data.bdfs_edges()

    def test_process_edge_groups_by_destination(self):
        machine, data = self.make()
        accum = {"dst": None, "sum": 0.0}

        def prog():
            yield from data.process_edge(1, 7, accum)
            yield from data.process_edge(2, 7, accum)
            yield from data.flush_accum(accum)

        machine.spawn(prog(), tile=0)
        machine.run()
        expected = float(data.contrib_values[1] + data.contrib_values[2])
        assert machine.mem[data.new_rank_base + 7 * 8] == pytest.approx(expected)

    def test_traversal_mispredict_rate_reasonable(self):
        hits = sum(
            hats._traversal_mispredicts(s, d)
            for s in range(64)
            for d in range(16)
        )
        rate = hits / (64 * 16)
        assert 0.2 < rate < 0.55

    def test_breakdown_rows(self):
        from repro.workloads.common import StudyResult

        _, data = self.make()
        study = StudyResult(study="x", baseline="baseline")
        result = hats.run_baseline(dict(n_vertices=256, n_edges=2048, n_communities=8))
        study.add(result)
        rows = hats.breakdown(study)
        assert "baseline" in rows
        assert "dram_edge" in rows["baseline"]

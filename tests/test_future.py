"""Unit tests for Futures and the store-update mechanism."""

import pytest

from repro.core.future import Future, WaitFuture
from repro.sim.ops import Sleep
from repro.sim.scheduler import SimDeadlock


class TestFuture:
    def test_fill_then_wait(self, machine):
        future = Future(machine, home_tile=0)
        results = []

        def filler():
            yield Sleep(10)
            future.fill("value", from_tile=2)

        def waiter():
            value = yield WaitFuture(future)
            results.append((value, machine.now))

        machine.spawn(filler(), tile=2)
        machine.spawn(waiter(), tile=0)
        machine.run()
        assert results[0][0] == "value"
        # The store-update message takes NoC time after the fill.
        assert results[0][1] > 10

    def test_wait_before_fill_parks(self, machine):
        future = Future(machine, home_tile=0)
        order = []

        def waiter():
            value = yield WaitFuture(future)
            order.append(("got", value))

        def filler():
            yield Sleep(100)
            order.append(("filling", None))
            future.fill(42, from_tile=1)

        machine.spawn(waiter(), tile=0)
        machine.spawn(filler(), tile=1)
        machine.run()
        assert order == [("filling", None), ("got", 42)]

    def test_wait_after_fill_returns_immediately(self, machine):
        future = Future(machine, home_tile=0)
        future.fill(7, from_tile=3)
        results = []

        def waiter():
            value = yield WaitFuture(future)
            results.append(value)

        machine.spawn(waiter(), tile=0)
        machine.run()
        assert results == [7]

    def test_double_fill_rejected(self, machine):
        future = Future(machine, home_tile=0)
        future.fill(1, from_tile=0)
        with pytest.raises(RuntimeError):
            future.fill(2, from_tile=0)

    def test_fill_accounts_noc_message(self, machine):
        future = Future(machine, home_tile=0)
        snap = machine.stats.snapshot()
        future.fill(1, from_tile=3)
        diff = machine.stats.diff(snap)
        assert diff.get("noc.messages", 0) == 1
        assert diff.get("future.fills", 0) == 1

    def test_unfilled_future_deadlocks(self, machine):
        future = Future(machine, home_tile=0)

        def waiter():
            yield WaitFuture(future)

        machine.spawn(waiter(), tile=0)
        with pytest.raises(SimDeadlock):
            machine.run()

    def test_multiple_waiters_all_wake(self, machine):
        future = Future(machine, home_tile=0)
        got = []

        def waiter():
            value = yield WaitFuture(future)
            got.append(value)

        def filler():
            yield Sleep(5)
            future.fill("x", from_tile=1)

        machine.spawn(waiter(), tile=0)
        machine.spawn(waiter(), tile=0)
        machine.spawn(filler(), tile=1)
        machine.run()
        assert got == ["x", "x"]

    def test_repr(self, machine):
        future = Future(machine, home_tile=2)
        assert "pending" in repr(future)
        future.fill(9, from_tile=0)
        assert "9" in repr(future)

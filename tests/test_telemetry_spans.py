"""Span lifecycle tests: happy path, NACK/spill retry, buffer stalls,
stream blocking, and the bit-identical-results guarantee."""

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.core.stream import STREAM_END
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine
from repro.sim.telemetry import Telemetry, TelemetrySession


class Cell(Actor):
    SIZE = 8

    @action
    def poke(self, env, amount=1):
        yield Load(self.addr, 8)
        yield Compute(1)
        mem = env.machine.mem
        yield Store(
            self.addr, 8, apply=lambda: mem.__setitem__(
                self.addr, mem.get(self.addr, 0) + amount
            )
        )

    @action
    def read(self, env):
        yield Load(self.addr, 8)
        return env.machine.mem.get(self.addr, 0)


class Slow(Actor):
    SIZE = 8

    @action
    def slow(self, env):
        yield Compute(500)


def build(**overrides):
    machine = Machine(small_config(**overrides))
    runtime = Leviathan(machine)
    telemetry = Telemetry(machine)
    return machine, runtime, telemetry


def invoke_spans(telemetry):
    return [s for s in telemetry.spans.finished if s.cat == "invoke"]


class TestInvokeSpans:
    def test_remote_invoke_produces_closed_span(self):
        machine, runtime, telemetry = build()
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=0)
        machine.run()
        telemetry.finalize()
        spans = invoke_spans(telemetry)
        assert len(spans) == 1
        span = spans[0]
        assert span.well_formed and not span.args.get("unclosed")
        assert span.phase_cycles("execute") > 0
        assert telemetry.spans.unclosed == 0

    def test_future_owner_span_closes_at_fill(self):
        machine, runtime, telemetry = build()
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            future = yield Invoke(
                cell, "read", with_future=True, location=Location.REMOTE
            )
            yield WaitFuture(future)

        machine.spawn(prog(), tile=1)
        machine.run()
        telemetry.finalize()
        (span,) = invoke_spans(telemetry)
        assert span.args["owns_future"]
        assert span.well_formed
        # The span extends to the store-update's arrival at the core.
        assert span.args["future_filled_at"] == span.end

    def test_nacked_invoke_retries_into_well_formed_span(self):
        """A spilled (NACKed) task produces one span with a nack-wait
        phase that ends where its execute phase begins."""
        machine, runtime, telemetry = build(**{"engine.task_contexts": 2})
        actor = runtime.allocator_for(Slow, capacity=8).allocate()

        def prog():
            for _ in range(6):
                yield Invoke(actor, "slow", location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        telemetry.finalize()
        assert machine.stats["engine.nacks"] > 0
        spans = invoke_spans(telemetry)
        assert len(spans) == 6
        nacked = [s for s in spans if s.args["nacks"] > 0]
        assert nacked, "expected at least one NACKed span"
        for span in spans:
            assert span.well_formed and not span.args.get("unclosed")
        for span in nacked:
            assert span.phase_cycles("nack-wait") > 0
            waits = [p for p in span.phases if p[0] == "nack-wait"]
            execs = [p for p in span.phases if p[0] == "execute"]
            # The spill wait ends exactly when execution starts.
            assert waits[-1][2] == execs[-1][1]
        assert telemetry.spans.unclosed == 0

    def test_buffer_stalled_invoke_records_buffer_wait(self):
        """An invoke parked on a full invoke buffer re-dispatches and
        still closes into one well-formed span."""
        machine, runtime, telemetry = build(
            **{"core.invoke_buffer_entries": 1, "engine.task_contexts": 2}
        )
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            for _ in range(16):
                yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        telemetry.finalize()
        assert machine.stats["invoke.stalls"] > 0
        spans = invoke_spans(telemetry)
        assert len(spans) == 16
        stalled = [s for s in spans if s.phase_cycles("buffer-wait") > 0]
        assert stalled, "expected at least one buffer-stalled span"
        for span in spans:
            assert span.well_formed and not span.args.get("unclosed")
        assert telemetry.spans.unclosed == 0
        # The park/retry path keeps one cid per invoke: no duplicates.
        cids = [s.cid for s in spans]
        assert len(cids) == len(set(cids))

    def test_continuation_chain_one_owner(self):
        machine, runtime, telemetry = build()

        class LinkedCell(Actor):
            SIZE = 16

            def __init__(self):
                super().__init__()
                self.next = None
                self.value = 0

            @action
            def sum_chain(self, env, acc, future):
                yield Load(self.addr, 16)
                yield Compute(2)
                acc = acc + self.value
                if self.next is None:
                    return acc
                yield Invoke(
                    self.next, "sum_chain", (acc, future), future=future,
                    args_bytes=16,
                )
                return None

        alloc = runtime.allocator_for(LinkedCell, capacity=8)
        cells = [alloc.allocate() for _ in range(5)]
        for i, cell in enumerate(cells):
            cell.value = i + 1
            cell.next = cells[i + 1] if i + 1 < len(cells) else None

        def prog():
            future = Future(machine, 0)
            yield Invoke(
                cells[0], "sum_chain", (0, future), future=future, args_bytes=16
            )
            yield WaitFuture(future)

        machine.spawn(prog(), tile=0)
        machine.run()
        telemetry.finalize()
        spans = invoke_spans(telemetry)
        assert len(spans) == 5
        owners = [s for s in spans if s.args["owns_future"]]
        assert len(owners) == 1  # the first hop owns the future
        for span in spans:
            assert span.well_formed
        assert telemetry.spans.unclosed == 0


class TestStreamSpans:
    def test_consumer_blocking_on_empty_buffer(self):
        """A consumer ahead of a slow producer produces stream-wait
        spans (side=consumer) closed by the push that wakes it."""
        from repro.core.stream import Stream

        machine, runtime, telemetry = build()

        class SlowStream(Stream):
            def gen_stream(self, env):
                for i in range(12):
                    yield Compute(300)  # consumer outruns this easily
                    yield from self.push(i)

        stream = SlowStream(
            runtime, object_size=8, buffer_entries=32, consumer_tile=0
        )
        stream.start()
        got = []

        def consumer():
            while True:
                value = yield from stream.consume()
                if value is STREAM_END:
                    return
                got.append(value)

        machine.spawn(consumer(), tile=0)
        machine.run()
        telemetry.finalize()
        assert got == list(range(12))
        assert machine.stats["stream.consume_blocks"] > 0
        waits = [s for s in telemetry.spans.finished if s.cat == "stream-wait"]
        consumer_waits = [s for s in waits if s.args["side"] == "consumer"]
        assert consumer_waits
        for span in consumer_waits:
            assert span.well_formed and span.duration > 0
        entries = [s for s in telemetry.spans.finished if s.cat == "stream"]
        assert len(entries) == 12
        for span in entries:
            assert span.well_formed

    def test_producer_blocking_on_full_buffer(self):
        from tests.test_stream import RangeStream, drain

        machine, runtime, telemetry = build()
        stream = RangeStream(runtime, count=200, buffer_entries=16)
        stream.start()
        assert drain(machine, stream) == list(range(200))
        assert machine.stats["stream.push_blocks"] > 0
        telemetry.finalize()
        waits = [
            s for s in telemetry.spans.finished
            if s.cat == "stream-wait" and s.args["side"] == "producer"
        ]
        assert waits
        for span in waits:
            assert span.well_formed


class TestGuarantees:
    def test_results_bit_identical_with_telemetry(self):
        def run(with_telemetry):
            machine = Machine(small_config(**{"engine.task_contexts": 2}))
            runtime = Leviathan(machine)
            telemetry = Telemetry(machine) if with_telemetry else None
            actor = runtime.allocator_for(Slow, capacity=8).allocate()
            cell = runtime.allocator_for(Cell, capacity=8).allocate()

            def prog():
                for _ in range(4):
                    yield Invoke(actor, "slow", location=Location.REMOTE)
                    yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

            machine.spawn(prog(), tile=1)
            cycles = machine.run()
            return cycles, machine.stats.snapshot(), telemetry

        bare_cycles, bare_stats, _ = run(False)
        telem_cycles, telem_stats, telemetry = run(True)
        assert bare_cycles == telem_cycles
        assert bare_stats == telem_stats
        assert len(telemetry.spans.finished) > 0

    def test_session_observes_internally_built_machines(self):
        with TelemetrySession() as session:
            machine = Machine(small_config())
            machine2 = Machine(small_config())
        assert [t.machine for t in session.telemetries] == [machine, machine2]
        # Outside the context, construction is no longer hooked.
        Machine(small_config())
        assert len(session.telemetries) == 2

    def test_span_cap_counts_dropped(self):
        machine, runtime, telemetry = build()
        telemetry.spans.max_spans = 2
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            for _ in range(6):
                yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=0)
        machine.run()
        telemetry.finalize()
        assert len(telemetry.spans.finished) == 2
        assert telemetry.spans.dropped == 4

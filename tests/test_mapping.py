"""Unit and property tests for LLC mapping and DRAM compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import MappingRegistry, TranslationEntry


def entry_24B(base=0x1000, capacity=64, dram_base=0x40000000):
    return TranslationEntry(
        cache_base=base,
        cache_bound=base + capacity * 32,
        dram_base=dram_base,
        object_size=24,
        padded_size=32,
    )


class TestTranslationEntry:
    def test_contains(self):
        entry = entry_24B()
        assert entry.contains(0x1000)
        assert not entry.contains(0x1000 + 64 * 32)

    def test_first_object_maps_to_dram_base(self):
        entry = entry_24B()
        assert entry.to_dram(0x1000) == 0x40000000

    def test_objects_pack_densely(self):
        entry = entry_24B()
        # Object 1 starts at padded offset 32 but DRAM offset 24.
        assert entry.to_dram(0x1000 + 32) == 0x40000000 + 24

    def test_padding_bytes_clamp_into_object(self):
        entry = entry_24B()
        # Byte 31 (padding) maps onto the object's last byte (23).
        assert entry.to_dram(0x1000 + 31) == 0x40000000 + 23

    def test_monotonic(self):
        entry = entry_24B()
        addrs = [entry.to_dram(0x1000 + i) for i in range(0, 64 * 32, 8)]
        assert addrs == sorted(addrs)

    def test_bank_shift_by_size(self):
        def shift(padded):
            return TranslationEntry(0, 1024 * padded, 0, padded, padded).bank_shift

        assert shift(32) == 0
        assert shift(64) == 0
        assert shift(128) == 1
        assert shift(256) == 2


class TestMappingRegistry:
    def test_find(self):
        reg = MappingRegistry()
        entry = reg.register(entry_24B())
        assert reg.find(0x1000) is entry
        assert reg.find(0xFFF) is None

    def test_overlap_rejected(self):
        reg = MappingRegistry()
        reg.register(entry_24B(base=0x1000))
        with pytest.raises(ValueError):
            reg.register(entry_24B(base=0x1100))

    def test_empty_entry_rejected(self):
        reg = MappingRegistry()
        with pytest.raises(ValueError):
            reg.register(TranslationEntry(0x1000, 0x1000, 0, 8, 8))

    def test_unregister(self):
        reg = MappingRegistry()
        entry = reg.register(entry_24B())
        reg.unregister(entry)
        assert reg.find(0x1000) is None
        with pytest.raises(KeyError):
            reg.unregister(entry)

    def test_identity_translation_outside_pools(self):
        reg = MappingRegistry()
        assert reg.translate(12345) == (12345,)
        assert reg.bank_shift(12345) == 0

    def test_compacted_lines_share_dram_lines(self):
        reg = MappingRegistry()
        reg.register(entry_24B(base=0x1000))
        # Cache line 1 of the pool (objects 2..3 at 24 B each in DRAM)
        # maps into DRAM bytes 48..95: spans DRAM line boundary only as
        # the math dictates.
        line0 = 0x1000 // 64
        line1 = line0 + 1
        dram0 = reg.translate(line0)
        dram1 = reg.translate(line1)
        # Adjacent cache lines overlap in DRAM (compaction).
        assert set(dram0) & set(dram1)

    def test_bank_shift_for_large_pool(self):
        reg = MappingRegistry()
        reg.register(
            TranslationEntry(0x8000, 0x8000 + 16 * 128, 0x50000000, 100, 128)
        )
        assert reg.bank_shift(0x8000 // 64) == 1


@settings(max_examples=60, deadline=None)
@given(
    object_size=st.integers(min_value=1, max_value=64),
    offset=st.integers(min_value=0, max_value=2047),
)
def test_property_translation_stays_in_dram_pool(object_size, offset):
    padded = 1
    while padded < object_size:
        padded *= 2
    capacity = 64
    entry = TranslationEntry(0, capacity * padded, 0x1000, object_size, padded)
    addr = min(offset, capacity * padded - 1)
    dram = entry.to_dram(addr)
    assert 0x1000 <= dram < 0x1000 + capacity * object_size


@settings(max_examples=60, deadline=None)
@given(a=st.integers(min_value=0, max_value=2047), b=st.integers(min_value=0, max_value=2047))
def test_property_translation_monotonic(a, b):
    entry = entry_24B(base=0)
    a, b = min(a, b), max(a, b)
    assert entry.to_dram(a) <= entry.to_dram(b)

"""Unit tests for the workload distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import uniform_indices, uniform_keys, zipfian_indices


class TestZipf:
    def test_range_and_count(self):
        idx = zipfian_indices(100, 5000, seed=1)
        assert len(idx) == 5000
        assert idx.min() >= 0 and idx.max() < 100

    def test_skew_concentrates_mass(self):
        idx = zipfian_indices(1000, 20000, skew=0.99, seed=1)
        _, counts = np.unique(idx, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top 10% of items take far more than 10% of accesses.
        assert counts[:100].sum() > 0.3 * len(idx)

    def test_higher_skew_more_concentrated(self):
        def top_share(skew):
            idx = zipfian_indices(1000, 20000, skew=skew, seed=1)
            _, counts = np.unique(idx, return_counts=True)
            return np.sort(counts)[::-1][:10].sum()

        assert top_share(1.2) > top_share(0.6)

    def test_popularity_not_address_correlated(self):
        """The hottest item should not always be item 0 (permutation)."""
        hot = []
        for seed in range(5):
            idx = zipfian_indices(1000, 5000, seed=seed)
            values, counts = np.unique(idx, return_counts=True)
            hot.append(int(values[np.argmax(counts)]))
        assert len(set(hot)) > 1

    def test_deterministic(self):
        a = zipfian_indices(100, 1000, seed=42)
        b = zipfian_indices(100, 1000, seed=42)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipfian_indices(0, 10)
        with pytest.raises(ValueError):
            zipfian_indices(10, -1)


class TestUniform:
    def test_range(self):
        idx = uniform_indices(50, 1000, seed=1)
        assert idx.min() >= 0 and idx.max() < 50

    def test_roughly_uniform(self):
        idx = uniform_indices(10, 10000, seed=1)
        _, counts = np.unique(idx, return_counts=True)
        assert counts.min() > 800 and counts.max() < 1200

    def test_keys(self):
        keys = uniform_keys(100, 1 << 20, seed=3)
        assert len(keys) == 100
        assert keys.max() < 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_indices(0, 10)

"""Unit tests for streams: ordering, flow control, termination."""

import pytest

from repro.core.stream import Stream, STREAM_END
from repro.sim.ops import Compute


class RangeStream(Stream):
    """Pushes 0..count-1."""

    def __init__(self, runtime, count=50, **kwargs):
        self.count = count
        kwargs.setdefault("object_size", 8)
        kwargs.setdefault("buffer_entries", 32)
        kwargs.setdefault("consumer_tile", 0)
        super().__init__(runtime, **kwargs)

    def gen_stream(self, env):
        for i in range(self.count):
            yield Compute(1)
            yield from self.push(i)


def drain(machine, stream, limit=None):
    got = []

    def consumer():
        while True:
            value = yield from stream.consume()
            if value is STREAM_END:
                return
            got.append(value)
            if limit is not None and len(got) >= limit:
                stream.terminate()
                return

    machine.spawn(consumer(), tile=stream.consumer_tile, name="consumer")
    machine.run()
    return got


class TestOrdering:
    def test_fifo_order(self, machine, runtime):
        stream = RangeStream(runtime, count=100)
        stream.start()
        assert drain(machine, stream) == list(range(100))

    def test_empty_stream(self, machine, runtime):
        stream = RangeStream(runtime, count=0)
        stream.start()
        assert drain(machine, stream) == []

    def test_restart_rejected(self, machine, runtime):
        stream = RangeStream(runtime, count=1)
        stream.start()
        with pytest.raises(RuntimeError):
            stream.start()
        drain(machine, stream)


class TestFlowControl:
    def test_producer_blocks_on_full_buffer(self, machine, runtime):
        stream = RangeStream(runtime, count=200, buffer_entries=16)
        stream.start()
        got = drain(machine, stream)
        assert got == list(range(200))
        assert machine.stats["stream.push_blocks"] > 0

    def test_pop_messages_per_line(self, machine, runtime):
        stream = RangeStream(runtime, count=64)
        stream.start()
        drain(machine, stream)
        # 8 entries per 64 B line -> at least one pop message per line.
        assert machine.stats["stream.pop_messages"] >= 8

    def test_buffer_too_small_rejected(self, machine, runtime):
        with pytest.raises(ValueError):
            RangeStream(runtime, count=10, buffer_entries=8)

    def test_decoupling_producer_runs_ahead(self, machine, runtime):
        """With a big buffer the producer finishes before the consumer."""
        stream = RangeStream(runtime, count=64, buffer_entries=64)
        producer_ctx = stream.start()
        slow_got = []

        def slow_consumer():
            while True:
                value = yield from stream.consume()
                if value is STREAM_END:
                    return
                yield Compute(300)  # slow consumer
                slow_got.append((value, producer_ctx.done))

        machine.spawn(slow_consumer(), tile=0)
        machine.run()
        # The producer finished while the consumer was still mid-stream.
        assert any(done for _, done in slow_got[:-1])


class TestTermination:
    def test_consumer_terminate_stops_producer(self, machine, runtime):
        stream = RangeStream(runtime, count=10_000, buffer_entries=16)
        producer_ctx = stream.start()
        got = drain(machine, stream, limit=20)
        assert got == list(range(20))
        assert producer_ctx.done
        assert machine.stats["stream.terminated_early"] == 1

    def test_stream_end_after_natural_finish(self, machine, runtime):
        stream = RangeStream(runtime, count=5)
        stream.start()
        got = drain(machine, stream)
        assert got == list(range(5))
        assert stream.producer_done


class TestDataTriggeredUnderpinnings:
    def test_consumption_constructs_phantom_lines(self, machine, runtime):
        stream = RangeStream(runtime, count=64)
        stream.start()
        drain(machine, stream)
        assert machine.stats["morph.l2_constructions"] >= 8

    def test_prefetch_never_passes_tail(self, machine, runtime):
        stream = RangeStream(runtime, count=64)
        assert stream.allow_prefetch(0) is False  # nothing produced yet
        stream.tail = 10
        assert stream.allow_prefetch(9) is True
        assert stream.allow_prefetch(10) is False

    def test_construct_copies_from_buffer(self, machine, runtime):
        stream = RangeStream(runtime, count=32)
        stream.start()
        drain(machine, stream)
        # Phantom addresses hold the pushed values.
        assert machine.mem[stream.get_actor_addr(7)] == 7

    def test_consume_blocks_counted_when_producer_slow(self, machine, runtime):
        class SlowStream(RangeStream):
            def gen_stream(self, env):
                for i in range(self.count):
                    yield Compute(500)  # slow producer
                    yield from self.push(i)

        stream = SlowStream(runtime, count=20)
        stream.start()
        got = drain(machine, stream)
        assert got == list(range(20))
        assert machine.stats["stream.consume_blocks"] > 0


class TestLargeEntries:
    def test_multi_line_stream_entries(self, machine, runtime):
        """128 B entries: each phantom object spans two cache lines."""
        stream = RangeStream(
            runtime, count=24, object_size=128, buffer_entries=16
        )
        assert stream.padded_size == 128
        stream.start()
        got = drain(machine, stream)
        assert got == list(range(24))

    def test_sub_line_odd_entries_padded(self, machine, runtime):
        """24 B entries pad to 32 B; two entries never share a boundary."""
        stream = RangeStream(runtime, count=16, object_size=24, buffer_entries=16)
        for i in range(16):
            addr = stream.get_actor_addr(i)
            assert addr // 64 == (addr + 23) // 64
        stream.start()
        assert drain(machine, stream) == list(range(16))

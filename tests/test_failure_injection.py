"""Failure-injection tests: faults surface loudly and cleanly.

A simulator that swallows application errors produces silently wrong
results; these tests pin down the failure semantics: exceptions raised
inside any program (core thread, engine task, data-triggered action)
propagate out of ``machine.run()`` with their original type, and the
machine never hangs or deadlocks on the way out.
"""

import pytest

from repro.core.actor import Actor, action
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.stream import Stream, STREAM_END
from repro.sim.ops import Compute, Load
from tests.conftest import run_program


class AppError(RuntimeError):
    pass


class TestCoreThreadFaults:
    def test_exception_propagates_with_type(self, machine):
        def prog():
            yield Compute(1)
            raise AppError("boom")

        machine.spawn(prog(), tile=0)
        with pytest.raises(AppError, match="boom"):
            machine.run()

    def test_fault_after_memory_ops(self, machine):
        def prog():
            yield Load(0x10000, 8)
            raise AppError("late")

        machine.spawn(prog(), tile=0)
        with pytest.raises(AppError):
            machine.run()
        # The access before the fault was still accounted.
        assert machine.stats["l1.accesses"] == 1

    def test_machine_usable_after_fault(self, machine):
        def bad():
            raise AppError()
            yield  # pragma: no cover

        machine.spawn(bad(), tile=0)
        with pytest.raises(AppError):
            machine.run()

        done = []

        def good():
            yield Compute(1)
            done.append(True)

        machine.spawn(good(), tile=0)
        machine.run()
        assert done == [True]


class Faulty(Actor):
    SIZE = 8

    @action
    def explode(self, env):
        yield Compute(1)
        raise AppError("engine-side")


class TestEngineTaskFaults:
    def test_offloaded_action_fault_propagates(self, machine, runtime):
        actor = runtime.allocator_for(Faulty, capacity=4).allocate()

        def prog():
            yield Invoke(actor, "explode", location=Location.REMOTE)

        machine.spawn(prog(), tile=0)
        with pytest.raises(AppError, match="engine-side"):
            machine.run()

    def test_inline_action_fault_propagates(self, machine, runtime):
        actor = runtime.allocator_for(Faulty, capacity=4).allocate()

        def prog():
            yield Load(actor.addr, 8)  # cache it: DYNAMIC runs inline
            yield Invoke(actor, "explode", location=Location.DYNAMIC)

        machine.spawn(prog(), tile=0)
        with pytest.raises(AppError):
            machine.run()


class FaultyMorph(Morph):
    def construct(self, view, index):
        yield Compute(1)
        raise AppError("constructor")


class TestDataTriggeredFaults:
    def test_constructor_fault_propagates_through_fill(self, machine, runtime):
        morph = FaultyMorph(runtime, "l2", 16, 8)
        machine.spawn(iter_to_gen([Load(morph.get_actor_addr(0), 8)]), tile=0)
        with pytest.raises(AppError, match="constructor"):
            machine.run()


class FaultyStream(Stream):
    def gen_stream(self, env):
        yield from self.push(1)
        raise AppError("producer")


class TestStreamFaults:
    def test_producer_fault_propagates(self, machine, runtime):
        stream = FaultyStream(
            runtime, object_size=8, buffer_entries=16, consumer_tile=0
        )
        stream.start()
        with pytest.raises(AppError, match="producer"):
            machine.run()


def iter_to_gen(ops):
    for op in ops:
        yield op

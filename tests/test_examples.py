"""Every example under ``examples/`` runs and validates its own output.

The examples are the public-API documentation; each asserts its
functional result internally, so simply running ``main()`` is a strong
integration test (and keeps the examples from rotting).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_discovered():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = load_example(name)
    module.main()  # every example asserts its own correctness
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"

"""Tests for the command-line interface (using only fast experiments)."""

import pytest

import repro.experiments.cli as cli


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table4" in out

    def test_default_is_list(self, capsys):
        assert cli.main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_run_single_experiment(self, capsys):
        assert cli.main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "32.8" in out
        assert "[PASS]" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli.main(["fig99"])

    @pytest.mark.parametrize("retries", ["0", "-1"])
    def test_bad_run_retries_is_a_usage_error(self, retries, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["list", "--run-retries", retries])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        assert "--run-retries must be >= 1" in capsys.readouterr().err

    def test_markdown_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert cli.main(["table1", "--markdown", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduced tables and figures")
        assert "| paradigm |" in text
        assert "leviathan-repro table1" in text

    def test_failed_expectations_exit_nonzero(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.runner import Experiment

        def failing():
            exp = Experiment(name="doomed", paper_reference="-")
            exp.expect("impossible", "greater", 0.0, 1.0)
            return exp

        registry.register("doomed-test", failing, "always fails")
        try:
            assert cli.main(["doomed-test"]) == 1
            assert cli.main(["doomed-test", "--no-check"]) == 0
        finally:
            registry._runners.pop("doomed-test", None)

    def test_speedup_chart_printed(self, capsys):
        assert cli.main(["ablation-compaction"]) == 0
        # compaction rows carry no speedup -> no chart, still fine
        out = capsys.readouterr().out
        assert "fragmentation_pct" in out


class TestTelemetryCli:
    def test_telemetry_out_captures_artifacts(self, tmp_path, capsys):
        from repro.sim.telemetry import load_and_validate
        from repro.sim.telemetry.session import active_session

        outdir = tmp_path / "telem"
        assert cli.main(["ablation-mc-cache", "--no-check",
                         "--telemetry-out", str(outdir)]) == 0
        assert "telemetry:" in capsys.readouterr().out
        # The session must not leak past the run.
        assert active_session() is None
        # One artifact directory per simulation run, machine dirs inside.
        runs = sorted((outdir / "runs").glob("*/machine-*"))
        assert runs
        for run in runs:
            assert (run / "metrics.json").exists()
            assert (run / "metrics.prom").exists()
            _trace, problems = load_and_validate(str(run / "trace.json"))
            assert problems == []

    def test_telemetry_report_command(self, tmp_path, capsys):
        outdir = tmp_path / "telem"
        assert cli.main(["ablation-mc-cache", "--no-check",
                         "--telemetry-out", str(outdir)]) == 0
        capsys.readouterr()
        assert cli.main(["telemetry", str(outdir)]) == 0
        out = capsys.readouterr().out
        assert "trace: VALID" in out
        assert "ui.perfetto.dev" in out

    def test_telemetry_command_requires_dir(self, capsys):
        assert cli.main(["telemetry"]) == 2

    def test_telemetry_report_empty_dir(self, tmp_path, capsys):
        assert cli.main(["telemetry", str(tmp_path)]) == 1
        assert "no telemetry runs" in capsys.readouterr().out


class TestFaultsCli:
    def test_faults_flag_arms_a_plan(self, tmp_path, capsys):
        import json

        from repro.sim.faults import active_session

        outdir = tmp_path / "chaos"
        assert (
            cli.main(
                [
                    "ablation-mc-cache",
                    "--no-check",
                    "--faults",
                    "noc-delay:0.05@20; seed:3",
                    "--telemetry-out",
                    str(outdir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults:" in out
        # The session must not leak past the run.
        assert active_session() is None
        report_paths = sorted(outdir.glob("runs/*/fault_report.json"))
        assert report_paths
        for report_path in report_paths:
            report = json.loads(report_path.read_text())
            assert report["seed"] == 3
            assert report["machines"]

    def test_faults_without_telemetry_dir(self, capsys):
        assert (
            cli.main(
                ["ablation-mc-cache", "--no-check", "--faults", "noc-delay:0.01@10"]
            )
            == 0
        )
        assert "faults:" in capsys.readouterr().out

    def test_bad_fault_spec_rejected(self):
        from repro.sim.faults import FaultPlanError

        with pytest.raises(FaultPlanError):
            cli.main(["ablation-mc-cache", "--no-check", "--faults", "meteor:1"])

    def test_crashing_workload_exits_nonzero(self, tmp_path, capsys):
        import json

        from repro.experiments import registry

        def crashing():
            raise RuntimeError("chaos took the machine down")

        registry.register("crash-test", crashing, "always crashes")
        try:
            outdir = tmp_path / "crash"
            assert (
                cli.main(["crash-test", "--telemetry-out", str(outdir)]) == 1
            )
            err = capsys.readouterr().err
            assert "CRASHED: crash-test" in err
            assert "chaos took the machine down" in err
            error_path = outdir / "crash-test" / "error.json"
            assert error_path.exists()
            saved = json.loads(error_path.read_text())
            assert saved["error"] == "RuntimeError"
            assert "chaos took the machine down" in saved["message"]
            assert "Traceback" in saved["traceback"]
        finally:
            registry._runners.pop("crash-test", None)

    def test_crash_does_not_leak_sessions(self, capsys):
        from repro.experiments import registry
        from repro.sim.faults import active_session as fault_session
        from repro.sim.telemetry.session import active_session as telemetry_session

        def crashing():
            raise ValueError("boom")

        registry.register("crash-test-2", crashing, "always crashes")
        try:
            assert cli.main(["crash-test-2", "--faults", "seed:1"]) == 1
            assert fault_session() is None
            assert telemetry_session() is None
        finally:
            registry._runners.pop("crash-test-2", None)
        capsys.readouterr()

"""Tests for the command-line interface (using only fast experiments)."""

import pytest

import repro.experiments.cli as cli


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table4" in out

    def test_default_is_list(self, capsys):
        assert cli.main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_run_single_experiment(self, capsys):
        assert cli.main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "32.8" in out
        assert "[PASS]" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli.main(["fig99"])

    def test_markdown_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert cli.main(["table1", "--markdown", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduced tables and figures")
        assert "| paradigm |" in text
        assert "leviathan-repro table1" in text

    def test_failed_expectations_exit_nonzero(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.runner import Experiment

        def failing():
            exp = Experiment(name="doomed", paper_reference="-")
            exp.expect("impossible", "greater", 0.0, 1.0)
            return exp

        registry.register("doomed-test", failing, "always fails")
        try:
            assert cli.main(["doomed-test"]) == 1
            assert cli.main(["doomed-test", "--no-check"]) == 0
        finally:
            registry._runners.pop("doomed-test", None)

    def test_speedup_chart_printed(self, capsys):
        assert cli.main(["ablation-compaction"]) == 0
        # compaction rows carry no speedup -> no chart, still fine
        out = capsys.readouterr().out
        assert "fragmentation_pct" in out

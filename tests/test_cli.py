"""Tests for the command-line interface (using only fast experiments)."""

import pytest

import repro.experiments.cli as cli


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table4" in out

    def test_default_is_list(self, capsys):
        assert cli.main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_run_single_experiment(self, capsys):
        assert cli.main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "32.8" in out
        assert "[PASS]" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli.main(["fig99"])

    def test_markdown_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert cli.main(["table1", "--markdown", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduced tables and figures")
        assert "| paradigm |" in text
        assert "leviathan-repro table1" in text

    def test_failed_expectations_exit_nonzero(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.runner import Experiment

        def failing():
            exp = Experiment(name="doomed", paper_reference="-")
            exp.expect("impossible", "greater", 0.0, 1.0)
            return exp

        registry.register("doomed-test", failing, "always fails")
        try:
            assert cli.main(["doomed-test"]) == 1
            assert cli.main(["doomed-test", "--no-check"]) == 0
        finally:
            registry._runners.pop("doomed-test", None)

    def test_speedup_chart_printed(self, capsys):
        assert cli.main(["ablation-compaction"]) == 0
        # compaction rows carry no speedup -> no chart, still fine
        out = capsys.readouterr().out
        assert "fragmentation_pct" in out


class TestTelemetryCli:
    def test_telemetry_out_captures_artifacts(self, tmp_path, capsys):
        from repro.sim.telemetry import load_and_validate
        from repro.sim.telemetry.session import active_session

        outdir = tmp_path / "telem"
        assert cli.main(["ablation-mc-cache", "--no-check",
                         "--telemetry-out", str(outdir)]) == 0
        assert "telemetry:" in capsys.readouterr().out
        # The session must not leak past the run.
        assert active_session() is None
        runs = sorted((outdir / "ablation-mc-cache").glob("machine-*"))
        assert runs
        for run in runs:
            assert (run / "metrics.json").exists()
            assert (run / "metrics.prom").exists()
            _trace, problems = load_and_validate(str(run / "trace.json"))
            assert problems == []

    def test_telemetry_report_command(self, tmp_path, capsys):
        outdir = tmp_path / "telem"
        assert cli.main(["ablation-mc-cache", "--no-check",
                         "--telemetry-out", str(outdir)]) == 0
        capsys.readouterr()
        assert cli.main(["telemetry", str(outdir)]) == 0
        out = capsys.readouterr().out
        assert "trace: VALID" in out
        assert "ui.perfetto.dev" in out

    def test_telemetry_command_requires_dir(self, capsys):
        assert cli.main(["telemetry"]) == 2

    def test_telemetry_report_empty_dir(self, tmp_path, capsys):
        assert cli.main(["telemetry", str(tmp_path)]) == 1
        assert "no telemetry runs" in capsys.readouterr().out

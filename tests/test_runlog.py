"""Structured JSONL run logs and their CLI/pool wiring."""

import json
import logging

import repro.experiments.cli as cli
from repro.experiments.pool import ExperimentPool, RunSpec
from repro.sim.telemetry.log import (
    ROOT_LOGGER,
    clear_log_context,
    configure_run_logging,
    ensure_run_logging,
    get_logger,
    new_run_id,
    set_log_context,
)


def _read_jsonl(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJsonlLogging:
    def teardown_method(self):
        clear_log_context()

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with configure_run_logging(path, run_id="rid-1"):
            get_logger("pool").info(
                "run.start", extra={"hash": "abc", "label": "fig18/x"}
            )
            get_logger("scheduler").error("scheduler.deadlock", extra={"kind": "d"})
        records = _read_jsonl(path)
        assert len(records) == 2
        first = records[0]
        assert first["event"] == "run.start"
        assert first["logger"] == "leviathan.pool"
        assert first["run_id"] == "rid-1"
        assert first["hash"] == "abc"
        assert first["level"] == "INFO"
        assert isinstance(first["pid"], int)
        assert records[1]["kind"] == "d"

    def test_unconfigured_logging_is_silent(self, capsys):
        get_logger("pool").info("run.start", extra={"hash": "zzz"})
        captured = capsys.readouterr()
        assert "run.start" not in captured.err
        assert "run.start" not in captured.out

    def test_context_fields_merge_and_clear(self, tmp_path):
        path = str(tmp_path / "ctx.jsonl")
        with configure_run_logging(path):
            set_log_context(run_id="rid-2", cid="c1")
            get_logger("x").info("one")
            set_log_context(cid=None)
            get_logger("x").info("two")
        one, two = _read_jsonl(path)
        assert one["cid"] == "c1"
        assert "cid" not in two

    def test_ensure_run_logging_is_idempotent_per_path(self, tmp_path):
        path = str(tmp_path / "same.jsonl")
        handle = ensure_run_logging(path)
        try:
            assert ensure_run_logging(path) is None
            get_logger("y").info("once")
        finally:
            handle.close()
        assert len(_read_jsonl(path)) == 1

    def test_new_run_ids_are_distinct_enough(self):
        assert new_run_id()  # nonempty, hex-ish
        assert "-" in new_run_id()


class TestPoolLogging:
    def teardown_method(self):
        clear_log_context()
        # Detach any handler the pool attached so later tests stay silent.
        logger = logging.getLogger(ROOT_LOGGER)
        for handler in list(logger.handlers):
            if isinstance(handler, logging.FileHandler):
                logger.removeHandler(handler)
                handler.close()

    def test_pool_journals_run_lifecycle(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "cache"), log_path=path)
        pool.run(
            [
                RunSpec(
                    "repro.experiments.ablations:compaction_point",
                    {"compaction": True},
                    "log/on",
                ),
                RunSpec("tests.obs_helpers:deadlocking_point", {}, "log/dead"),
            ]
        )
        events = [(r["event"], r.get("label")) for r in _read_jsonl(path)]
        assert ("run.start", "log/on") in events
        assert ("run.end", "log/on") in events
        assert ("run.error", "log/dead") in events
        run_ids = {r["run_id"] for r in _read_jsonl(path) if "run_id" in r}
        assert run_ids == {pool.run_id}


class TestStatusCli:
    def test_status_exit_codes(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert cli.main(["status", missing]) == 1
        assert cli.main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "running (0)" in out

"""Structured JSONL run logs and their CLI/pool wiring."""

import json
import logging
import os
import re

import repro.experiments.cli as cli
from repro.experiments.pool import ExperimentPool, RunSpec
from repro.sim.telemetry.log import (
    KNOWN_EVENTS,
    ROOT_LOGGER,
    clear_log_context,
    configure_run_logging,
    ensure_run_logging,
    get_logger,
    new_run_id,
    set_log_context,
)


def _read_jsonl(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJsonlLogging:
    def teardown_method(self):
        clear_log_context()

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with configure_run_logging(path, run_id="rid-1"):
            get_logger("pool").info(
                "run.start", extra={"hash": "abc", "label": "fig18/x"}
            )
            get_logger("scheduler").error("scheduler.deadlock", extra={"kind": "d"})
        records = _read_jsonl(path)
        assert len(records) == 2
        first = records[0]
        assert first["event"] == "run.start"
        assert first["logger"] == "leviathan.pool"
        assert first["run_id"] == "rid-1"
        assert first["hash"] == "abc"
        assert first["level"] == "INFO"
        assert isinstance(first["pid"], int)
        assert records[1]["kind"] == "d"

    def test_unconfigured_logging_is_silent(self, capsys):
        get_logger("pool").info("run.start", extra={"hash": "zzz"})
        captured = capsys.readouterr()
        assert "run.start" not in captured.err
        assert "run.start" not in captured.out

    def test_context_fields_merge_and_clear(self, tmp_path):
        path = str(tmp_path / "ctx.jsonl")
        with configure_run_logging(path):
            set_log_context(run_id="rid-2", cid="c1")
            get_logger("x").info("one")
            set_log_context(cid=None)
            get_logger("x").info("two")
        one, two = _read_jsonl(path)
        assert one["cid"] == "c1"
        assert "cid" not in two

    def test_ensure_run_logging_is_idempotent_per_path(self, tmp_path):
        path = str(tmp_path / "same.jsonl")
        handle = ensure_run_logging(path)
        try:
            assert ensure_run_logging(path) is None
            get_logger("y").info("once")
        finally:
            handle.close()
        assert len(_read_jsonl(path)) == 1

    def test_new_run_ids_are_distinct_enough(self):
        assert new_run_id()  # nonempty, hex-ish
        assert "-" in new_run_id()


class TestPoolLogging:
    def teardown_method(self):
        clear_log_context()
        # Detach any handler the pool attached so later tests stay silent.
        logger = logging.getLogger(ROOT_LOGGER)
        for handler in list(logger.handlers):
            if isinstance(handler, logging.FileHandler):
                logger.removeHandler(handler)
                handler.close()

    def test_pool_journals_run_lifecycle(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "cache"), log_path=path)
        pool.run(
            [
                RunSpec(
                    "repro.experiments.ablations:compaction_point",
                    {"compaction": True},
                    "log/on",
                ),
                RunSpec("tests.obs_helpers:deadlocking_point", {}, "log/dead"),
            ]
        )
        events = [(r["event"], r.get("label")) for r in _read_jsonl(path)]
        assert ("run.start", "log/on") in events
        assert ("run.end", "log/on") in events
        assert ("run.error", "log/dead") in events
        run_ids = {r["run_id"] for r in _read_jsonl(path) if "run_id" in r}
        assert run_ids == {pool.run_id}


class TestStatusCli:
    def test_status_exit_codes(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert cli.main(["status", missing]) == 1
        assert cli.main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "running (0)" in out


class TestKnownEvents:
    """The ``KNOWN_EVENTS`` vocabulary stays in lockstep with the code.

    Scans every emit site in ``src/`` (``<logger>.info("dotted.name",
    ...)`` and friends) and cross-checks it against the registry both
    ways: an unregistered emit is a silent vocabulary leak, a
    registered-but-never-emitted event is dead weight that log
    consumers would wait on forever.
    """

    _EMIT = re.compile(
        r"\.(?:debug|info|warning|error|critical)\(\s*\"([a-z][a-z0-9_.]*)\"",
        re.DOTALL,
    )

    def _emitted_events(self):
        root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        events = set()
        for dirpath, _dirs, files in os.walk(root):
            for name in files:
                if not name.endswith(".py"):
                    continue
                with open(os.path.join(dirpath, name)) as handle:
                    for match in self._EMIT.finditer(handle.read()):
                        event = match.group(1)
                        if "." in event:  # dotted names only: log events
                            events.add(event)
        return events

    def test_every_emit_site_is_registered(self):
        emitted = self._emitted_events()
        assert emitted, "event scan found nothing -- regex or layout drift"
        unregistered = emitted - KNOWN_EVENTS
        assert not unregistered, (
            f"log events emitted but missing from KNOWN_EVENTS: "
            f"{sorted(unregistered)}"
        )

    def test_every_registered_event_is_emitted(self):
        dead = KNOWN_EVENTS - self._emitted_events()
        assert not dead, f"KNOWN_EVENTS entries never emitted: {sorted(dead)}"

    def test_supervision_events_registered(self):
        assert {
            "run.worker_died",
            "run.retry",
            "run.timeout",
            "run.hung",
            "sweep.interrupted",
            "cache.quarantined",
            "heartbeats.swept",
        } <= KNOWN_EVENTS

"""The noise-aware regression verdict engine (repro.perf.compare)."""

import json

import pytest

import repro.experiments.cli as cli
from repro.perf.compare import (
    DEFAULT_FACTOR,
    compare,
    has_regression,
    render_verdicts,
)


def payload(**benchmarks):
    """A minimal bench payload: name -> (median, q1, q3)."""
    return {
        "benchmarks": {
            name: {"median_s": m, "q1_s": q1, "q3_s": q3}
            for name, (m, q1, q3) in benchmarks.items()
        }
    }


def one_verdict(old, new, factor=DEFAULT_FACTOR):
    verdicts = compare(old, new, factor=factor)
    assert len(verdicts) == 1
    return verdicts[0]


class TestVerdicts:
    def test_regression_needs_both_magnitude_and_iqr(self):
        old = payload(b=(1.0, 0.9, 1.1))
        verdict = one_verdict(old, payload(b=(3.0, 2.9, 3.1)))
        assert verdict.status == "REGRESSION"
        assert verdict.ratio == pytest.approx(3.0)
        assert "IQR" in verdict.note

    def test_slowdown_below_factor_is_ok(self):
        # 1.5x the baseline median and above q3, but under the 2x
        # magnitude threshold: jitter, not a verdict.
        old = payload(b=(1.0, 0.9, 1.1))
        assert one_verdict(old, payload(b=(1.5, 1.4, 1.6))).status == "ok"

    def test_slowdown_within_baseline_iqr_is_ok(self):
        # A wildly noisy baseline whose own trials spread past 2x the
        # median: the magnitude test alone would cry regression.
        old = payload(b=(1.0, 0.5, 2.6))
        assert one_verdict(old, payload(b=(2.5, 2.4, 2.6))).status == "ok"

    def test_faster_is_symmetric(self):
        old = payload(b=(1.0, 0.9, 1.1))
        verdict = one_verdict(old, payload(b=(0.4, 0.3, 0.5)))
        assert verdict.status == "faster"

    def test_small_speedup_is_ok(self):
        old = payload(b=(1.0, 0.9, 1.1))
        assert one_verdict(old, payload(b=(0.8, 0.7, 0.9))).status == "ok"

    def test_new_and_missing_never_fail(self):
        old = payload(gone=(1.0, 0.9, 1.1))
        new = payload(added=(1.0, 0.9, 1.1))
        verdicts = {v.name: v for v in compare(old, new)}
        assert verdicts["gone"].status == "missing"
        assert verdicts["added"].status == "new"
        assert not has_regression(list(verdicts.values()))

    def test_custom_factor(self):
        old = payload(b=(1.0, 0.9, 1.1))
        new = payload(b=(1.6, 1.5, 1.7))
        assert one_verdict(old, new, factor=1.5).status == "REGRESSION"
        assert one_verdict(old, new, factor=2.0).status == "ok"

    def test_missing_iqr_falls_back_to_median(self):
        old = {"benchmarks": {"b": {"median_s": 1.0}}}
        new = payload(b=(3.0, 2.9, 3.1))
        assert one_verdict(old, new).status == "REGRESSION"

    def test_zero_baseline_median_never_regresses(self):
        old = payload(b=(0.0, 0.0, 0.0))
        verdict = one_verdict(old, payload(b=(1.0, 0.9, 1.1)))
        assert verdict.status == "ok"
        assert verdict.ratio is None


class TestRender:
    def test_render_mentions_counts_and_rule(self):
        old = payload(bad=(1.0, 0.9, 1.1), fine=(1.0, 0.9, 1.1))
        new = payload(bad=(9.0, 8.9, 9.1), fine=(1.0, 0.9, 1.1))
        text = render_verdicts(compare(old, new))
        assert "1 regression(s) at factor 2" in text
        assert "median beyond factor AND outside baseline IQR" in text
        assert "REGRESSION" in text
        assert "9.00x" in text


class TestCompareCli:
    """`bench --compare OLD NEW` must exit nonzero on a synthetic
    regression fixture and zero when the runs agree."""

    def _write(self, tmp_path, name, **benchmarks):
        path = tmp_path / name
        path.write_text(json.dumps(payload(**benchmarks)))
        return str(path)

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", b=(1.0, 0.9, 1.1))
        new = self._write(tmp_path, "new.json", b=(5.0, 4.9, 5.1))
        assert cli.main(["bench", "--compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_matching_runs_exit_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", b=(1.0, 0.9, 1.1))
        new = self._write(tmp_path, "new.json", b=(1.05, 1.0, 1.1))
        assert cli.main(["bench", "--compare", old, new]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_factor_flag_reaches_verdict(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", b=(1.0, 0.9, 1.1))
        new = self._write(tmp_path, "new.json", b=(1.6, 1.5, 1.7))
        assert cli.main(["bench", "--compare", old, new, "--factor", "1.5"]) == 1
        assert "factor 1.5" in capsys.readouterr().out

    def test_run_then_compare_against_fresh_self_passes(self, tmp_path, capsys):
        """Running one cheap benchmark and comparing against a baseline
        recorded from the same machine must not regress."""
        run_rc = cli.main(
            [
                "bench", "--trials", "1", "--warmup", "0",
                "--filter", "noc", "--out", str(tmp_path),
            ]
        )
        assert run_rc == 0
        baseline = next(tmp_path.glob("BENCH_*.json"))
        generous = json.loads(baseline.read_text())
        for entry in generous["benchmarks"].values():
            entry["median_s"] *= 10
            entry["q1_s"] = entry["median_s"] * 0.9
            entry["q3_s"] = entry["median_s"] * 1.1
        baseline.write_text(json.dumps(generous))
        rc = cli.main(
            [
                "bench", "--trials", "1", "--warmup", "0",
                "--filter", "noc", "--out", str(tmp_path / "again"),
                "--compare", str(baseline),
            ]
        )
        capsys.readouterr()
        assert rc == 0

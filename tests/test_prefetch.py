"""Unit tests for the strided prefetcher."""

from repro.sim.prefetch import StridePrefetcher


def make_pf():
    return StridePrefetcher(tile=0, line_size=64)


class TestStrideDetection:
    def test_first_miss_no_prefetch(self):
        assert make_pf().train(100) == []

    def test_two_misses_arm_unit_stride(self):
        pf = make_pf()
        pf.train(100)
        # Second miss establishes the stride but confidence is still 0.
        assert pf.train(101) == []
        # Third confirms: prefetch ahead.
        assert pf.train(102) == [103, 104]

    def test_non_unit_stride(self):
        pf = make_pf()
        pf.train(100)
        pf.train(104)
        assert pf.train(108) == [112, 116]

    def test_negative_stride(self):
        pf = make_pf()
        pf.train(108)
        pf.train(104)
        assert pf.train(100) == [96, 92]

    def test_stride_change_resets_confidence(self):
        pf = make_pf()
        pf.train(100)
        pf.train(101)
        pf.train(102)
        assert pf.train(110) == []  # broke the pattern

    def test_repeated_line_ignored(self):
        pf = make_pf()
        pf.train(100)
        assert pf.train(100) == []

    def test_random_pattern_never_prefetches(self):
        pf = make_pf()
        issued = []
        for line in (3, 77, 12, 900, 44, 530, 2, 61):
            issued.extend(pf.train(line))
        assert issued == []


class TestRegions:
    def test_streams_in_different_regions_independent(self):
        pf = make_pf()
        region_a = 0
        region_b = 1 << 14  # different 4 KB region (in lines: 4096/64=64)
        pf.train(region_a + 0)
        pf.train(region_b + 0)
        pf.train(region_a + 1)
        pf.train(region_b + 1)
        assert pf.train(region_a + 2) == [region_a + 3, region_a + 4]
        assert pf.train(region_b + 2) == [region_b + 3, region_b + 4]

    def test_table_capacity_bounded(self):
        pf = make_pf()
        for i in range(64):
            pf.train(i * 1024)  # 64 distinct regions
        assert len(pf._table) <= StridePrefetcher.TABLE_ENTRIES

"""The experiment pool: hashing, caching, resume, determinism, errors.

The determinism test is the load-bearing one: a parallel sweep
(``jobs=4``) must produce bit-identical figure data to an inline sweep
(``jobs=1``), including a trip through the on-disk JSON cache.
"""

import json

import pytest

from repro.experiments import pool as pool_module
from repro.experiments.pool import (
    ExperimentPool,
    IncompleteSweepError,
    RunSpec,
    decode_result,
    encode_result,
    spec_hash,
)
from repro.workloads.common import RunResult

#: A hash-table instance small enough to simulate many times per test.
_TINY = dict(nodes_per_bucket=8, n_threads=4, lookups_per_thread=8)

_COMPACTION = "repro.experiments.ablations:compaction_point"
_MC_CACHE = "repro.experiments.ablations:mc_cache_point"


def _cheap_specs():
    return [
        RunSpec(_COMPACTION, {"compaction": True}, "cheap/on"),
        RunSpec(_COMPACTION, {"compaction": False}, "cheap/off"),
        RunSpec(_MC_CACHE, {"fifo_lines": 0}, "cheap/fifo0"),
    ]


class TestSpecHash:
    def test_label_excluded(self):
        a = RunSpec("m:f", {"x": 1}, "label-a")
        b = RunSpec("m:f", {"x": 1}, "label-b")
        assert spec_hash(a) == spec_hash(b)

    def test_kwargs_order_irrelevant(self):
        a = RunSpec("m:f", {"x": 1, "y": 2})
        b = RunSpec("m:f", {"y": 2, "x": 1})
        assert spec_hash(a) == spec_hash(b)

    def test_kwargs_change_hash(self):
        assert spec_hash(RunSpec("m:f", {"x": 1})) != spec_hash(
            RunSpec("m:f", {"x": 2})
        )

    def test_fn_changes_hash(self):
        assert spec_hash(RunSpec("m:f", {})) != spec_hash(RunSpec("m:g", {}))

    def test_faults_change_hash(self):
        spec = RunSpec("m:f", {"x": 1})
        assert spec_hash(spec) != spec_hash(spec, faults="crash:1@2000")
        assert spec_hash(spec, faults=None) == spec_hash(spec)

    def test_tuples_hash_like_lists(self):
        assert spec_hash(RunSpec("m:f", {"sizes": (24, 64)})) == spec_hash(
            RunSpec("m:f", {"sizes": [24, 64]})
        )

    def test_unserializable_kwargs_rejected(self):
        with pytest.raises(TypeError):
            spec_hash(RunSpec("m:f", {"machine": object()}))


class TestResultCodec:
    def test_run_result_round_trip(self):
        result = RunResult(
            name="leviathan",
            cycles=12345.5,
            energy_pj=6789.25,
            stats={"dram.accesses": 7, "noc.flit_hops": 11},
            output=[1, 2, 3],
            notes="note",
            energy_breakdown={"noc": 1.5},
            access_profile={("llc", "hit"): 3, ("dram", "fill"): 2},
        )
        # Through the same JSON layer the disk cache uses.
        payload = json.loads(json.dumps(encode_result(result)))
        back = decode_result(payload)
        assert back == result

    def test_infinite_cycles_survive(self):
        result = RunResult(
            name="no_padding", cycles=float("inf"), energy_pj=0.0, stats={}
        )
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload).cycles == float("inf")

    def test_unserializable_output_dropped(self):
        result = RunResult(
            name="x", cycles=1.0, energy_pj=1.0, stats={}, output=object()
        )
        assert encode_result(result)["output"] is None

    def test_plain_values_round_trip(self):
        payload = json.loads(
            json.dumps(encode_result({"fragmentation": 0.25, "compaction": True}))
        )
        assert decode_result(payload) == {"fragmentation": 0.25, "compaction": True}


class TestDeterminism:
    def test_fig18_parallel_matches_inline(self, tmp_path):
        """--jobs 4 must produce bit-identical figure data to --jobs 1."""
        from repro.experiments import figures

        inline = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "c1"))
        parallel = ExperimentPool(jobs=4, cache_dir=str(tmp_path / "c4"))
        exp1 = figures.run_fig18(params=_TINY, sizes=(24, 64), pool=inline)
        exp4 = figures.run_fig18(params=_TINY, sizes=(24, 64), pool=parallel)
        assert json.dumps(exp1.rows, sort_keys=True) == json.dumps(
            exp4.rows, sort_keys=True
        )

    def test_process_backend_without_retries_matches_inline(self, tmp_path):
        """The supervised backend is a pure mechanism swap: fig18 on
        LocalProcessBackend with retry disabled is byte-for-byte the
        historical pool's output."""
        from repro.experiments import figures
        from repro.experiments.retry import RetryPolicy

        inline = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "ci"))
        supervised = ExperimentPool(
            jobs=4,
            cache_dir=str(tmp_path / "cs"),
            backend="local-process",
            retry=RetryPolicy(max_attempts=1),
        )
        exp1 = figures.run_fig18(params=_TINY, sizes=(24, 64), pool=inline)
        exp4 = figures.run_fig18(params=_TINY, sizes=(24, 64), pool=supervised)
        assert json.dumps(exp1.rows, sort_keys=True) == json.dumps(
            exp4.rows, sort_keys=True
        )
        assert supervised.supervision["retries"] == 0

    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        """Figure data decoded from the disk cache matches fresh data."""
        from repro.experiments import figures

        cache = str(tmp_path / "cache")
        fresh = figures.run_fig18(
            params=_TINY, sizes=(24,), pool=ExperimentPool(jobs=1, cache_dir=cache)
        )
        cached = figures.run_fig18(
            params=_TINY, sizes=(24,), pool=ExperimentPool(jobs=1, cache_dir=cache)
        )
        assert json.dumps(fresh.rows, sort_keys=True) == json.dumps(
            cached.rows, sort_keys=True
        )


class TestCaching:
    def test_cache_hit_executes_nothing(self, tmp_path, monkeypatch):
        """A second sweep over the same specs runs zero simulator steps."""
        from repro.sim.scheduler import Scheduler

        cache = str(tmp_path / "cache")
        specs = _cheap_specs()
        warm = ExperimentPool(jobs=1, cache_dir=cache)
        first = warm.run_results(specs)
        assert warm.consume_report()["executed"] == len(specs)

        def boom(self):
            raise AssertionError("simulator executed on what should be a cache hit")

        monkeypatch.setattr(Scheduler, "run", boom)
        cold = ExperimentPool(jobs=1, cache_dir=cache)
        second = cold.run_results(specs)
        report = cold.consume_report()
        assert report["cached"] == len(specs)
        assert "executed" not in report
        assert second == first

    def test_memory_memo_dedupes_within_a_pool(self, tmp_path):
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "cache"))
        spec = RunSpec(_COMPACTION, {"compaction": True})
        a, b = pool.run_results([spec, spec])
        assert pool.consume_report()["executed"] == 1
        assert a == b

    def test_no_cache_pool_reexecutes(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = _cheap_specs()[:1]
        ExperimentPool(jobs=1, cache_dir=cache).run_results(specs)
        pool = ExperimentPool(jobs=1, cache_dir=cache, cache=False)
        pool.run_results(specs)
        assert pool.consume_report()["executed"] == 1

    def test_manifest_journals_every_spec(self, tmp_path):
        cache = tmp_path / "cache"
        pool = ExperimentPool(jobs=1, cache_dir=str(cache))
        pool.run_results(_cheap_specs())
        entries = [
            json.loads(line)
            for line in (cache / "manifest.jsonl").read_text().splitlines()
        ]
        assert [e["status"] for e in entries] == ["ok"] * 3
        assert [e["label"] for e in entries] == ["cheap/on", "cheap/off", "cheap/fifo0"]


class TestResume:
    def test_resume_after_kill_reexecutes_only_the_torn_run(self, tmp_path):
        """A manifest truncated mid-append (kill) replays all but that run."""
        cache = tmp_path / "cache"
        specs = _cheap_specs()
        ExperimentPool(jobs=1, cache_dir=str(cache)).run_results(specs)

        # Simulate a kill during the final manifest append: the last
        # line is torn mid-JSON.
        manifest = cache / "manifest.jsonl"
        lines = manifest.read_text().splitlines()
        manifest.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        resumed = ExperimentPool(
            jobs=1, cache_dir=str(cache), cache=False, resume=True
        )
        results = resumed.run_results(specs)
        report = resumed.consume_report()
        assert report["cached"] == len(specs) - 1
        assert report["executed"] == 1
        assert [r if isinstance(r, dict) else r.name for r in results]

        # The resumed pool terminated the torn line before appending, so
        # a third resume sees every run recorded ok and executes nothing.
        third = ExperimentPool(
            jobs=1, cache_dir=str(cache), cache=False, resume=True
        )
        third.run_results(specs)
        final = third.consume_report()
        assert final["cached"] == len(specs)
        assert "executed" not in final

    def test_resume_without_manifest_runs_everything(self, tmp_path):
        pool = ExperimentPool(
            jobs=1, cache_dir=str(tmp_path / "cache"), cache=False, resume=True
        )
        pool.run_results(_cheap_specs()[:2])
        assert pool.consume_report()["executed"] == 2


class TestFailurePolicy:
    def test_failed_spec_does_not_stop_the_sweep(self, tmp_path):
        cache = tmp_path / "cache"
        telem = tmp_path / "telem"
        pool = ExperimentPool(
            jobs=1, cache_dir=str(cache), telemetry_dir=str(telem)
        )
        specs = [
            RunSpec(_COMPACTION, {"compaction": True}, "sweep/good"),
            RunSpec(_COMPACTION, {"bogus_kwarg": 1}, "sweep/bad"),
            RunSpec(_COMPACTION, {"compaction": False}, "sweep/also-good"),
        ]
        with pytest.raises(IncompleteSweepError) as excinfo:
            pool.run_results(specs)
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0]["label"] == "sweep/bad"

        # The healthy specs still completed and were journaled.
        entries = [
            json.loads(line)
            for line in (cache / "manifest.jsonl").read_text().splitlines()
        ]
        assert sorted(e["status"] for e in entries) == ["error", "ok", "ok"]
        bad = next(e for e in entries if e["status"] == "error")
        assert bad["error"]["type"] == "TypeError"

        # The failure left an error.json in its artifact directory.
        error_files = list(telem.glob("runs/*/error.json"))
        assert len(error_files) == 1
        saved = json.loads(error_files[0].read_text())
        assert saved["error"] == "TypeError"
        assert "bogus_kwarg" in saved["message"]

    def test_raw_run_reports_outcomes_without_raising(self, tmp_path):
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "cache"))
        outcomes = pool.run([RunSpec(_COMPACTION, {"bogus_kwarg": 1}, "bad")])
        assert outcomes[0]["status"] == "error"
        assert pool.failures and pool.failures[0]["label"] == "bad"

    def test_failures_are_not_cached(self, tmp_path):
        cache = tmp_path / "cache"
        pool = ExperimentPool(jobs=1, cache_dir=str(cache))
        spec = RunSpec(_COMPACTION, {"bogus_kwarg": 1}, "bad")
        pool.run([spec])
        digest = spec_hash(spec)
        assert not (cache / f"{digest}.json").exists()
        # A later pool re-executes it rather than serving the failure.
        retry = ExperimentPool(jobs=1, cache_dir=str(cache))
        assert retry.run([spec])[0]["status"] == "error"
        assert retry.consume_report()["executed"] == 1


class TestArtifacts:
    def test_telemetry_dir_forces_execution_and_captures(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = _cheap_specs()[2:]  # the mc-cache point builds a machine
        ExperimentPool(jobs=1, cache_dir=cache).run_results(specs)

        telem = tmp_path / "telem"
        pool = ExperimentPool(jobs=1, cache_dir=cache, telemetry_dir=str(telem))
        pool.run_results(specs)
        report = pool.consume_report()
        assert report["executed"] == 1  # cache read skipped
        assert report["telemetry_machines"] >= 1
        assert list(telem.glob("runs/*/machine-*/trace.json"))

    def test_faults_recorded_per_run(self, tmp_path):
        telem = tmp_path / "telem"
        pool = ExperimentPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry_dir=str(telem),
            faults="noc-delay:0.05@20; seed:3",
        )
        pool.run_results(_cheap_specs()[2:])
        reports = list(telem.glob("runs/*/fault_report.json"))
        assert reports
        saved = json.loads(reports[0].read_text())
        assert saved["seed"] == 3
        assert saved["machines"]

    def test_default_pool_is_inline_and_memoized(self):
        pool = pool_module.default_pool()
        assert pool is pool_module.default_pool()
        assert pool.jobs == 1
        assert pool.cache_dir is None

"""Smoke tests for the sensitivity sweeps at tiny scale.

These do not validate the paper shapes (the benchmarks do, at full
reproduction scale); they validate the sweep *plumbing*: parameter
injection, row production, fixed-LLC configs restored afterwards.
"""

import repro.workloads.hashtable as ht_module
from repro.experiments import sensitivity

TINY_PHI = dict(n_vertices=256, n_edges=1024, n_threads=4, seed=7)
TINY_HATS = dict(n_vertices=256, n_edges=2048, n_communities=8, seed=31)
TINY_HT = dict(nodes_per_bucket=8, n_threads=4, lookups_per_thread=8)


class TestSweepPlumbing:
    def test_fig22_rows(self):
        exp = sensitivity.run_fig22(buffer_sizes=(1, 4), params=TINY_PHI)
        assert len(exp.rows) == 2
        assert {r["invoke_buffer_entries"] for r in exp.rows} == {1, 4}

    def test_fig23_rows_and_config_restored(self):
        import repro.workloads.hats as hats_module

        original = hats_module.hats_config
        exp = sensitivity.run_fig23(buffer_sizes=(16, 64), params=TINY_HATS)
        assert len(exp.rows) == 2
        assert hats_module.hats_config is original

    def test_fig24_rows_and_config_restored(self):
        original = ht_module.hashtable_config
        exp = sensitivity.run_fig24(bucket_counts=(16, 64), params=TINY_HT)
        assert len(exp.rows) == 2
        assert ht_module.hashtable_config is original
        # Table size grows monotonically across rows.
        sizes = [r["table_kb"] for r in exp.rows]
        assert sizes == sorted(sizes)

    def test_fig25_rows(self):
        exp = sensitivity.run_fig25(tile_counts=(4, 8), params=TINY_HT)
        assert len(exp.rows) == 2
        assert all(r["speedup"] > 0 for r in exp.rows)
        assert all(r["lev_flit_hops"] < r["base_flit_hops"] for r in exp.rows)

"""Scheduler watchdog tests: no-progress loops surface as DeadlockError.

The watchdog is default-on (``watchdog_steps`` in SystemConfig): a
workload spinning on zero-latency operations, or parked forever on a
condition nobody signals, raises a typed
:class:`~repro.sim.scheduler.DeadlockError` carrying a diagnostic dump
instead of hanging the process.
"""

import pytest

from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.events import WatchdogFired
from repro.sim.ops import Compute, Condition, Wait
from repro.sim.scheduler import DeadlockError, SimDeadlock
from repro.sim.system import Machine


def spinning(machine):
    """A context that burns zero-latency ops forever."""

    def prog():
        while True:
            yield Compute(0)

    machine.spawn(prog(), tile=0, name="spinner")


class TestWatchdogLivelock:
    def test_zero_latency_spin_raises(self):
        machine = Machine(small_config(watchdog_steps=500))
        spinning(machine)
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert "without progress" in str(excinfo.value)
        assert "spinner" in str(excinfo.value)

    def test_deadlock_error_is_a_sim_deadlock(self):
        machine = Machine(small_config(watchdog_steps=500))
        spinning(machine)
        with pytest.raises(SimDeadlock):
            machine.run()

    def test_watchdog_disabled_by_zero(self):
        # With the watchdog off, bound the spin so the test terminates.
        machine = Machine(small_config(watchdog_steps=0))
        ran = []

        def prog():
            for _ in range(2_000):
                yield Compute(0)
            ran.append(True)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert ran == [True]

    def test_fires_watchdog_event(self):
        machine = Machine(small_config(watchdog_steps=500))
        fired = []
        machine.events.subscribe(WatchdogFired, fired.append)
        spinning(machine)
        with pytest.raises(DeadlockError):
            machine.run()
        assert len(fired) == 1
        assert fired[0].steps == 500
        assert machine.stats["watchdog.fired"] == 1

    def test_progressing_run_does_not_trip(self):
        # More total operations than the threshold, but time advances:
        # the counter resets and the watchdog stays quiet.
        machine = Machine(small_config(watchdog_steps=100))

        def prog():
            for _ in range(5_000):
                yield Compute(0)
                yield Compute(5)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.stats["watchdog.fired"] == 0


class TestNeverSignaledCondition:
    def test_hang_surfaces_with_waiter_list(self):
        machine = Machine(small_config())
        lonely = Condition("never-signaled")

        def waiter():
            yield Wait(lonely)

        machine.spawn(waiter(), tile=1, name="orphan-waiter")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        message = str(excinfo.value)
        assert "orphan-waiter" in message
        assert "never-signaled" in message
        assert "tile 1" in message

    def test_dump_includes_engine_state(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        runtime.engines[2].fail(at_time=0.0)
        stuck = Condition("stuck")

        def waiter():
            yield Wait(stuck)

        machine.spawn(waiter(), tile=0, name="w")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert "FAILED" in str(excinfo.value)

    def test_park_wake_exchange_is_not_a_deadlock(self):
        # A producer/consumer pair parking and waking repeatedly (with
        # real latency in between) never trips the watchdog.
        machine = Machine(small_config(watchdog_steps=200))
        data = Condition("data")
        items = []
        rounds = []

        def producer():
            for i in range(300):
                yield Compute(1)
                items.append(i)
                machine.wake_all(data)

        def consumer():
            taken = 0
            while taken < 300:
                while not items:
                    yield Wait(data)
                items.pop()
                taken += 1
                yield Compute(1)
            rounds.append(True)

        machine.spawn(producer(), tile=0, name="producer")
        machine.spawn(consumer(), tile=1, name="consumer")
        machine.run()
        assert rounds == [True]
        assert machine.stats["watchdog.fired"] == 0


class TestDeadlockDiagnostics:
    """Every DeadlockError raise path emits WatchdogFired and carries a
    structured stall snapshot (what the flight recorder drains)."""

    @pytest.mark.parametrize("mode", ["runlist", "heap"])
    def test_drained_raise_emits_watchdog_fired(self, mode):
        machine = Machine(small_config(scheduler_mode=mode))
        fired = []
        machine.events.subscribe(WatchdogFired, fired.append)
        lonely = Condition("never-signaled")

        def waiter():
            yield Wait(lonely)

        machine.spawn(waiter(), tile=1, name="orphan-waiter")
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert len(fired) == 1
        assert fired[0].parked == 1
        assert excinfo.value.kind == "drained"
        assert machine.stats["deadlock.drained"] == 1
        snapshot = excinfo.value.snapshot
        assert snapshot["parked_total"] == 1
        assert snapshot["parked"][0]["name"] == "orphan-waiter"
        assert snapshot["parked"][0]["tile"] == 1
        assert "never-signaled" in snapshot["parked"][0]["condition"]

    def test_watchdog_error_carries_snapshot(self):
        machine = Machine(small_config(watchdog_steps=500))
        spinning(machine)
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        assert excinfo.value.kind == "watchdog"
        snapshot = excinfo.value.snapshot
        assert snapshot["steps_without_progress"] == 500
        assert snapshot["running"]["name"] == "spinner"

    def test_detached_bus_still_raises_without_events(self):
        # No subscriber: the drained raise must not wake the bus.
        machine = Machine(small_config())
        lonely = Condition("quiet")

        def waiter():
            yield Wait(lonely)

        machine.spawn(waiter(), tile=0, name="quiet-waiter")
        with pytest.raises(DeadlockError):
            machine.run()
        assert not machine.events.active
        assert machine.stats["deadlock.drained"] == 1

"""Unit tests for the Machine facade and Tile views."""

import pytest

from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine


class TestMachine:
    def test_spawn_validates_tile(self, machine):
        with pytest.raises(ValueError):
            machine.spawn(iter(()), tile=99)

    def test_run_inline_returns_latency_and_result(self, machine):
        def action():
            yield Compute(10)
            yield Load(0x10000, 8)
            return "done"

        latency, result = machine.run_inline(action(), tile=0)
        assert latency > 0
        assert result == "done"

    def test_run_inline_engine_vs_core_timing(self, machine):
        def action():
            yield Compute(12)

        engine_lat, _ = machine.run_inline(action(), tile=0, is_engine=True)
        core_lat, _ = machine.run_inline(action(), tile=0, is_engine=False)
        # Engine: 12 / issue_width 2 = 6; core: 12 / ipc 3 = 4.
        assert engine_lat == pytest.approx(6)
        assert core_lat == pytest.approx(4)

    def test_seconds_conversion(self, machine):
        freq_hz = machine.config.core.freq_ghz * 1e9
        assert machine.seconds(cycles=freq_hz) == pytest.approx(1.0)

    def test_mem_value_store(self, machine):
        machine.mem[0x1234] = {"anything": True}
        assert machine.mem[0x1234]["anything"]

    def test_repr(self, machine):
        assert "tiles" in repr(machine)

    def test_run_can_be_resumed_with_new_work(self, machine):
        def prog():
            yield Compute(30)

        machine.spawn(prog(), tile=0)
        first = machine.run()
        machine.spawn(prog(), tile=1)
        second = machine.run()
        assert second >= first


class TestTile:
    def test_tile_views(self, machine):
        tile = machine.tiles[1]
        assert tile.l1 is machine.hierarchy.l1[1]
        assert tile.l2 is machine.hierarchy.l2[1]
        assert tile.llc_bank is machine.hierarchy.llc[1]
        assert tile.engine_l1 is machine.hierarchy.engine_l1[1]

    def test_engine_none_without_runtime(self, machine):
        assert machine.tiles[0].engine is None

    def test_engine_present_with_runtime(self, runtime):
        machine = runtime.machine
        assert machine.tiles[0].engine is runtime.engines[0]

    def test_coords(self, machine):
        assert machine.tiles[0].coords == (0, 0)
        assert machine.tiles[3].coords == (1, 1)  # 2x2 mesh on 4 tiles

    def test_repr(self, machine):
        assert "Tile(0" in repr(machine.tiles[0])


class TestFunctionalMemoryThroughMachinery:
    def test_store_then_load_roundtrip_values(self, machine):
        base = 0x5_0000
        values = {}

        def writer():
            for i in range(32):
                addr = base + i * 8
                yield Store(addr, 8, apply=lambda a=addr, v=i * i: machine.mem.__setitem__(a, v))

        def reader():
            for i in range(32):
                addr = base + i * 8
                yield Load(addr, 8, apply=lambda a=addr, i=i: values.__setitem__(i, machine.mem.get(a)))

        machine.spawn(writer(), tile=0)
        machine.run()
        machine.spawn(reader(), tile=1)
        machine.run()
        assert values == {i: i * i for i in range(32)}

"""Property-based tests for stream flow control.

For arbitrary producer/consumer compute costs, buffer sizes, and entry
counts: no deadlock, exact FIFO order, and every pushed value consumed
exactly once.
"""

from hypothesis import given, settings, strategies as st

from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import small_config
from repro.sim.ops import Compute
from repro.sim.system import Machine


class CostedStream(Stream):
    """Pushes 0..count-1 with per-item producer compute costs."""

    def __init__(self, runtime, count, costs, **kwargs):
        self.count = count
        self.costs = costs
        super().__init__(runtime, **kwargs)

    def gen_stream(self, env):
        for i in range(self.count):
            yield Compute(self.costs[i % len(self.costs)])
            yield from self.push(i)


@settings(max_examples=25, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=120),
    buffer_entries=st.sampled_from([16, 24, 32, 64]),
    producer_costs=st.lists(
        st.integers(min_value=0, max_value=120), min_size=1, max_size=5
    ),
    consumer_cost=st.integers(min_value=0, max_value=120),
    producer_tile=st.integers(min_value=0, max_value=3),
    consumer_tile=st.integers(min_value=0, max_value=3),
)
def test_property_stream_fifo_exactly_once(
    count, buffer_entries, producer_costs, consumer_cost, producer_tile, consumer_tile
):
    machine = Machine(small_config())
    runtime = Leviathan(machine)
    stream = CostedStream(
        runtime,
        count,
        producer_costs,
        object_size=8,
        buffer_entries=buffer_entries,
        consumer_tile=consumer_tile,
        producer_tile=producer_tile,
    )
    stream.start()
    got = []

    def consumer():
        while True:
            value = yield from stream.consume()
            if value is STREAM_END:
                return
            yield Compute(consumer_cost)
            got.append(value)

    machine.spawn(consumer(), tile=consumer_tile)
    machine.run()  # raises SimDeadlock on any flow-control bug
    assert got == list(range(count))


@settings(max_examples=15, deadline=None)
@given(
    count=st.integers(min_value=20, max_value=100),
    limit=st.integers(min_value=1, max_value=19),
)
def test_property_early_termination_never_deadlocks(count, limit):
    machine = Machine(small_config())
    runtime = Leviathan(machine)
    stream = CostedStream(
        runtime,
        count,
        [1],
        object_size=8,
        buffer_entries=16,
        consumer_tile=0,
    )
    producer_ctx = stream.start()
    got = []

    def consumer():
        while len(got) < limit:
            value = yield from stream.consume()
            if value is STREAM_END:
                return
            got.append(value)
        stream.terminate()

    machine.spawn(consumer(), tile=0)
    machine.run()
    assert got == list(range(limit))
    assert producer_ctx.done

"""Chaos harness: seeded random fault schedules over mini-workloads.

For each seed, a random :class:`~repro.sim.faults.FaultPlan` of
*survivable* rules (timing faults, stall/exhaustion windows, a bounded
number of engine crashes) is generated and armed over one mini-workload
per paradigm (offload, data-triggered, streaming). The invariants:

- **results are bit-identical** to the fault-free run -- survivable
  faults change timing and routing, never functional outcomes;
- **the run still terminates** (degradation paths keep work flowing);
- **replays are deterministic**: the same plan over the same workload
  produces identical stats.

Unsurvivable plans must fail *loudly* with typed errors
(:class:`InvokeTimeout`, :class:`DeadlockError`), never hang or
silently corrupt.
"""

import random

import pytest

from repro.core.actor import Actor, action
from repro.core.morph import Morph
from repro.core.offload import Invoke, InvokeTimeout, Location
from repro.core.runtime import Leviathan
from repro.core.stream import STREAM_END, Stream
from repro.sim.config import small_config
from repro.sim.faults import (
    ContextExhaustion,
    DramError,
    EngineCrash,
    EngineStall,
    FaultPlan,
    NocDelay,
    NocDrop,
)
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine

SEEDS = [7, 23, 101]


def random_survivable_plan(seed):
    """A random plan whose faults every workload must survive."""
    rng = random.Random(seed)
    rules = []
    # At most one crash, never tile 0 (keeps a healthy engine near the
    # stream producer and varies the reroute topology per seed).
    if rng.random() < 0.7:
        rules.append(EngineCrash(rng.randrange(1, 4), rng.uniform(0, 500)))
    for _ in range(rng.randrange(0, 3)):
        tile = rng.randrange(0, 4)
        start = rng.uniform(0, 400)
        rules.append(
            EngineStall(tile, start, rng.uniform(50, 300))
            if rng.random() < 0.5
            else ContextExhaustion(tile, start, rng.uniform(50, 300))
        )
    if rng.random() < 0.8:
        rules.append(NocDelay(rng.uniform(0.01, 0.3), rng.uniform(5, 50)))
    if rng.random() < 0.5:
        rules.append(NocDrop(rng.uniform(0.005, 0.05), rng.uniform(64, 512)))
    if rng.random() < 0.8:
        rules.append(
            DramError(0, 1 << 30, rng.uniform(0.01, 0.2), rng.uniform(50, 400))
        )
    return FaultPlan(rules, seed=seed)


# ----------------------------------------------------------------------
# mini-workloads (one per paradigm)
# ----------------------------------------------------------------------
class Counter(Actor):
    SIZE = 8

    @action
    def bump(self, env, amount):
        yield Load(self.addr, 8)
        yield Compute(2)
        mem = env.machine.mem
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0) + amount),
        )


def offload_workload(machine, runtime):
    """Invoke storms across every location kind; result: counter values."""
    alloc = runtime.allocator_for(Counter, capacity=8)
    actors = [alloc.allocate() for _ in range(8)]
    locations = [Location.LOCAL, Location.REMOTE, Location.DYNAMIC]

    def invoker(tile):
        for i in range(10):
            actor = actors[(tile * 3 + i) % 8]
            yield Invoke(actor, "bump", (tile + 1,), location=locations[i % 3])
            yield Compute(2)

    for tile in range(4):
        machine.spawn(invoker(tile), tile=tile)
    machine.run()
    return tuple(machine.mem.get(a.addr, 0) for a in actors)


class InitMorph(Morph):
    """Constructors initialize actors to index * 3 on first touch."""

    def construct(self, view, index):
        yield Compute(1)
        self.machine.mem[self.get_actor_addr(index)] = index * 3


def morph_workload(machine, runtime):
    """Data-triggered constructions; result: values read through loads."""
    morph = InitMorph(runtime, "l2", 64, 8)
    seen = []

    def toucher(tile):
        for i in range(tile, 64, 8):
            addr = morph.get_actor_addr(i)
            yield Load(addr, 8)
            seen.append((i, machine.mem.get(addr)))
            yield Compute(1)

    for tile in range(4):
        machine.spawn(toucher(tile), tile=tile)
    machine.run()
    return tuple(sorted(seen))


class RangeStream(Stream):
    def gen_stream(self, env):
        for i in range(24):
            yield from self.push(i * 2)


def stream_workload(machine, runtime):
    """Producer on tile 1's engine, consumer on tile 0's core."""
    stream = RangeStream(
        runtime, object_size=8, buffer_entries=16, consumer_tile=0, producer_tile=1
    )
    got = []

    def consumer():
        while True:
            value = yield from stream.consume()
            if value is STREAM_END:
                return
            got.append(value)

    def starter():
        yield Compute(1)
        stream.start()
        machine.spawn(consumer(), tile=0)

    machine.spawn(starter(), tile=0)
    machine.run()
    return tuple(got)


WORKLOADS = {
    "offload": offload_workload,
    "morph": morph_workload,
    "stream": stream_workload,
}


def run_workload(name, plan=None, **config_overrides):
    machine = Machine(small_config(**config_overrides))
    runtime = Leviathan(machine)
    if plan is not None:
        plan.attach(machine)
    result = WORKLOADS[name](machine, runtime)
    return machine, result


# ----------------------------------------------------------------------
# survivable chaos
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", SEEDS)
class TestSurvivableChaos:
    def test_results_bit_identical_to_fault_free(self, workload, seed):
        _, clean = run_workload(workload)
        plan = random_survivable_plan(seed)
        machine, faulted = run_workload(workload, plan)
        assert faulted == clean, f"plan {plan.spec()} corrupted results"

    def test_replay_is_deterministic(self, workload, seed):
        plan = random_survivable_plan(seed)
        first_machine, first = run_workload(workload, plan)
        second_machine, second = run_workload(workload, plan)
        assert first == second
        assert dict(first_machine.stats.counters) == dict(
            second_machine.stats.counters
        )
        assert first_machine.faults.injected == second_machine.faults.injected


def test_plans_differ_across_seeds():
    specs = {random_survivable_plan(seed).spec() for seed in SEEDS}
    assert len(specs) == len(SEEDS)


def test_chaos_with_bounded_retries_still_identical():
    # Bounded-retry mode changes NACK handling; survivable plans must
    # still converge to the same results.
    _, clean = run_workload("offload")
    plan = random_survivable_plan(SEEDS[0])
    overrides = {"core.invoke_max_retries": 16, "core.invoke_retry_delay": 10}
    _, clean_bounded = run_workload("offload", **overrides)
    assert clean_bounded == clean
    _, faulted = run_workload("offload", plan, **overrides)
    assert faulted == clean


# ----------------------------------------------------------------------
# unsurvivable chaos: typed, loud failures
# ----------------------------------------------------------------------
class TestUnsurvivableChaos:
    def test_permanent_exhaustion_with_bounded_retries_times_out(self):
        plan = FaultPlan([ContextExhaustion(t, 0.0, 1e9) for t in range(4)])
        with pytest.raises(InvokeTimeout):
            run_workload(
                "offload",
                plan,
                **{"core.invoke_max_retries": 3, "core.invoke_retry_delay": 5},
            )

    def test_livelock_hits_the_watchdog(self):
        from repro.sim.scheduler import DeadlockError

        machine = Machine(small_config(watchdog_steps=500))

        def spin():
            while True:
                yield Compute(0)

        machine.spawn(spin(), tile=0, name="chaos-spinner")
        with pytest.raises(DeadlockError, match="chaos-spinner"):
            machine.run()

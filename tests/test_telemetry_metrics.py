"""Unit tests for the metrics registry: kinds, labels, exports."""

import json

import pytest

from repro.sim.telemetry.metrics import LogHistogram, MetricsRegistry, TimeSeries


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.counter("x").value == 5

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"bank": 0}).inc()
        reg.counter("hits", labels={"bank": 1}).inc(2)
        assert reg.counter("hits", labels={"bank": 0}).value == 1
        assert reg.counter("hits", labels={"bank": 1}).value == 2
        assert len(reg.series("hits")) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", labels={"a": 1, "b": 2}).inc()
        assert reg.counter("x", labels={"b": 2, "a": 1}).value == 1

    def test_gauge_tracks_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7, t=100)
        reg.gauge("depth").inc(-2, t=200)
        assert reg.gauge("depth").value == 5
        assert reg.gauge("depth").updated_at == 200

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestLogHistogram:
    def test_bucket_boundaries(self):
        assert LogHistogram.bucket_of(0) == 0
        assert LogHistogram.bucket_of(1) == 0
        assert LogHistogram.bucket_of(2) == 1
        assert LogHistogram.bucket_of(3) == 2
        assert LogHistogram.bucket_of(4) == 2
        assert LogHistogram.bucket_of(1025) == 11

    def test_stats(self):
        hist = LogHistogram()
        for value in (1, 2, 4, 100):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 1 and hist.max == 100
        assert hist.mean == pytest.approx(26.75)

    def test_percentile_upper_bound(self):
        hist = LogHistogram()
        for _ in range(99):
            hist.observe(10)  # bucket (8, 16]
        hist.observe(5000)  # bucket (4096, 8192]
        assert hist.percentile(50) == 16
        assert hist.percentile(100) == 8192

    def test_empty_percentile(self):
        assert LogHistogram().percentile(95) == 0.0


class TestTimeSeries:
    def test_windows_aggregate(self):
        ts = TimeSeries(window=100, mode="last")
        ts.record(10, 1)
        ts.record(90, 3)
        ts.record(150, 7)
        samples = ts.samples()
        assert [s["t0"] for s in samples] == [0, 100]
        assert samples[0]["count"] == 2 and samples[0]["value"] == 3
        assert samples[0]["min"] == 1 and samples[0]["max"] == 3
        assert samples[1]["value"] == 7

    def test_sum_mode(self):
        ts = TimeSeries(window=10, mode="sum")
        ts.record(1, 2)
        ts.record(2, 3)
        assert ts.samples()[0]["value"] == 5

    def test_memory_bounded_by_windows(self):
        ts = TimeSeries(window=1000)
        for t in range(10_000):
            ts.record(t, t)
        assert len(ts.bins) == 10

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window=0)
        with pytest.raises(ValueError):
            TimeSeries(mode="median")


class TestExports:
    def _registry(self):
        reg = MetricsRegistry(default_window=100)
        reg.counter("nacks", labels={"tile": 1}, help="NACK total").inc(3)
        reg.gauge("cycles").set(1234)
        hist = reg.histogram("latency")
        for value in (2, 30, 400):
            hist.observe(value)
        series = reg.timeseries("occupancy")
        series.record(50, 2)
        series.record(150, 9)
        return reg

    def test_json_snapshot_round_trips(self):
        reg = self._registry()
        snap = json.loads(reg.to_json(meta={"run": "t"}))
        assert snap["meta"]["run"] == "t"
        assert snap["counters"]['nacks{tile="1"}'] == 3
        assert snap["gauges"]["cycles"] == 1234
        assert snap["histograms"]["latency"]["count"] == 3
        assert len(snap["timeseries"]["occupancy"]["samples"]) == 2

    def test_prometheus_rendering(self):
        text = self._registry().render_prometheus()
        assert '# TYPE repro_nacks_total counter' in text
        assert 'repro_nacks_total{tile="1"} 3' in text
        assert "repro_cycles 1234" in text
        # Histogram buckets are cumulative and capped by +Inf.
        assert 'repro_latency_bucket{le="512.0"} 3' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_count 3" in text
        # Time series export their final window's value.
        assert "repro_occupancy 9" in text

    def test_value_convenience(self):
        reg = self._registry()
        assert reg.value("nacks", labels={"tile": 1}) == 3
        assert reg.value("nacks", labels={"tile": 9}) is None
        assert reg.value("missing") is None


class TestPrometheusEscaping:
    """Exposition-format escaping (satellite of the observability PR):
    label values containing backslashes, quotes, or newlines must not
    tear the rendered line; JSON snapshot keys stay raw."""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        raw = 'a\\b"c\nd'
        reg.counter("weird.metric", labels={"path": raw}).inc(3)
        text = reg.render_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text
        # No rendered line may contain a raw newline mid-record: every
        # line is a comment or a sample.
        for line in text.splitlines():
            if line:
                assert line.startswith("#") or line.startswith("repro_")

    def test_snapshot_keys_stay_raw(self):
        reg = MetricsRegistry()
        raw = 'x"y'
        reg.counter("weird.metric", labels={"path": raw}).inc()
        keys = list(reg.snapshot()["counters"])
        assert keys == [f'weird.metric{{path="{raw}"}}']

    def test_help_and_meta_escaped(self):
        reg = MetricsRegistry()
        reg.counter("h.m", help="line1\nline2\\tail").inc()
        text = reg.render_prometheus(meta={"note": "a\nb"})
        # HELP carries the same (suffixed) name the samples use.
        assert "# HELP repro_h_m_total line1\\nline2\\\\tail" in text
        assert "# META note a\\nb" in text

    def test_histogram_le_labels_escaped_alongside_user_labels(self):
        reg = MetricsRegistry()
        reg.histogram("lat", labels={"who": 'q"q'}).observe(3)
        text = reg.render_prometheus()
        assert 'repro_lat_bucket{le="4.0",who="q\\"q"} 1' in text
        assert 'repro_lat_count{who="q\\"q"} 1' in text


class TestPrometheusNaming:
    """Exposition-format naming rules: counters end in ``_total`` on
    every line (HELP/TYPE/samples alike, never doubled), and invalid
    characters in metric *and label* names are rewritten -- JSON
    snapshot keys stay raw."""

    def test_counter_help_type_and_samples_share_the_suffixed_name(self):
        reg = MetricsRegistry()
        reg.counter("invoke.retries", help="resend count").inc(2)
        text = reg.render_prometheus()
        assert "# HELP repro_invoke_retries_total resend count" in text
        assert "# TYPE repro_invoke_retries_total counter" in text
        assert "repro_invoke_retries_total 2" in text
        # The unsuffixed name never appears as a sample.
        assert "\nrepro_invoke_retries " not in text

    def test_counter_named_total_is_not_double_suffixed(self):
        reg = MetricsRegistry()
        reg.counter("flits.total").inc(5)
        text = reg.render_prometheus()
        assert "repro_flits_total 5" in text
        assert "repro_flits_total_total" not in text

    def test_label_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"bad-name": "v", "9lead": "w"}).inc()
        text = reg.render_prometheus()
        assert 'bad_name="v"' in text
        assert '_9lead="w"' in text
        # Snapshot keys keep the raw label names.
        keys = list(reg.snapshot()["counters"])
        assert keys == ['m{9lead="w",bad-name="v"}']

"""Property-based invariants of the memory hierarchy.

Random multi-tile access sequences must preserve:

- **inclusion**: every line in a private L1/L2 (except tile-private
  phantom lines) is present in the LLC;
- **directory consistency**: the directory's sharer set covers every
  tile that holds the line privately, and a modified owner is unique;
- **value conservation** (with morphs): every update applied to a
  phantom object is eventually visible after a flush -- none are lost
  to eviction/construction races.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.morph import Morph
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import AtomicRMW, Compute, Load, Store
from repro.sim.system import Machine


def check_inclusion(machine):
    hierarchy = machine.hierarchy
    for tile in range(machine.config.n_tiles):
        for cache in (hierarchy.l1[tile], hierarchy.l2[tile], hierarchy.engine_l1[tile]):
            for line in cache.resident_lines():
                entry = cache.lookup(line, touch=False)
                if entry.morph:
                    continue  # tile-private phantom (L2-level morph) lines
                if hierarchy.hooks.morph_level(line) == "l2":
                    continue
                assert hierarchy.llc_has(line), (
                    f"inclusion violated: line {line:#x} in {cache.name} "
                    "but not in the LLC"
                )


def check_directory(machine):
    hierarchy = machine.hierarchy
    n_tiles = machine.config.n_tiles
    lines = set()
    for tile in range(n_tiles):
        for cache in (hierarchy.l1[tile], hierarchy.l2[tile], hierarchy.engine_l1[tile]):
            lines.update(cache.resident_lines())
    for line in lines:
        if hierarchy.hooks.morph_level(line) == "l2":
            continue
        holders = {
            t
            for t in range(n_tiles)
            if hierarchy.tile_has_private(t, line)
        }
        sharers = hierarchy.dir.sharers_of(line)
        assert holders <= sharers, (
            f"directory under-tracks line {line:#x}: holders {holders}, "
            f"sharers {sharers}"
        )


ACCESS_SEQ = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # tile
        st.integers(min_value=0, max_value=255),  # object index
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=30, deadline=None)
@given(ops=ACCESS_SEQ)
def test_property_inclusion_and_directory(ops):
    machine = Machine(small_config())
    base = 0x8_0000

    def thread(tile, accesses):
        for index, is_write in accesses:
            addr = base + index * 8
            if is_write:
                yield Store(addr, 8)
            else:
                yield Load(addr, 8)
            yield Compute(1)

    per_tile = {t: [] for t in range(4)}
    for tile, index, is_write in ops:
        per_tile[tile].append((index, is_write))
    for tile, accesses in per_tile.items():
        if accesses:
            machine.spawn(thread(tile, accesses), tile=tile)
    machine.run()
    check_inclusion(machine)
    check_directory(machine)


class _SumMorph(Morph):
    """Phantom accumulators whose destructor banks values losslessly."""

    def __init__(self, runtime, n):
        super().__init__(runtime, "llc", n, 8, name="sum-morph")
        self.banked = np.zeros(n)

    def construct(self, view, index):
        self.machine.mem[self.get_actor_addr(index)] = 0.0
        yield Compute(1)

    def destruct(self, view, index, dirty):
        value = self.machine.mem.get(self.get_actor_addr(index), 0.0)
        if value:
            self.banked[index] += value
            self.machine.mem[self.get_actor_addr(index)] = 0.0
            yield Compute(1)


@settings(max_examples=25, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # tile
            st.integers(min_value=0, max_value=63),  # object
        ),
        min_size=1,
        max_size=150,
    ),
    fenced=st.booleans(),
)
def test_property_no_update_lost_through_morph(updates, fenced):
    """The PHI correctness property: every atomic update to phantom data
    survives arbitrary eviction/construction interleavings."""
    machine = Machine(small_config())
    runtime = Leviathan(machine)
    morph = _SumMorph(runtime, 64)

    def thread(tile, targets):
        mem = machine.mem
        for index in targets:
            addr = morph.get_actor_addr(index)
            yield AtomicRMW(
                addr,
                8,
                fenced=fenced,
                apply=lambda a=addr: mem.__setitem__(a, mem.get(a, 0.0) + 1.0),
            )

    per_tile = {t: [] for t in range(4)}
    expected = np.zeros(64)
    for tile, index in updates:
        per_tile[tile].append(index)
        expected[index] += 1.0
    for tile, targets in per_tile.items():
        if targets:
            machine.spawn(thread(tile, targets), tile=tile)
    machine.run()
    morph.unregister()
    assert np.allclose(morph.banked, expected), "updates lost or duplicated"


@settings(max_examples=20, deadline=None)
@given(ops=ACCESS_SEQ)
def test_property_latency_and_energy_nonnegative_and_deterministic(ops):
    def run():
        machine = Machine(small_config())
        base = 0x8_0000

        def thread(tile, accesses):
            for index, is_write in accesses:
                addr = base + index * 8
                yield Store(addr, 8) if is_write else Load(addr, 8)

        per_tile = {t: [] for t in range(4)}
        for tile, index, is_write in ops:
            per_tile[tile].append((index, is_write))
        for tile, accesses in per_tile.items():
            if accesses:
                machine.spawn(thread(tile, accesses), tile=tile)
        final = machine.run()
        return final, machine.energy_pj()

    t1, e1 = run()
    t2, e2 = run()
    assert t1 >= 0 and e1 >= 0
    assert (t1, e1) == (t2, e2)

"""Executor backends: inline/process contract, worker death, chaos hook."""

import os
import signal

import pytest

from repro.experiments.backends import (
    BACKENDS,
    CHAOS_ENV,
    ExecutorBackend,
    LocalInlineBackend,
    LocalProcessBackend,
    WorkerDeath,
    chaos_decision,
    make_backend,
    parse_chaos_spec,
)
from repro.experiments.retry import RetryPolicy


def _job(fn="tests.obs_helpers:slow_point", attempt=1, **kwargs):
    kwargs.setdefault("tag", "t")
    return {
        "fn": fn,
        "kwargs": kwargs,
        "hash": "deadbeef" * 3,
        "label": "backend/test",
        "attempt": attempt,
    }


class TestWorkerDeath:
    def test_signal_exitcode_named(self):
        assert "SIGKILL" in WorkerDeath(exitcode=-signal.SIGKILL).describe()

    def test_plain_exitcode(self):
        assert "status 3" in WorkerDeath(exitcode=3).describe()

    def test_unknown(self):
        assert "died" in WorkerDeath().describe()


class TestMakeBackend:
    def test_auto_single_worker_is_inline(self):
        assert isinstance(make_backend(None, 1), LocalInlineBackend)
        assert isinstance(make_backend("auto", 1), LocalInlineBackend)

    def test_auto_multi_worker_is_process(self):
        assert isinstance(make_backend(None, 4), LocalProcessBackend)

    def test_named(self):
        for name, cls in BACKENDS.items():
            assert isinstance(make_backend(name, 4), cls)

    def test_instance_passthrough(self):
        backend = LocalInlineBackend()
        assert make_backend(backend, 8) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_backend("ssh-farm", 4)

    def test_abstract_contract(self):
        backend = ExecutorBackend()
        assert backend.supports_kill is False
        for method in ("capacity", "submit", "poll", "kill"):
            with pytest.raises((NotImplementedError, TypeError)):
                getattr(backend, method)(*([None] if method != "capacity" else []))


class TestLocalInlineBackend:
    def test_executes_synchronously_and_polls_once(self):
        backend = LocalInlineBackend().start(1)
        assert backend.capacity() == 1
        handle = backend.submit(_job(seconds=0.0))
        assert backend.capacity() == 0  # result pending drain
        [(polled, outcome)] = backend.poll()
        assert polled == handle
        assert outcome["status"] == "ok"
        assert outcome["result"]["value"] == {"tag": "t"}
        assert backend.capacity() == 1
        assert backend.poll() == []

    def test_kill_is_a_noop(self):
        backend = LocalInlineBackend()
        handle = backend.submit(_job(seconds=0.0))
        backend.kill(handle)
        [(_h, outcome)] = backend.poll()
        assert outcome["status"] == "ok"


class TestLocalProcessBackend:
    def test_round_trip_outcome(self):
        with LocalProcessBackend().start(2) as backend:
            assert backend.supports_kill
            assert backend.capacity() == 2
            handle = backend.submit(_job(seconds=0.0))
            assert backend.capacity() == 1
            results = []
            while not results:
                results = backend.poll(timeout=0.2)
            [(polled, outcome)] = results
            assert polled == handle
            assert outcome["status"] == "ok"
            assert outcome["result"]["value"] == {"tag": "t"}

    def test_self_killed_worker_surfaces_as_worker_death(self, tmp_path):
        sentinel = str(tmp_path / "flaky.sentinel")
        with LocalProcessBackend().start(1) as backend:
            backend.submit(_job(fn="tests.obs_helpers:flaky_point", sentinel=sentinel))
            results = []
            while not results:
                results = backend.poll(timeout=0.2)
            [(_h, payload)] = results
        assert isinstance(payload, WorkerDeath)
        assert payload.exitcode == -signal.SIGKILL
        assert "SIGKILL" in payload.describe()
        assert os.path.exists(sentinel)  # the attempt did start executing

    def test_kill_terminates_one_running_job(self):
        with LocalProcessBackend().start(2) as backend:
            victim = backend.submit(_job(seconds=60.0))
            survivor = backend.submit(_job(seconds=0.0, tag="ok"))
            backend.kill(victim, reason="timeout")
            payloads = {}
            while len(payloads) < 2:
                for handle, payload in backend.poll(timeout=0.2):
                    payloads[handle] = payload
        assert isinstance(payloads[victim], WorkerDeath)
        assert payloads[survivor]["status"] == "ok"  # the kill was surgical

    def test_shutdown_reaps_in_flight_workers(self):
        backend = LocalProcessBackend().start(1)
        backend.submit(_job(seconds=60.0))
        backend.shutdown()
        assert backend.capacity() == 1
        assert backend.poll() == []


class TestChaosHook:
    def test_parse_spec(self):
        assert parse_chaos_spec("p=0.4;seed=7") == (0.4, 7)
        assert parse_chaos_spec("p=1") == (1.0, 0)
        assert parse_chaos_spec("") == (0.0, 0)

    def test_parse_spec_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="unknown chaos field"):
            parse_chaos_spec("p=0.5;rate=2")
        with pytest.raises(ValueError, match="probability"):
            parse_chaos_spec("p=1.5")

    def test_decision_is_deterministic(self):
        first = [chaos_decision(0.5, 7, f"hash{i}", 1) for i in range(64)]
        again = [chaos_decision(0.5, 7, f"hash{i}", 1) for i in range(64)]
        assert first == again
        assert any(first) and not all(first)  # p=0.5 actually splits

    def test_decision_extremes(self):
        assert not chaos_decision(0.0, 7, "h", 1)
        assert all(chaos_decision(1.0, s, "h", a) for s in range(3) for a in range(3))

    def test_retries_roll_fresh_dice(self):
        decisions = {chaos_decision(0.5, 11, "somehash", a) for a in range(1, 20)}
        assert decisions == {True, False}

    def test_chaos_env_kills_process_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "p=1;seed=3")
        with LocalProcessBackend().start(1) as backend:
            backend.submit(_job(seconds=0.0))
            results = []
            while not results:
                results = backend.poll(timeout=0.2)
            [(_h, payload)] = results
        assert isinstance(payload, WorkerDeath)
        assert payload.exitcode == -signal.SIGKILL


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.allows(1)
        assert not policy.allows(policy.max_attempts)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(base_delay=-0.1),
            dict(factor=0.5),
            dict(jitter=-0.1),
            dict(jitter=1.0),
            dict(jitter_seed=1.5),
            dict(base_delay=5.0, max_delay=1.0),
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(base_delay=1.0, factor=2.0, jitter=0.0)
        assert [policy.delay(a) for a in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay=1.0, factor=10.0, jitter=0.0, max_delay=5.0)
        assert policy.delay(4) == 5.0

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, factor=2.0, jitter=0.25, jitter_seed=9)
        delays = [policy.delay(2, key="abc") for _ in range(3)]
        assert len(set(delays)) == 1  # same seed+key+attempt -> same delay
        assert 2.0 * 0.75 <= delays[0] <= 2.0 * 1.25
        other = RetryPolicy(base_delay=1.0, factor=2.0, jitter=0.25, jitter_seed=10)
        assert other.delay(2, key="abc") != delays[0]

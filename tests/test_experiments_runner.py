"""Unit tests for the experiment harness plumbing."""

import pytest

from repro.experiments.runner import Expectation, Experiment, ExperimentRegistry


class TestExpectation:
    def test_greater(self):
        assert Expectation("x", "greater", 2.0, (1.0,)).passed
        assert not Expectation("x", "greater", 0.5, (1.0,)).passed

    def test_less(self):
        assert Expectation("x", "less", 0.5, (1.0,)).passed
        assert not Expectation("x", "less", 2.0, (1.0,)).passed

    def test_between(self):
        assert Expectation("x", "between", 5, (1, 10)).passed
        assert Expectation("x", "between", 1, (1, 10)).passed
        assert not Expectation("x", "between", 11, (1, 10)).passed

    def test_ordering(self):
        assert Expectation("x", "ordering", [1, 2, 3], ()).passed
        assert not Expectation("x", "ordering", [2, 1, 3], ()).passed

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Expectation("x", "weird", 1, (1,)).passed

    def test_str_shows_status(self):
        assert "[PASS]" in str(Expectation("x", "greater", 2.0, (1.0,)))
        assert "[FAIL]" in str(Expectation("x", "greater", 0.0, (1.0,)))


class TestExperiment:
    def make(self):
        exp = Experiment(name="demo", paper_reference="Fig. 0")
        exp.add_row(variant="a", speedup=1.0)
        exp.add_row(variant="b", speedup=2.5)
        return exp

    def test_rows(self):
        exp = self.make()
        assert len(exp.rows) == 2

    def test_table_renders_all_columns(self):
        table = self.make().table()
        assert "variant" in table and "speedup" in table
        assert "2.5" in table

    def test_table_handles_missing_fields(self):
        exp = self.make()
        exp.add_row(variant="c", extra="x")
        assert "extra" in exp.table()

    def test_empty_table(self):
        assert Experiment(name="e", paper_reference="-").table() == "(no rows)"

    def test_check_passes(self):
        exp = self.make()
        exp.expect("b beats a", "greater", 2.5, 1.0)
        assert exp.check()
        assert exp.passed

    def test_check_raises_with_details(self):
        exp = self.make()
        exp.expect("impossible", "greater", 0.0, 1.0)
        with pytest.raises(AssertionError, match="impossible"):
            exp.check()
        assert not exp.passed

    def test_report_contains_everything(self):
        exp = self.make()
        exp.notes = "a note"
        exp.expect("ok", "greater", 2.0, 1.0)
        report = exp.report()
        assert "demo" in report and "a note" in report and "[PASS]" in report


class TestRegistry:
    def test_register_and_run(self):
        registry = ExperimentRegistry()
        registry.register("demo", lambda: "ran", "a demo")
        assert registry.run("demo") == "ran"
        assert registry.names() == ["demo"]
        assert registry.describe() == {"demo": "a demo"}

    def test_unknown_name(self):
        registry = ExperimentRegistry()
        with pytest.raises(KeyError):
            registry.run("nope")

    def test_cli_registry_contains_all_figures(self):
        from repro.experiments import registry
        import repro.experiments.cli  # noqa: F401  (registers on import)

        names = registry.names()
        for expected in (
            "table1",
            "table4",
            "table5",
            "fig5",
            "fig16",
            "fig18",
            "fig20",
            "fig21",
            "fig22",
            "fig23",
            "fig24",
            "fig25",
        ):
            assert expected in names

"""Unit tests for repro.sim.config."""

import dataclasses

import pytest

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    EngineConfig,
    MemoryConfig,
    NocConfig,
    SystemConfig,
    small_config,
    _mesh_width,
)


class TestCacheConfig:
    def test_lines(self):
        cfg = CacheConfig(size_kb=32, ways=8, tag_latency=1, data_latency=2)
        assert cfg.lines(64) == 512

    def test_sets(self):
        cfg = CacheConfig(size_kb=32, ways=8, tag_latency=1, data_latency=2)
        assert cfg.sets(64) == 64

    def test_hit_latency(self):
        cfg = CacheConfig(size_kb=32, ways=8, tag_latency=3, data_latency=5)
        assert cfg.hit_latency == 8


class TestNocConfig:
    def test_flit_bytes(self):
        assert NocConfig().flit_bytes == 16

    def test_flits_small_payload(self):
        # 8 B payload = head flit + 1 payload flit.
        assert NocConfig().flits(8) == 2

    def test_flits_cache_line(self):
        # 64 B payload = head + 4 payload flits.
        assert NocConfig().flits(64) == 5

    def test_hop_latency_zero_hops_is_cheap(self):
        noc = NocConfig()
        assert noc.hop_latency(0) == 1

    def test_hop_latency_grows_with_distance(self):
        noc = NocConfig()
        assert noc.hop_latency(2) > noc.hop_latency(1) > noc.hop_latency(0)

    def test_message_latency_serialization(self):
        noc = NocConfig()
        # Data messages pay tail-flit serialization; control packets less.
        assert noc.message_latency(2, 64) > noc.message_latency(2, 8)

    def test_local_message_no_serialization(self):
        noc = NocConfig()
        assert noc.message_latency(0, 64) == noc.hop_latency(0)


class TestMemoryConfig:
    def test_service_cycles(self):
        mem = MemoryConfig()
        assert mem.service_cycles(64) == pytest.approx(64 / 4.9)

    def test_service_scales_with_bytes(self):
        mem = MemoryConfig()
        assert mem.service_cycles(128) == pytest.approx(2 * mem.service_cycles(64))


class TestEngineConfig:
    def test_context_split_prevents_deadlock(self):
        # Contexts split evenly between offload and data-triggered.
        cfg = EngineConfig(task_contexts=32)
        assert cfg.offload_contexts == 16
        assert cfg.triggered_contexts == 16

    def test_odd_context_split(self):
        cfg = EngineConfig(task_contexts=7)
        assert cfg.offload_contexts + cfg.triggered_contexts == 7


class TestSystemConfig:
    def test_defaults_match_table5(self):
        cfg = SystemConfig()
        assert cfg.n_tiles == 16
        assert cfg.l1.size_kb == 32
        assert cfg.l2.size_kb == 128
        assert cfg.llc.size_kb == 512
        assert cfg.llc_total_kb == 8192
        assert cfg.memory.controllers == 4
        assert cfg.memory.latency == 100

    def test_mesh_width_square(self):
        assert SystemConfig(n_tiles=16).mesh_width == 4
        assert SystemConfig(n_tiles=64).mesh_width == 8

    def test_mesh_width_rectangular(self):
        assert _mesh_width(8) == 4
        assert _mesh_width(2) == 2

    def test_rejects_non_power_of_two_tiles(self):
        with pytest.raises(ValueError):
            SystemConfig(n_tiles=12)

    def test_rejects_more_controllers_than_tiles(self):
        with pytest.raises(ValueError):
            SystemConfig(n_tiles=4, memory=MemoryConfig(controllers=8))

    def test_scaled_top_level_override(self):
        cfg = SystemConfig().scaled(n_tiles=4)
        assert cfg.n_tiles == 4

    def test_scaled_nested_override(self):
        cfg = SystemConfig().scaled(**{"core.invoke_buffer_entries": 8})
        assert cfg.core.invoke_buffer_entries == 8

    def test_scaled_does_not_mutate_original(self):
        original = SystemConfig()
        original.scaled(**{"core.invoke_buffer_entries": 99})
        assert original.core.invoke_buffer_entries != 99

    def test_scaled_unknown_field_raises(self):
        with pytest.raises(AttributeError):
            SystemConfig().scaled(bogus=1)
        with pytest.raises(AttributeError):
            SystemConfig().scaled(**{"core.bogus": 1})

    def test_small_config_is_valid(self):
        cfg = small_config()
        assert cfg.n_tiles == 4
        assert cfg.l1.size_kb < SystemConfig().l1.size_kb

    def test_small_config_overrides(self):
        cfg = small_config(**{"memory.fifo_lines": 4})
        assert cfg.memory.fifo_lines == 4

    def test_core_defaults(self):
        core = CoreConfig()
        assert core.ipc > 1
        assert core.fence_penalty > 0


class TestCoreConfigValidation:
    def test_defaults_are_valid(self):
        CoreConfig().validate()  # must not raise

    def test_buffer_entries_must_be_positive(self):
        with pytest.raises(ValueError, match="invoke_buffer_entries"):
            CoreConfig(invoke_buffer_entries=0)

    def test_retry_delay_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="invoke_retry_delay"):
            CoreConfig(invoke_retry_delay=-1)

    def test_max_retries_none_or_positive(self):
        CoreConfig(invoke_max_retries=None)
        CoreConfig(invoke_max_retries=1)
        with pytest.raises(ValueError, match="invoke_max_retries"):
            CoreConfig(invoke_max_retries=0)

    def test_retry_backoff_may_never_shrink(self):
        with pytest.raises(ValueError, match="invoke_retry_backoff"):
            CoreConfig(invoke_retry_backoff=0.5)

    def test_system_config_revalidates_core(self):
        # dataclasses.replace skips __post_init__ validation on the
        # nested core, so SystemConfig must re-run it.
        bad = dataclasses.replace(
            SystemConfig(),
            core=dataclasses.replace(CoreConfig(), invoke_retry_backoff=2.0),
        )
        assert bad.core.invoke_retry_backoff == 2.0
        with pytest.raises(ValueError, match="invoke_retry_backoff"):
            SystemConfig().scaled(**{"core.invoke_retry_backoff": 0.25})

    def test_scaled_valid_retry_overrides_pass(self):
        cfg = SystemConfig().scaled(
            **{"core.invoke_max_retries": 3, "core.invoke_retry_backoff": 1.5}
        )
        assert cfg.core.invoke_max_retries == 3
        assert cfg.core.invoke_retry_backoff == 1.5

"""Host-side supervision: retries, deadlines, hangs, cache integrity,
fsynced manifests, and SIGINT interrupt-and-resume.

These tests drive real worker processes (the ``local-process``
backend) through induced failures -- self-SIGKILLed workers, blown
deadlines, suspended heartbeats -- and assert the supervisor requeues
transient failures, journals attempt counts, and keeps results
bit-identical to an unperturbed sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import retry as retry_taxonomy
from repro.experiments.backends import LocalProcessBackend
from repro.experiments.pool import (
    ExperimentPool,
    IncompleteSweepError,
    RunSpec,
    SweepInterrupted,
    cache_entry_problem,
    compute_result_checksum,
    spec_hash,
)
from repro.experiments.retry import RetryPolicy, classify_exception, is_transient

_SLOW = "tests.obs_helpers:slow_point"
_FLAKY = "tests.obs_helpers:flaky_point"
_SLOW_ONCE = "tests.obs_helpers:slow_once_point"
_HANG = "tests.obs_helpers:hang_point"
_COMPACTION = "repro.experiments.ablations:compaction_point"
_MC_CACHE = "repro.experiments.ablations:mc_cache_point"

#: A fast retry policy so induced-failure tests finish in milliseconds.
_FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


def _read_manifest(cache_dir):
    entries = []
    with open(os.path.join(cache_dir, "manifest.jsonl")) as handle:
        for line in handle:
            if line.strip():
                entries.append(json.loads(line))
    return entries


def _supervised_pool(cache_dir, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("backend", "local-process")
    kwargs.setdefault("retry", _FAST_RETRY)
    kwargs.setdefault("progress", False)
    return ExperimentPool(cache_dir=str(cache_dir), **kwargs)


class TestFailureTaxonomy:
    def test_transient_kinds(self):
        for kind in (
            retry_taxonomy.WORKER_DIED,
            retry_taxonomy.TIMEOUT,
            retry_taxonomy.HUNG,
            retry_taxonomy.DISPATCH_ERROR,
        ):
            assert is_transient(kind)
        assert not is_transient("permanent")

    def test_classify_exception(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_exception(BrokenProcessPool()) == retry_taxonomy.WORKER_DIED
        assert classify_exception(TimeoutError()) == retry_taxonomy.TIMEOUT
        assert classify_exception(OSError()) == retry_taxonomy.DISPATCH_ERROR
        assert classify_exception(ValueError("workload bug")) == "permanent"


class TestRetryOnWorkerDeath:
    def test_killed_worker_is_requeued_and_succeeds(self, tmp_path):
        cache = tmp_path / "cache"
        sentinel = str(tmp_path / "flaky.sentinel")
        pool = _supervised_pool(cache)
        spec = RunSpec(_FLAKY, {"sentinel": sentinel}, "sup/flaky")
        [result] = pool.run_results([spec])
        assert result == {"tag": "flaky"}
        assert pool.supervision["worker_deaths"] == 1
        assert pool.supervision["retries"] == 1
        [entry] = _read_manifest(str(cache))
        assert entry["status"] == "ok"
        assert entry["attempts"] == 2  # the requeue is journaled

    def test_exhausted_retries_become_terminal_error(self, tmp_path, monkeypatch):
        from repro.experiments.backends import CHAOS_ENV

        monkeypatch.setenv(CHAOS_ENV, "p=1;seed=5")  # every attempt dies
        cache = tmp_path / "cache"
        pool = _supervised_pool(
            cache, retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)
        )
        spec = RunSpec(_SLOW, {"tag": "doomed", "seconds": 0.0}, "sup/doomed")
        with pytest.raises(IncompleteSweepError):
            pool.run_results([spec])
        [failure] = pool.failures
        assert failure["error"]["type"] == "WorkerDied"
        assert failure["attempts"] == 2
        assert failure["transient"] == retry_taxonomy.WORKER_DIED
        assert "attempt 2/2" in failure["error"]["message"]
        [entry] = _read_manifest(str(cache))
        assert entry["status"] == "error"
        assert entry["attempts"] == 2

    def test_sweep_is_bit_identical_through_requeue(self, tmp_path, monkeypatch):
        """The chaos contract: kills + retries never change the numbers."""
        from repro.experiments.backends import CHAOS_ENV

        specs = [
            RunSpec(_COMPACTION, {"compaction": on}, f"sup/chaos-{on}")
            for on in (True, False)
        ] + [
            RunSpec(_MC_CACHE, {"fifo_lines": lines}, f"sup/chaos-mc{lines}")
            for lines in (0, 4)
        ]
        serial = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "serial"))
        baseline = serial.run(specs)
        # seed=1/p=0.6 deterministically kills 3 of the 4 first attempts
        # and lets every spec survive by its third (chaos_decision is a
        # pure function of seed+hash+attempt, so this never flakes).
        monkeypatch.setenv(CHAOS_ENV, "p=0.6;seed=1")
        chaotic = _supervised_pool(
            tmp_path / "chaos",
            jobs=2,
            retry=RetryPolicy(max_attempts=6, base_delay=0.01, jitter=0.0),
        )
        survived = chaotic.run(specs)
        for clean, messy in zip(baseline, survived):
            assert clean["result"] == messy["result"]
        total_attempts = sum(
            e["attempts"] for e in _read_manifest(str(tmp_path / "chaos"))
        )
        assert total_attempts > len(specs)  # chaos actually killed someone


class _FlakySubmitBackend(LocalProcessBackend):
    """``submit`` raises OSError ``failures`` times, then delegates.

    Models a host-side fork/pipe failure (EAGAIN under fd or pid
    pressure): the job never reaches a worker, so the supervisor must
    requeue it from the dispatch path itself.
    """

    def __init__(self, failures=1):
        super().__init__()
        self.failures = failures

    def submit(self, job):
        if self.failures > 0:
            self.failures -= 1
            raise OSError("fork failed (EAGAIN)")
        return super().submit(job)


class TestDispatchErrors:
    def test_dispatch_oserror_is_retried_end_to_end(self, tmp_path):
        cache = tmp_path / "cache"
        pool = _supervised_pool(cache, backend=_FlakySubmitBackend(failures=1))
        spec = RunSpec(_SLOW, {"tag": "dispatch", "seconds": 0.0}, "sup/dispatch")
        [result] = pool.run_results([spec])
        assert result == {"tag": "dispatch"}
        assert pool.supervision["retries"] == 1
        [entry] = _read_manifest(str(cache))
        assert entry["status"] == "ok"
        assert entry["attempts"] == 2  # the requeued dispatch is journaled

    def test_exhausted_dispatch_errors_become_terminal(self, tmp_path):
        cache = tmp_path / "cache"
        pool = _supervised_pool(
            cache,
            backend=_FlakySubmitBackend(failures=99),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
        )
        spec = RunSpec(_SLOW, {"tag": "undispatchable", "seconds": 0.0}, "sup/nodispatch")
        with pytest.raises(IncompleteSweepError):
            pool.run_results([spec])
        [failure] = pool.failures
        assert failure["transient"] == retry_taxonomy.DISPATCH_ERROR
        assert failure["attempts"] == 2
        assert "fork failed" in failure["error"]["message"]
        [entry] = _read_manifest(str(cache))
        assert entry["status"] == "error"


class TestBackendSelection:
    def test_single_pending_run_with_deadline_gets_process_backend(self, tmp_path):
        pool = ExperimentPool(
            jobs=4, cache_dir=str(tmp_path / "c"), run_timeout=30.0, progress=False
        )
        job = pool._job(RunSpec(_SLOW, {"tag": "x", "seconds": 0.0}, "sel/x"), "0" * 64)
        assert pool._backend_for([job]).name == "local-process"

    def test_single_pending_run_without_supervision_stays_inline(self, tmp_path):
        pool = ExperimentPool(jobs=4, cache_dir=None, progress=False)
        job = pool._job(RunSpec(_SLOW, {"tag": "x", "seconds": 0.0}, "sel/y"), "0" * 64)
        assert pool._backend_for([job]).name == "local-inline"

    def test_backoff_poll_timeout_is_capped(self, tmp_path):
        pool = _supervised_pool(tmp_path / "cache")
        now = 100.0
        far = [(now + 30.0, {"job": {}, "attempt": 2})]
        assert pool._poll_timeout(now, far, {}) == pool.BACKOFF_POLL_S
        near = [(now + 0.05, {"job": {}, "attempt": 2})]
        assert pool._poll_timeout(now, near, {}) == pytest.approx(0.05)


class TestDeadlines:
    def test_timeout_is_retried_then_succeeds(self, tmp_path):
        cache = tmp_path / "cache"
        sentinel = str(tmp_path / "slow.sentinel")
        pool = _supervised_pool(cache, run_timeout=0.5)
        spec = RunSpec(_SLOW_ONCE, {"sentinel": sentinel, "seconds": 30.0}, "sup/slow1")
        [result] = pool.run_results([spec])
        assert result == {"tag": "slow-once"}
        assert pool.supervision["timeouts"] == 1
        assert pool.supervision["retries"] == 1
        [entry] = _read_manifest(str(cache))
        assert entry["attempts"] == 2

    def test_spec_deadline_overrides_pool_default(self, tmp_path):
        pool = _supervised_pool(
            tmp_path / "cache",
            run_timeout=60.0,
            retry=RetryPolicy(max_attempts=1),
        )
        spec = RunSpec(
            _SLOW, {"tag": "late", "seconds": 30.0}, "sup/late", deadline_s=0.3
        )
        started = time.monotonic()
        with pytest.raises(IncompleteSweepError):
            pool.run_results([spec])
        assert time.monotonic() - started < 10.0  # killed, not slept out
        [failure] = pool.failures
        assert failure["error"]["type"] == "RunTimeout"
        assert "deadline" in failure["error"]["message"]

    def test_deadline_excluded_from_content_hash(self):
        spec = RunSpec(_SLOW, {"tag": "x"}, "l")
        assert spec_hash(spec) == spec_hash(
            RunSpec(_SLOW, {"tag": "x"}, "l", deadline_s=5.0)
        )

    def test_bad_run_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="run_timeout"):
            ExperimentPool(cache_dir=str(tmp_path), run_timeout=0)
        with pytest.raises(ValueError, match="hang_intervals"):
            ExperimentPool(cache_dir=str(tmp_path), hang_intervals=-1)
        with pytest.raises(ValueError, match="RetryPolicy"):
            ExperimentPool(cache_dir=str(tmp_path), retry=3)


class TestHangDetection:
    def test_stale_heartbeat_kills_and_requeues(self, tmp_path):
        cache = tmp_path / "cache"
        sentinel = str(tmp_path / "hang.sentinel")
        pool = _supervised_pool(
            cache, heartbeat_interval=0.1, hang_intervals=3.0
        )
        spec = RunSpec(_HANG, {"sentinel": sentinel, "seconds": 60.0}, "sup/hang")
        started = time.monotonic()
        [result] = pool.run_results([spec])
        assert time.monotonic() - started < 30.0  # killed, not slept out
        assert result == {"tag": "hang"}
        assert pool.supervision["hangs"] == 1
        assert pool.supervision["retries"] == 1
        [entry] = _read_manifest(str(cache))
        assert entry["status"] == "ok" and entry["attempts"] == 2

    def test_hang_kill_leaves_postmortem_stub(self, tmp_path):
        cache = tmp_path / "cache"
        sentinel = str(tmp_path / "hang.sentinel")
        pool = _supervised_pool(cache, heartbeat_interval=0.1, hang_intervals=3.0)
        spec = RunSpec(_HANG, {"sentinel": sentinel, "seconds": 60.0}, "sup/hangpm")
        pool.run_results([spec])
        roots = []
        for dirpath, _dirs, files in os.walk(str(cache / "postmortems")):
            roots.extend(os.path.join(dirpath, f) for f in files)
        assert roots, "hang kill must leave a postmortem stub"
        with open(roots[0]) as handle:
            stub = json.load(handle)
        assert stub["kind"] == "leviathan-postmortem"
        assert stub["reason"] == "hung"
        assert stub["heartbeat"]["phase"] == "simulating"
        assert "SIGKILL" in stub["note"]


class TestCacheIntegrity:
    def _seed_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec = RunSpec(_SLOW, {"tag": "c", "seconds": 0.0}, "sup/cache")
        ExperimentPool(jobs=1, cache_dir=cache).run([spec])
        return cache, spec, spec_hash(spec)

    def test_checksum_round_trip(self, tmp_path):
        cache, spec, digest = self._seed_cache(tmp_path)
        with open(os.path.join(cache, digest + ".json")) as handle:
            payload = json.load(handle)
        assert payload["checksum"] == compute_result_checksum(payload["result"])
        assert cache_entry_problem(payload) is None
        pool = ExperimentPool(jobs=1, cache_dir=cache)
        pool.run([spec])
        assert pool.consume_report().get("cached") == 1

    def test_tampered_entry_quarantined_and_reexecuted(self, tmp_path):
        cache, spec, digest = self._seed_cache(tmp_path)
        path = os.path.join(cache, digest + ".json")
        with open(path) as handle:
            payload = json.load(handle)
        payload["result"]["value"]["tag"] = "bitrot"  # checksum now lies
        with open(path, "w") as handle:
            json.dump(payload, handle)
        pool = ExperimentPool(jobs=1, cache_dir=cache)
        [outcome] = pool.run([spec])
        assert outcome["result"]["value"] == {"tag": "c"}  # fresh, not rot
        report = pool.consume_report()
        assert report.get("executed") == 1 and not report.get("cached")
        assert pool.supervision["quarantined"] == 1
        quarantined = os.path.join(cache, "quarantine", digest + ".json")
        assert os.path.exists(quarantined)
        assert not os.path.exists(path) or os.path.getsize(path) > 0

    def test_truncated_entry_quarantined(self, tmp_path):
        cache, spec, digest = self._seed_cache(tmp_path)
        path = os.path.join(cache, digest + ".json")
        with open(path) as handle:
            torn = handle.read()[: len(handle.read()) // 2 or 40]
        with open(path, "w") as handle:
            handle.write(torn)
        pool = ExperimentPool(jobs=1, cache_dir=cache)
        [outcome] = pool.run([spec])
        assert outcome["status"] == "ok"
        assert pool.supervision["quarantined"] == 1
        assert os.path.exists(os.path.join(cache, "quarantine", digest + ".json"))

    def test_legacy_entry_without_checksum_served(self, tmp_path):
        cache, spec, digest = self._seed_cache(tmp_path)
        path = os.path.join(cache, digest + ".json")
        with open(path) as handle:
            payload = json.load(handle)
        del payload["checksum"]  # an entry from before PR 8
        with open(path, "w") as handle:
            json.dump(payload, handle)
        pool = ExperimentPool(jobs=1, cache_dir=cache)
        pool.run([spec])
        assert pool.consume_report().get("cached") == 1
        assert pool.supervision["quarantined"] == 0

    def test_cache_entry_problem_reports_missing_result(self):
        assert "no result" in cache_entry_problem({"status": "ok"})
        assert "mismatch" in cache_entry_problem(
            {"result": {"kind": "value", "value": 1}, "checksum": "sha256:beef"}
        )


class TestManifestDurability:
    def test_append_flushes_and_fsyncs(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        cache = str(tmp_path / "cache")
        pool = ExperimentPool(jobs=1, cache_dir=cache)
        pool.run([RunSpec(_SLOW, {"tag": "f", "seconds": 0.0}, "sup/fsync")])
        assert synced, "_append_manifest must fsync before returning"

    def test_torn_final_line_is_healed_not_compounded(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec_a = RunSpec(_SLOW, {"tag": "a", "seconds": 0.0}, "sup/torn-a")
        spec_b = RunSpec(_SLOW, {"tag": "b", "seconds": 0.0}, "sup/torn-b")
        ExperimentPool(jobs=1, cache_dir=cache).run([spec_a])
        manifest = os.path.join(cache, "manifest.jsonl")
        with open(manifest, "a") as handle:
            handle.write('{"hash": "feedface", "status": "o')  # kill mid-append
        pool = ExperimentPool(jobs=1, cache_dir=cache, resume=True)
        pool.run([spec_a, spec_b])
        # The torn fragment got newline-terminated (healed), so every
        # *subsequent* append is a clean line of its own.
        parsed, junk = [], 0
        with open(manifest) as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    parsed.append(json.loads(line))
                except ValueError:
                    junk += 1
        assert junk == 1  # only the torn fragment itself is lost
        assert [e["label"] for e in parsed] == [
            "sup/torn-a",
            "sup/torn-a",
            "sup/torn-b",
        ]
        assert parsed[1]["cached"] is True  # resume served it from cache


class TestHeartbeatHygiene:
    def test_ghost_heartbeats_swept_at_start_and_finish(self, tmp_path):
        from repro.experiments.monitor import heartbeat_dir, read_heartbeats

        cache = str(tmp_path / "cache")
        hb_dir = heartbeat_dir(cache)
        os.makedirs(hb_dir)
        spec = RunSpec(_SLOW, {"tag": "g", "seconds": 0.0}, "sup/ghost")
        ghost = {
            "kind": "leviathan-heartbeat",
            "hash": "abcd" * 6,
            "label": "old/run",
            "phase": "done",
            "started": 1.0,
            "updated": 2.0,
            "interval": 1.0,
        }
        with open(os.path.join(hb_dir, ghost["hash"][:12] + ".json"), "w") as handle:
            json.dump(ghost, handle)
        live_foreign = dict(ghost, hash="ffff" * 6, phase="simulating")
        with open(
            os.path.join(hb_dir, live_foreign["hash"][:12] + ".json"), "w"
        ) as handle:
            json.dump(live_foreign, handle)
        pool = ExperimentPool(jobs=1, cache_dir=cache, heartbeat_interval=0.1)
        pool.run([spec])
        remaining = {b["hash"] for b in read_heartbeats(cache)}
        # terminal ghost gone, this sweep's own beat swept on clean
        # finish, a live beat from a concurrent sweep left alone
        assert remaining == {live_foreign["hash"]}


_INTERRUPT_DRIVER = """\
import sys

from repro.experiments.pool import ExperimentPool, RunSpec, SweepInterrupted

cache = sys.argv[1]
fast = [
    RunSpec(
        "repro.experiments.ablations:compaction_point",
        {"compaction": on},
        f"resume/fast-{on}",
    )
    for on in (True, False)
] + [
    RunSpec(
        "repro.experiments.ablations:mc_cache_point",
        {"fifo_lines": lines},
        f"resume/fast-mc{lines}",
    )
    for lines in (0, 4)
]
slow = [
    RunSpec(
        "tests.obs_helpers:slow_point",
        {"tag": f"slow-{i}", "seconds": 120.0},
        f"resume/slow-{i}",
    )
    for i in range(2)
]
pool = ExperimentPool(
    jobs=4, cache_dir=cache, heartbeat_interval=0.2, progress=False
)
try:
    pool.run(fast + slow)
except SweepInterrupted as exc:
    assert "--resume" in str(exc)
    print("interrupted-ok", flush=True)
    sys.exit(130)
sys.exit(0)
"""


class TestInterruptAndResume:
    def test_sigint_drains_and_resume_completes(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        driver = tmp_path / "driver.py"
        driver.write_text(_INTERRUPT_DRIVER)
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        # src for the package, the repo root for tests.obs_helpers
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
        )
        env.pop("LEVIATHAN_POOL_CHAOS", None)
        proc = subprocess.Popen(
            [sys.executable, str(driver), cache],
            cwd=repo_root,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        manifest = os.path.join(cache, "manifest.jsonl")
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                done = 0
                if os.path.exists(manifest):
                    with open(manifest) as handle:
                        done = sum(
                            1
                            for line in handle
                            if line.strip() and json.loads(line).get("status") == "ok"
                        )
                if done >= 4:  # every fast spec journaled; slow in flight
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never journaled its fast specs")
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"
        assert "interrupted-ok" in out
        entries = _read_manifest(cache)  # intact: every line parses
        ok_hashes = {e["hash"] for e in entries if e["status"] == "ok"}
        assert len(ok_hashes) >= 4

        # -- resume: finished runs come from cache, killed runs rerun --
        import repro.experiments.ablations as ablations
        import tests.obs_helpers as obs_helpers

        def _sim_forbidden(**kwargs):
            raise AssertionError("finished run was re-executed on resume")

        monkeypatch.setattr(ablations, "compaction_point", _sim_forbidden)
        monkeypatch.setattr(ablations, "mc_cache_point", _sim_forbidden)
        monkeypatch.setattr(
            obs_helpers, "slow_point", lambda tag, seconds=0.0: {"tag": tag}
        )
        fast = [
            RunSpec(
                "repro.experiments.ablations:compaction_point",
                {"compaction": on},
                f"resume/fast-{on}",
            )
            for on in (True, False)
        ] + [
            RunSpec(
                "repro.experiments.ablations:mc_cache_point",
                {"fifo_lines": lines},
                f"resume/fast-mc{lines}",
            )
            for lines in (0, 4)
        ]
        slow = [
            RunSpec(
                "tests.obs_helpers:slow_point",
                {"tag": f"slow-{i}", "seconds": 120.0},
                f"resume/slow-{i}",
            )
            for i in range(2)
        ]
        pool = ExperimentPool(jobs=1, cache_dir=cache, resume=True, progress=False)
        results = pool.run_results(fast + slow)
        assert len(results) == 6
        assert results[4] == {"tag": "slow-0"} and results[5] == {"tag": "slow-1"}
        report = pool.consume_report()
        assert report.get("cached", 0) >= 4  # full reuse of finished runs
        assert report.get("executed", 0) == 6 - report["cached"]

    def test_sweep_interrupted_message_names_resume(self):
        exc = SweepInterrupted("SIGINT", 3, 7)
        assert "SIGINT" in str(exc)
        assert "3/7" in str(exc)
        assert "--resume" in str(exc)


class TestSupervisionSummary:
    def test_summary_feeds_dashboard(self, tmp_path):
        pool = ExperimentPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=4, base_delay=0.2, jitter=0.0),
            run_timeout=12.5,
        )
        summary = pool.supervision_summary()
        assert summary["retry_policy"]["max_attempts"] == 4
        assert summary["run_timeout"] == 12.5
        assert set(summary) >= {
            "retries",
            "worker_deaths",
            "timeouts",
            "hangs",
            "quarantined",
        }

    def test_dashboard_renders_supervision_line(self, tmp_path):
        telem = tmp_path / "telem"
        pool = ExperimentPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry_dir=str(telem),
        )
        pool.run_results(
            [RunSpec(_COMPACTION, {"compaction": True}, "sup/dash")]
        )
        pool.supervision.update(
            retries=2, worker_deaths=1, timeouts=1, hangs=0, quarantined=3
        )
        summary = pool.write_dashboard()
        assert summary["supervision"]["retries"] == 2
        text = (telem / "dashboard.md").read_text()
        assert "host supervision" in text
        assert "**2** retries" in text
        assert "**3** cache entr" in text
        payload = json.loads((telem / "dashboard.json").read_text())
        assert payload["supervision"]["quarantined"] == 3

"""Unit tests for the Leviathan runtime facade and area model."""

import pytest

from repro.core.area import AreaModel
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine


class TestRuntime:
    def test_installs_engines_and_hooks(self, machine):
        runtime = Leviathan(machine)
        assert len(runtime.engines) == machine.config.n_tiles
        assert machine.engines is runtime.engines
        assert machine.hierarchy.hooks is runtime.hooks
        assert machine.leviathan is runtime

    def test_double_install_rejected(self, machine):
        Leviathan(machine)
        with pytest.raises(RuntimeError):
            Leviathan(machine)

    def test_invoke_buffers_per_tile(self, runtime):
        assert len(runtime.invoke_buffers) == runtime.machine.config.n_tiles
        entries = runtime.machine.config.core.invoke_buffer_entries
        assert all(b.entries == entries for b in runtime.invoke_buffers)

    def test_find_morph_by_level(self, runtime):
        from tests.test_morph import RecordingMorph

        l2_morph = RecordingMorph(runtime, level="l2")
        llc_morph = RecordingMorph(runtime, level="llc")
        l2_line = l2_morph.base // 64
        llc_line = llc_morph.base // 64
        assert runtime.find_morph(l2_line, "l2") is l2_morph
        assert runtime.find_morph(l2_line, "llc") is None
        assert runtime.find_morph(llc_line, "llc") is llc_morph

    def test_unregister_unknown_morph(self, runtime):
        from tests.test_morph import RecordingMorph

        morph = RecordingMorph(runtime)
        runtime.unregister_morph(morph)
        with pytest.raises(KeyError):
            runtime.unregister_morph(morph)

    def test_baseline_behaviour_unchanged_with_idle_runtime(self):
        """A runtime with no morphs/pools does not perturb the baseline
        (Sec. VI-D: no impact on non-NDC workloads)."""

        def prog():
            for i in range(64):
                yield Load(0x9_0000 + i * 64, 8)
                yield Compute(3)

        baseline = Machine(small_config())
        baseline.spawn(prog(), tile=0)
        base_time = baseline.run()

        with_runtime = Machine(small_config())
        Leviathan(with_runtime)
        with_runtime.spawn(prog(), tile=0)
        runtime_time = with_runtime.run()

        assert runtime_time == pytest.approx(base_time)
        assert (
            baseline.stats["dram.accesses"] == with_runtime.stats["dram.accesses"]
        )

    def test_spawn_passthrough(self, runtime):
        done = []

        def prog():
            yield Compute(1)
            done.append(True)

        runtime.spawn(prog(), tile=1)
        runtime.machine.run()
        assert done == [True]

    def test_repr(self, runtime):
        assert "engines" in repr(runtime)


class TestAreaModel:
    def test_paper_numbers(self):
        model = AreaModel()
        assert model.total_bytes() / 1024 == pytest.approx(32.8, abs=0.1)
        assert model.overhead_fraction() == pytest.approx(0.064, abs=0.001)

    def test_breakdown_matches_table4(self):
        breakdown = AreaModel().breakdown()
        assert breakdown["LLC tags"] == 3 * 1024
        assert breakdown["LLC translation buffer"] == 200
        assert breakdown["Engine L1d, TLB, rTLB"] == 12 * 1024
        assert breakdown["Data-triggered buffer"] == 4 * 1024

    def test_larger_objects_cost_more(self):
        small = AreaModel(max_object_bytes=256)
        big = AreaModel(max_object_bytes=1024)
        assert big.total_bytes() > small.total_bytes()

    def test_report_renders(self):
        report = AreaModel().report()
        assert "Total per LLC bank" in report
        assert "6.4%" in report

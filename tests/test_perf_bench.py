"""The benchmark registry and runner (repro.perf.bench / .registry)."""

import json

import pytest

import repro.experiments.cli as cli
from repro.perf import registry
from repro.perf.bench import Benchmark, BenchResult, quartiles, run_benchmark
from repro.perf.fingerprint import fingerprint, short_sha
from repro.perf.history import bench_payload, load_history, write_history


class TestRegistry:
    def test_at_least_eight_benchmarks(self):
        assert len(registry.names()) >= 8

    def test_both_kinds_present(self):
        kinds = {registry.get(name).kind for name in registry.names()}
        assert kinds == {"micro", "macro"}

    def test_expected_subsystem_coverage(self):
        names = registry.names()
        for expected in (
            "scheduler.steps",
            "cache.private_path",
            "cache.shared_path",
            "noc.hop",
            "invoke.round_trip",
            "stream.push_pop",
            "morph.trigger",
            "fig18.hashtable_leviathan",
            "fig20.hats_leviathan",
        ):
            assert expected in names

    def test_select_filters_by_substring(self):
        selected = registry.select("cache")
        assert [b.name for b in selected] == [
            "cache.private_path",
            "cache.shared_path",
        ]
        assert registry.select(None) == [
            registry.get(name) for name in registry.names()
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            registry.get("no.such.benchmark")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(registry.get("noc.hop"))


class TestRunBenchmark:
    def _counting_bench(self, units=7):
        calls = {"make": 0, "run": 0}

        def make():
            calls["make"] += 1

            def timed():
                calls["run"] += 1
                return units

            return timed

        return Benchmark("t.counting", "micro", make, unit="ops"), calls

    def test_warmup_and_trials_each_get_fresh_setup(self):
        bench, calls = self._counting_bench()
        result = run_benchmark(bench, trials=3, warmup=2)
        assert calls == {"make": 5, "run": 5}
        assert len(result.trials_s) == 3
        assert result.units == 7

    def test_statistics_from_known_timings(self):
        bench, _calls = self._counting_bench(units=100)
        ticks = iter([0.0, 1.0, 10.0, 12.0, 20.0, 24.0])
        result = run_benchmark(
            bench, trials=3, warmup=0, timer=lambda: next(ticks)
        )
        assert result.trials_s == [1.0, 2.0, 4.0]
        assert result.median_s == 2.0
        assert result.steps_per_sec == 100 / 2.0
        assert result.q1_s == pytest.approx(1.5)
        assert result.q3_s == pytest.approx(3.0)
        assert result.iqr_s == pytest.approx(1.5)

    def test_nondeterministic_unit_count_raises(self):
        counts = iter([5, 6])

        def make():
            return lambda: next(counts)

        bench = Benchmark("t.drift", "micro", make)
        with pytest.raises(RuntimeError, match="nondeterministic"):
            run_benchmark(bench, trials=2, warmup=0)

    def test_zero_trials_rejected(self):
        bench, _ = self._counting_bench()
        with pytest.raises(ValueError):
            run_benchmark(bench, trials=0)

    def test_quartiles_degenerate_single_sample(self):
        assert quartiles([3.0]) == (3.0, 3.0)

    def test_micro_benchmark_executes_with_declared_units(self):
        result = run_benchmark(registry.get("morph.trigger"), trials=1, warmup=0)
        assert result.units == 4096
        assert result.median_s > 0
        assert result.steps_per_sec > 0


class TestMacroBitIdentical:
    def test_registry_run_matches_direct_runner_call(self):
        """Benchmark-registry execution (profiling disabled) must be
        bit-identical in application results to calling the workload
        runner directly -- the same guard discipline as the telemetry
        and faults detached paths."""
        from repro.perf.registry import FIG18_PARAMS, FIG18_TILES
        from repro.workloads import hashtable

        timed = registry.get("fig18.hashtable_leviathan").make()
        timed()
        via_bench = timed.result
        direct = hashtable.run_leviathan(dict(FIG18_PARAMS), n_tiles=FIG18_TILES)

        assert via_bench.cycles == direct.cycles
        assert via_bench.energy_pj == direct.energy_pj
        assert via_bench.output == direct.output
        assert via_bench.stats == direct.stats
        assert via_bench.access_profile == direct.access_profile


class TestHistory:
    def _result(self, name="t.one", median=1.0):
        return BenchResult(
            name=name, kind="micro", unit="ops", units=10,
            trials_s=[median], median_s=median, q1_s=median, q3_s=median,
        )

    def test_payload_round_trip(self, tmp_path):
        payload = bench_payload([self._result()], trials=3, warmup=1)
        path = write_history(payload, out_dir=str(tmp_path))
        loaded = load_history(path)
        assert loaded["benchmarks"]["t.one"]["median_s"] == 1.0
        assert loaded["trials"] == 3
        assert loaded["fingerprint"]["python"]
        assert path.endswith(f"BENCH_{short_sha(payload['fingerprint'])}.json")

    def test_load_rejects_non_history_files(self, tmp_path):
        bad = tmp_path / "not_bench.json"
        bad.write_text(json.dumps({"something": 1}))
        with pytest.raises(ValueError, match="no 'benchmarks'"):
            load_history(str(bad))
        no_median = tmp_path / "no_median.json"
        no_median.write_text(json.dumps({"benchmarks": {"x": {}}}))
        with pytest.raises(ValueError, match="median_s"):
            load_history(str(no_median))

    def test_fingerprint_fields(self):
        fp = fingerprint()
        for key in ("git_sha", "git_dirty", "python", "platform", "cpu_count"):
            assert key in fp
        assert short_sha({"git_sha": None}) == "nogit"
        assert short_sha({"git_sha": "abcdef0123456789"}) == "abcdef012345"


class TestBenchCli:
    def test_bench_writes_history_file(self, tmp_path, capsys):
        assert (
            cli.main(
                [
                    "bench", "--trials", "1", "--warmup", "0",
                    "--filter", "morph", "--out", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "morph.trigger" in out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        payload = load_history(str(files[0]))
        entry = payload["benchmarks"]["morph.trigger"]
        assert entry["median_s"] > 0
        assert entry["steps_per_sec"] > 0
        assert "iqr_s" in entry

    def test_bench_unknown_filter_is_usage_error(self, capsys):
        assert cli.main(["bench", "--filter", "nope-nothing"]) == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_bench_too_many_compare_paths(self, capsys):
        assert cli.main(["bench", "--compare", "a", "b", "c"]) == 2


class TestSpeedSmokeBaseline:
    """The committed budget baseline must cover the smoke benchmarks."""

    def test_baseline_covers_full_registry(self):
        import benchmarks.test_sim_speed as smoke

        budgets = json.loads(smoke.BASELINE_PATH.read_text())["benchmarks"]
        for name in registry.names():
            assert name in budgets, f"bench_baseline.json missing {name}"
            assert budgets[name]["median_s"] > 0
        for name in smoke.SMOKE_BENCHMARKS:
            assert name in budgets

    def test_baseline_loads_as_history_file(self):
        import benchmarks.test_sim_speed as smoke

        payload = load_history(str(smoke.BASELINE_PATH))
        assert payload["kind"] == "leviathan-bench-baseline"

"""Unit tests for task offload: placement, backpressure, futures, chains."""

import pytest

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Sleep, Store
from repro.sim.system import Machine


class Cell(Actor):
    SIZE = 8

    @action
    def poke(self, env, amount=1):
        yield Load(self.addr, 8)
        yield Compute(1)
        mem = env.machine.mem
        yield Store(
            self.addr, 8, apply=lambda: mem.__setitem__(
                self.addr, mem.get(self.addr, 0) + amount
            )
        )

    @action
    def read(self, env):
        yield Load(self.addr, 8)
        return env.machine.mem.get(self.addr, 0)

    @action
    def where(self, env):
        yield Compute(1)
        return ("ran", )


@pytest.fixture
def cell(runtime):
    alloc = runtime.allocator_for(Cell, capacity=8)
    return alloc.allocate()


def run_invokes(machine, ops, tile=0):
    def prog():
        for op in ops:
            yield op

    machine.spawn(prog(), tile=tile, name="invoker")
    machine.run()


class TestBasicInvoke:
    def test_invoke_executes_action(self, machine, runtime, cell):
        run_invokes(machine, [Invoke(cell, "poke", (5,), location=Location.REMOTE)])
        assert machine.mem[cell.addr] == 5
        assert machine.stats["engine.tasks"] == 1

    def test_invoke_requires_runtime(self):
        machine = Machine(small_config())
        cell = Cell()
        cell.addr = 0x10000

        def prog():
            yield Invoke(cell, "poke", (1,))

        machine.spawn(prog(), tile=0)
        with pytest.raises(RuntimeError):
            machine.run()

    def test_invoke_is_async(self, machine, runtime, cell):
        """The invoking core does not wait for the action."""
        times = []

        def prog():
            yield Invoke(cell, "poke", (1,), location=Location.REMOTE)
            times.append(machine.scheduler.current.time)

        machine.spawn(prog(), tile=0)
        machine.run()
        # Issue cost is tiny; the engine work happens later.
        assert times[0] < 10

    def test_future_returns_value(self, machine, runtime, cell):
        got = []

        def prog():
            yield Invoke(cell, "poke", (3,), location=Location.REMOTE)
            # Invokes are asynchronous: give the poke time to land.
            yield Sleep(500)
            future = yield Invoke(cell, "read", with_future=True, location=Location.REMOTE)
            value = yield WaitFuture(future)
            got.append(value)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert got == [3]

    def test_with_future_conflicts_with_explicit_future(self, machine, runtime, cell):
        future = Future(machine, 0)

        def prog():
            yield Invoke(cell, "read", with_future=True, future=future)

        machine.spawn(prog(), tile=0)
        with pytest.raises(ValueError):
            machine.run()

    def test_none_result_does_not_fill_future(self, machine, runtime, cell):
        class Quiet(Actor):
            SIZE = 8

            @action
            def nothing(self, env):
                yield Compute(1)
                return None

        quiet = Quiet()
        quiet.addr = cell.addr
        future = Future(machine, 0)
        run_invokes(machine, [Invoke(quiet, "nothing", future=future)])
        assert not future.filled


class TestPlacement:
    def test_remote_runs_at_bank(self, machine, runtime, cell):
        bank = machine.hierarchy.bank_of(machine.hierarchy.line_of(cell.addr))
        contexts = []

        class Spy(Cell):
            @action
            def spy(self, env):
                yield Compute(1)
                contexts.append(machine.scheduler.current.tile)

        spy = Spy()
        spy.addr = cell.addr
        run_invokes(machine, [Invoke(spy, "spy", location=Location.REMOTE)], tile=0)
        assert contexts == [bank]

    def test_local_runs_on_invoker_tile(self, machine, runtime, cell):
        contexts = []

        class Spy(Cell):
            @action
            def spy(self, env):
                yield Compute(1)
                contexts.append(machine.scheduler.current.tile)

        spy = Spy()
        spy.addr = cell.addr
        run_invokes(machine, [Invoke(spy, "spy", location=Location.LOCAL)], tile=2)
        assert contexts == [2]

    def test_pinned_tile(self, machine, runtime, cell):
        contexts = []

        class Spy(Cell):
            @action
            def spy(self, env):
                yield Compute(1)
                contexts.append(machine.scheduler.current.tile)

        spy = Spy()
        spy.addr = cell.addr
        run_invokes(machine, [Invoke(spy, "spy", tile=3)], tile=0)
        assert contexts == [3]

    def test_dynamic_runs_inline_when_cached_in_l1(self, machine, runtime, cell):
        def prog():
            yield Load(cell.addr, 8)  # pull into tile 0's L1
            yield Invoke(cell, "poke", (1,), location=Location.DYNAMIC)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.stats["invoke.inline_at_core"] == 1
        assert machine.stats["engine.tasks"] == 0

    def test_dynamic_goes_remote_when_uncached(self, machine, runtime, cell):
        bank = machine.hierarchy.bank_of(machine.hierarchy.line_of(cell.addr))
        invoker_tile = (bank + 1) % machine.config.n_tiles
        run_invokes(
            machine,
            [Invoke(cell, "poke", (1,), location=Location.DYNAMIC)],
            tile=invoker_tile,
        )
        assert machine.stats["invoke.remote"] + machine.stats["invoke.migrations"] == 1

    def test_dynamic_exclusive_follows_owner(self, machine, runtime, cell):
        line = machine.hierarchy.line_of(cell.addr)
        contexts = []

        class Spy(Cell):
            @action
            def spy(self, env):
                yield Compute(1)
                contexts.append(machine.scheduler.current.tile)

        spy = Spy()
        spy.addr = cell.addr

        def owner_prog():
            yield Store(cell.addr, 8)  # tile 2 takes ownership

        def invoker_prog():
            yield Sleep(50)
            yield Invoke(spy, "spy", location=Location.DYNAMIC, exclusive=True)

        machine.spawn(owner_prog(), tile=2)
        machine.spawn(invoker_prog(), tile=1)
        machine.run()
        assert contexts == [2]

    def test_migration_pulls_hot_actor_local(self, runtime):
        machine = runtime.machine
        period = machine.config.leviathan.migration_period
        alloc = runtime.allocator_for(Cell, capacity=4)
        cell_actor = alloc.allocate()

        bank = machine.hierarchy.bank_of(machine.hierarchy.line_of(cell_actor.addr))
        invoker_tile = (bank + 1) % machine.config.n_tiles

        def prog():
            for _ in range(period + 2):
                yield Invoke(cell_actor, "poke", (1,), location=Location.DYNAMIC)

        machine.spawn(prog(), tile=invoker_tile)
        machine.run()
        assert machine.stats["invoke.migrations"] >= 1
        # After migration, later invokes run on the invoker's tile.
        assert machine.stats["invoke.remote"] < period + 2


class TestBackpressure:
    def test_invoke_buffer_stalls_core(self):
        cfg = small_config(**{"core.invoke_buffer_entries": 1, "engine.task_contexts": 2})
        machine = Machine(cfg)
        runtime = Leviathan(machine)
        alloc = runtime.allocator_for(Cell, capacity=8)
        cell = alloc.allocate()

        def prog():
            for _ in range(16):
                yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        assert machine.stats["invoke.stalls"] > 0
        assert machine.mem[cell.addr] == 16  # all work still completed

    def test_engine_nacks_when_contexts_full(self):
        cfg = small_config(**{"engine.task_contexts": 2})  # 1 offload context
        machine = Machine(cfg)
        runtime = Leviathan(machine)
        alloc = runtime.allocator_for(Slow, capacity=8)
        actor = alloc.allocate()

        def prog():
            for _ in range(6):
                yield Invoke(actor, "slow", location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        assert machine.stats["engine.nacks"] > 0
        assert machine.stats["engine.tasks"] == 6

    def test_futures_skip_invoke_buffer(self):
        cfg = small_config(**{"core.invoke_buffer_entries": 1})
        machine = Machine(cfg)
        runtime = Leviathan(machine)
        alloc = runtime.allocator_for(Cell, capacity=8)
        cell = alloc.allocate()

        def prog():
            futures = []
            for _ in range(4):
                future = yield Invoke(cell, "read", with_future=True, location=Location.REMOTE)
                futures.append(future)
            for future in futures:
                yield WaitFuture(future)

        machine.spawn(prog(), tile=1)
        machine.run()
        assert machine.stats["invoke.stalls"] == 0


class Slow(Actor):
    SIZE = 8

    @action
    def slow(self, env):
        yield Compute(500)


class TestChaining:
    def test_continuation_passing_chain(self, machine, runtime):
        class LinkedCell(Actor):
            SIZE = 16

            def __init__(self):
                super().__init__()
                self.next = None
                self.value = 0

            @action
            def sum_chain(self, env, acc, future):
                yield Load(self.addr, 16)
                yield Compute(2)
                acc = acc + self.value
                if self.next is None:
                    return acc
                yield Invoke(
                    self.next, "sum_chain", (acc, future), future=future, args_bytes=16
                )
                return None

        alloc = runtime.allocator_for(LinkedCell, capacity=8)
        cells = [alloc.allocate() for _ in range(5)]
        for i, cell in enumerate(cells):
            cell.value = i + 1
            cell.next = cells[i + 1] if i + 1 < len(cells) else None

        got = []

        def prog():
            future = Future(machine, 0)
            yield Invoke(cells[0], "sum_chain", (0, future), future=future, args_bytes=16)
            value = yield WaitFuture(future)
            got.append(value)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert got == [15]
        assert machine.stats["engine.tasks"] >= 1

"""The `telemetry` report command (repro.experiments.telemetry_report)."""

import json

import repro.experiments.cli as cli
from repro.experiments.telemetry_report import (
    count_with_label,
    find_runs,
    render,
    report,
    summarize_run,
)


def span_events(name="invoke", cat="invoke", uid=0, start=10, end=50):
    base = {"cat": cat, "id": uid, "pid": 0, "tid": 0}
    return [
        dict(base, ph="b", name=name, ts=start),
        dict(base, ph="e", name=name, ts=end),
    ]


def write_run(
    root,
    name="run-a",
    trace_events=None,
    counters=None,
    timeseries=None,
    meta=None,
):
    """A synthetic telemetry run directory under ``root``."""
    run_dir = root / "runs" / name / "machine-00"
    run_dir.mkdir(parents=True)
    trace = {
        "traceEvents": span_events() if trace_events is None else trace_events,
        "displayTimeUnit": "ms",
    }
    (run_dir / "trace.json").write_text(json.dumps(trace))
    metrics = {
        "meta": dict({"cycles": 1234.0}, **(meta or {})),
        "counters": counters or {},
        "histograms": {
            "invoke.latency": {
                "count": 3, "mean": 40.0, "p50": 38.0, "p95": 60.0,
                "p99": 61.0, "max": 62.0,
            }
        },
        "timeseries": timeseries or {},
    }
    (run_dir / "metrics.json").write_text(json.dumps(metrics))
    return run_dir


class TestCountWithLabel:
    COUNTERS = {
        'engine.arrivals{engine="0",outcome="executed"}': 10,
        'engine.arrivals{engine="0",outcome="nacked"}': 3,
        'engine.arrivals{engine="2",outcome="nacked"}': 4,
        'engine.arrivals{outcome="nacked"}': 2,
        'other.counter{outcome="nacked"}': 99,
        "engine.arrivals": 50,
    }

    def test_sums_every_series_with_the_label(self):
        total = count_with_label(
            self.COUNTERS, "engine.arrivals", 'outcome="nacked"'
        )
        assert total == 3 + 4 + 2

    def test_base_name_must_match(self):
        assert (
            count_with_label(self.COUNTERS, "other.counter", 'outcome="nacked"')
            == 99
        )

    def test_unlabelled_series_do_not_match(self):
        assert (
            count_with_label(self.COUNTERS, "engine.arrivals", 'outcome="x"')
            == 0
        )

    def test_label_match_is_exact_not_substring(self):
        counters = {'a{outcome="nacked-retry"}': 5}
        assert count_with_label(counters, "a", 'outcome="nacked"') == 0


class TestReport:
    def test_empty_root_is_not_ok(self, tmp_path):
        text, ok = report(str(tmp_path))
        assert not ok
        assert "no telemetry runs" in text

    def test_valid_run_reports_ok(self, tmp_path):
        write_run(
            tmp_path,
            counters={
                'engine.arrivals{engine="1",outcome="nacked"}': 7,
                "invoke.stall_events": 2,
            },
            timeseries={'noc.utilization{tile="0"}': [[0, 0.5]]},
        )
        text, ok = report(str(tmp_path))
        assert ok
        assert "trace: VALID" in text
        assert "nacks: 7" in text
        assert "stall events: 2" in text
        assert "time series: 1 (noc.utilization)" in text
        assert "cycles: 1234" in text
        assert "invoke.latency: n=3" in text
        assert "1 run(s)" in text

    def test_invalid_trace_reports_problem_and_not_ok(self, tmp_path):
        # An end without a begin: the signature of a torn trace.
        bad = [
            {
                "cat": "invoke", "id": 0, "pid": 0, "tid": 0,
                "ph": "e", "name": "invoke", "ts": 50,
            }
        ]
        write_run(tmp_path, trace_events=bad)
        text, ok = report(str(tmp_path))
        assert not ok
        assert "trace: INVALID" in text
        assert "without begin" in text

    def test_mixed_runs_fail_overall_but_list_both(self, tmp_path):
        write_run(tmp_path, name="good")
        write_run(
            tmp_path,
            name="torn",
            trace_events=[span_events()[0]],  # begin, never closed
        )
        text, ok = report(str(tmp_path))
        assert not ok
        assert "2 run(s)" in text
        assert "VALID" in text and "INVALID" in text

    def test_find_runs_requires_both_files(self, tmp_path):
        run_dir = write_run(tmp_path)
        incomplete = tmp_path / "runs" / "half" / "machine-00"
        incomplete.mkdir(parents=True)
        (incomplete / "trace.json").write_text("{}")
        assert find_runs(str(tmp_path)) == [str(run_dir)]


class TestSummarizeAndRender:
    def test_summarize_run_digest(self, tmp_path):
        run_dir = write_run(
            tmp_path,
            counters={'engine.arrivals{outcome="nacked"}': 5},
            meta={"spans_unclosed": 1, "spans_dropped": 2},
        )
        summary = summarize_run(str(run_dir))
        assert summary["trace_spans"] == 1
        assert summary["trace_events"] == 2
        assert summary["nacks"] == 5
        assert summary["spans_unclosed"] == 1
        assert summary["spans_dropped"] == 2
        assert summary["trace_problems"] == []

    def test_render_lists_problems(self, tmp_path):
        run_dir = write_run(tmp_path, trace_events=[span_events()[0]])
        summary = summarize_run(str(run_dir))
        text = render(summary)
        assert "INVALID" in text
        assert "!!" in text


class TestTelemetryReportCli:
    def test_cli_exit_codes(self, tmp_path, capsys):
        assert cli.main(["telemetry", str(tmp_path)]) == 1
        write_run(tmp_path)
        assert cli.main(["telemetry", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out


class TestPartiallyWrittenRuns:
    """A worker killed mid-sweep leaves torn artifacts; the report and
    the dashboard must degrade, never raise."""

    def test_summarize_run_with_missing_metrics(self, tmp_path):
        run_dir = tmp_path / "runs" / "half" / "machine-00"
        run_dir.mkdir(parents=True)
        (run_dir / "trace.json").write_text(
            json.dumps({"traceEvents": span_events()})
        )
        summary = summarize_run(str(run_dir))
        assert summary["trace_spans"] == 1
        assert summary["cycles"] is None
        assert any("missing metrics.json" in p for p in summary["trace_problems"])
        render(summary)  # must render too

    def test_summarize_run_with_torn_trace(self, tmp_path):
        run_dir = tmp_path / "runs" / "torn" / "machine-00"
        run_dir.mkdir(parents=True)
        (run_dir / "trace.json").write_text('{"traceEvents": [{"ph": "b"')
        (run_dir / "metrics.json").write_text(
            json.dumps({"meta": {"cycles": 10.0}, "counters": {}})
        )
        summary = summarize_run(str(run_dir))
        assert summary["trace_events"] == 0
        assert summary["cycles"] == 10.0
        assert any("trace.json" in p for p in summary["trace_problems"])
        text, ok = report(str(tmp_path))
        assert not ok
        assert "INVALID" in text

    def test_summarize_run_with_malformed_metrics(self, tmp_path):
        run_dir = tmp_path / "runs" / "listy" / "machine-00"
        run_dir.mkdir(parents=True)
        (run_dir / "trace.json").write_text(json.dumps({"traceEvents": []}))
        (run_dir / "metrics.json").write_text("[1, 2, 3]")
        summary = summarize_run(str(run_dir))
        assert any("malformed metrics.json" in p for p in summary["trace_problems"])


class TestDashboardAggregation:
    def _run(self, tmp_path, name, buckets, count, counters):
        write_run(
            tmp_path,
            name=name,
            counters=counters,
        )
        run_dir = tmp_path / "runs" / name / "machine-00"
        metrics = json.loads((run_dir / "metrics.json").read_text())
        metrics["histograms"]["invoke.latency"] = {
            "count": count,
            "sum": float(sum(float(b) * n for b, n in buckets.items())),
            "min": 1.0,
            "max": max((float(b) for b in buckets), default=None),
            "buckets": buckets,
        }
        (run_dir / "metrics.json").write_text(json.dumps(metrics))
        return run_dir

    def test_histograms_merge_across_runs(self, tmp_path):
        from repro.experiments.telemetry_report import aggregate_sweep

        self._run(
            tmp_path, "a", {"2.0": 9}, 9,
            {"dram.accesses": 5, 'engine.arrivals{outcome="nacked"}': 2},
        )
        self._run(
            tmp_path, "b", {"1024.0": 1}, 1,
            {"dram.accesses": 7, "noc.flits": 3},
        )
        agg = aggregate_sweep(str(tmp_path))
        assert agg["runs"] == 2
        hist = agg["histograms"]["invoke.latency"]
        assert hist["count"] == 10
        # Merged tail: p50 falls in the 2.0 bucket, p99 in the slow
        # run's 1024.0 bucket -- a per-run average would hide it.
        assert hist["p50"] == 2.0
        assert hist["p99"] == 1024.0
        assert agg["counters"]["dram.accesses"] == 12
        assert agg["subsystems"]["dram"] == 12
        assert agg["subsystems"]["noc"] == 3
        assert agg["nacks"] == 2
        assert agg["cycles"]["total"] == 2468.0

    def test_write_dashboard_artifacts(self, tmp_path):
        from repro.experiments.telemetry_report import write_dashboard

        self._run(tmp_path, "a", {"2.0": 4}, 4, {"dram.accesses": 1})
        agg = write_dashboard(str(tmp_path))
        assert agg["runs"] == 1
        payload = json.loads((tmp_path / "dashboard.json").read_text())
        assert payload["kind"] == "leviathan-dashboard"
        markdown = (tmp_path / "dashboard.md").read_text()
        assert "invoke.latency" in markdown

    def test_write_dashboard_empty_root(self, tmp_path):
        from repro.experiments.telemetry_report import write_dashboard

        assert write_dashboard(str(tmp_path)) is None
        assert not (tmp_path / "dashboard.json").exists()

"""The `telemetry` report command (repro.experiments.telemetry_report)."""

import json

import repro.experiments.cli as cli
from repro.experiments.telemetry_report import (
    count_with_label,
    find_runs,
    render,
    report,
    summarize_run,
)


def span_events(name="invoke", cat="invoke", uid=0, start=10, end=50):
    base = {"cat": cat, "id": uid, "pid": 0, "tid": 0}
    return [
        dict(base, ph="b", name=name, ts=start),
        dict(base, ph="e", name=name, ts=end),
    ]


def write_run(
    root,
    name="run-a",
    trace_events=None,
    counters=None,
    timeseries=None,
    meta=None,
):
    """A synthetic telemetry run directory under ``root``."""
    run_dir = root / "runs" / name / "machine-00"
    run_dir.mkdir(parents=True)
    trace = {
        "traceEvents": span_events() if trace_events is None else trace_events,
        "displayTimeUnit": "ms",
    }
    (run_dir / "trace.json").write_text(json.dumps(trace))
    metrics = {
        "meta": dict({"cycles": 1234.0}, **(meta or {})),
        "counters": counters or {},
        "histograms": {
            "invoke.latency": {
                "count": 3, "mean": 40.0, "p50": 38.0, "p95": 60.0,
                "p99": 61.0, "max": 62.0,
            }
        },
        "timeseries": timeseries or {},
    }
    (run_dir / "metrics.json").write_text(json.dumps(metrics))
    return run_dir


class TestCountWithLabel:
    COUNTERS = {
        'engine.arrivals{engine="0",outcome="executed"}': 10,
        'engine.arrivals{engine="0",outcome="nacked"}': 3,
        'engine.arrivals{engine="2",outcome="nacked"}': 4,
        'engine.arrivals{outcome="nacked"}': 2,
        'other.counter{outcome="nacked"}': 99,
        "engine.arrivals": 50,
    }

    def test_sums_every_series_with_the_label(self):
        total = count_with_label(
            self.COUNTERS, "engine.arrivals", 'outcome="nacked"'
        )
        assert total == 3 + 4 + 2

    def test_base_name_must_match(self):
        assert (
            count_with_label(self.COUNTERS, "other.counter", 'outcome="nacked"')
            == 99
        )

    def test_unlabelled_series_do_not_match(self):
        assert (
            count_with_label(self.COUNTERS, "engine.arrivals", 'outcome="x"')
            == 0
        )

    def test_label_match_is_exact_not_substring(self):
        counters = {'a{outcome="nacked-retry"}': 5}
        assert count_with_label(counters, "a", 'outcome="nacked"') == 0


class TestReport:
    def test_empty_root_is_not_ok(self, tmp_path):
        text, ok = report(str(tmp_path))
        assert not ok
        assert "no telemetry runs" in text

    def test_valid_run_reports_ok(self, tmp_path):
        write_run(
            tmp_path,
            counters={
                'engine.arrivals{engine="1",outcome="nacked"}': 7,
                "invoke.stall_events": 2,
            },
            timeseries={'noc.utilization{tile="0"}': [[0, 0.5]]},
        )
        text, ok = report(str(tmp_path))
        assert ok
        assert "trace: VALID" in text
        assert "nacks: 7" in text
        assert "stall events: 2" in text
        assert "time series: 1 (noc.utilization)" in text
        assert "cycles: 1234" in text
        assert "invoke.latency: n=3" in text
        assert "1 run(s)" in text

    def test_invalid_trace_reports_problem_and_not_ok(self, tmp_path):
        # An end without a begin: the signature of a torn trace.
        bad = [
            {
                "cat": "invoke", "id": 0, "pid": 0, "tid": 0,
                "ph": "e", "name": "invoke", "ts": 50,
            }
        ]
        write_run(tmp_path, trace_events=bad)
        text, ok = report(str(tmp_path))
        assert not ok
        assert "trace: INVALID" in text
        assert "without begin" in text

    def test_mixed_runs_fail_overall_but_list_both(self, tmp_path):
        write_run(tmp_path, name="good")
        write_run(
            tmp_path,
            name="torn",
            trace_events=[span_events()[0]],  # begin, never closed
        )
        text, ok = report(str(tmp_path))
        assert not ok
        assert "2 run(s)" in text
        assert "VALID" in text and "INVALID" in text

    def test_find_runs_requires_both_files(self, tmp_path):
        run_dir = write_run(tmp_path)
        incomplete = tmp_path / "runs" / "half" / "machine-00"
        incomplete.mkdir(parents=True)
        (incomplete / "trace.json").write_text("{}")
        assert find_runs(str(tmp_path)) == [str(run_dir)]


class TestSummarizeAndRender:
    def test_summarize_run_digest(self, tmp_path):
        run_dir = write_run(
            tmp_path,
            counters={'engine.arrivals{outcome="nacked"}': 5},
            meta={"spans_unclosed": 1, "spans_dropped": 2},
        )
        summary = summarize_run(str(run_dir))
        assert summary["trace_spans"] == 1
        assert summary["trace_events"] == 2
        assert summary["nacks"] == 5
        assert summary["spans_unclosed"] == 1
        assert summary["spans_dropped"] == 2
        assert summary["trace_problems"] == []

    def test_render_lists_problems(self, tmp_path):
        run_dir = write_run(tmp_path, trace_events=[span_events()[0]])
        summary = summarize_run(str(run_dir))
        text = render(summary)
        assert "INVALID" in text
        assert "!!" in text


class TestTelemetryReportCli:
    def test_cli_exit_codes(self, tmp_path, capsys):
        assert cli.main(["telemetry", str(tmp_path)]) == 1
        write_run(tmp_path)
        assert cli.main(["telemetry", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out

"""Shared fixtures: small machines and Leviathan runtimes."""

import pytest

from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, small_config
from repro.sim.system import Machine


@pytest.fixture
def config():
    """A small 4-tile machine configuration for unit tests."""
    return small_config()


@pytest.fixture
def machine(config):
    """A bare (baseline) machine."""
    return Machine(config)


@pytest.fixture
def runtime(machine):
    """A machine with the Leviathan runtime installed."""
    return Leviathan(machine)


@pytest.fixture
def full_config():
    """The unscaled Table V configuration."""
    return SystemConfig()


def as_program(ops):
    """Wrap a plain iterable of ops as a generator program."""
    for op in ops:
        yield op


def run_program(machine, program, tile=0, name="test"):
    """Spawn a single program and run the machine to completion."""
    if not hasattr(program, "send"):
        program = as_program(program)
    machine.spawn(program, tile=tile, name=name)
    return machine.run()

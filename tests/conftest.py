"""Shared fixtures: small machines and Leviathan runtimes."""

import pytest

from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, small_config
from repro.sim.system import Machine


@pytest.fixture(autouse=True)
def _isolated_results_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a per-test tmp dir.

    Keeps ``cli.main(...)`` calls in tests from writing a
    ``results-cache/`` directory into the repository working tree.
    """
    monkeypatch.setenv("LEVIATHAN_CACHE_DIR", str(tmp_path / "results-cache"))


@pytest.fixture
def config():
    """A small 4-tile machine configuration for unit tests."""
    return small_config()


@pytest.fixture
def machine(config):
    """A bare (baseline) machine."""
    return Machine(config)


@pytest.fixture
def runtime(machine):
    """A machine with the Leviathan runtime installed."""
    return Leviathan(machine)


@pytest.fixture
def full_config():
    """The unscaled Table V configuration."""
    return SystemConfig()


def as_program(ops):
    """Wrap a plain iterable of ops as a generator program."""
    for op in ops:
        yield op


def run_program(machine, program, tile=0, name="test"):
    """Spawn a single program and run the machine to completion."""
    if not hasattr(program, "send"):
        program = as_program(program)
    machine.spawn(program, tile=tile, name=name)
    return machine.run()

"""Integration tests: paradigms composed on one machine (Sec. V-B4).

The paper's central claim is that Leviathan is the first system where
all four NDC paradigms coexist and *interact*. These tests build small
multi-paradigm applications end to end:

- PHI + streaming: a stream of graph edges feeds offloaded RMW tasks
  that target data-triggered phantom deltas (the combination Sec. V-B4
  proposes: "further combine PHI with streaming by decoupling the graph
  traversal").
- offload + data-triggered: tasks whose target objects are phantom.
- every paradigm concurrently on one machine.
"""

import numpy as np
import pytest

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine


class DeltaMorph(Morph):
    """Phantom accumulators, zero-filled on insertion."""

    def __init__(self, runtime, n):
        super().__init__(runtime, "llc", n, 8, name="it-deltas")
        self.final = {}

    def construct(self, view, index):
        self.machine.mem[self.get_actor_addr(index)] = 0.0
        yield Compute(1)

    def destruct(self, view, index, dirty):
        if dirty:
            value = self.machine.mem.get(self.get_actor_addr(index), 0.0)
            if value:
                self.final[index] = self.final.get(index, 0.0) + value
                self.machine.mem[self.get_actor_addr(index)] = 0.0
                yield Compute(1)


class DeltaActor(Actor):
    SIZE = 8

    @action
    def add(self, env, amount):
        mem = env.machine.mem
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0.0) + amount),
        )


class EdgeStream(Stream):
    def __init__(self, runtime, edges, **kwargs):
        self.edges = edges
        super().__init__(
            runtime, object_size=8, buffer_entries=32, consumer_tile=0, **kwargs
        )

    def gen_stream(self, env):
        for edge in self.edges:
            yield Compute(2)
            yield from self.push(edge)


class TestPhiPlusStreaming:
    """A stream produces updates; offloaded tasks apply them to phantom
    deltas; destructors spill them -- all four paradigm mechanisms."""

    def test_stream_feeding_offloaded_rmws_on_phantom_data(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        n = 64
        rng = np.random.default_rng(3)
        edges = [(int(rng.integers(0, n)), 1.0) for _ in range(300)]

        morph = DeltaMorph(runtime, n)
        actors = []
        for v in range(n):
            actor = DeltaActor()
            actor.addr = morph.get_actor_addr(v)
            actors.append(actor)

        stream = EdgeStream(runtime, edges)
        stream.start()

        def consumer():
            while True:
                entry = yield from stream.consume()
                if entry is STREAM_END:
                    return
                vertex, amount = entry
                yield Invoke(actors[vertex], "add", (amount,), location=Location.REMOTE)

        machine.spawn(consumer(), tile=0, name="consumer")
        machine.run()
        morph.unregister()

        expected = np.zeros(n)
        for vertex, amount in edges:
            expected[vertex] += amount
        got = np.zeros(n)
        for vertex, value in morph.final.items():
            got[vertex] += value
        assert np.allclose(got, expected)
        # All mechanisms actually engaged.
        assert machine.stats["stream.pushes"] == len(edges)
        assert machine.stats["engine.tasks"] >= len(edges)
        assert machine.stats["morph.llc_constructions"] > 0


class TestOffloadPlusDataTriggered:
    def test_invoke_targeting_phantom_actor(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        morph = DeltaMorph(runtime, 16)
        actor = DeltaActor()
        actor.addr = morph.get_actor_addr(5)

        def prog():
            for _ in range(10):
                yield Invoke(actor, "add", (2.0,), location=Location.REMOTE)

        machine.spawn(prog(), tile=1)
        machine.run()
        morph.unregister()
        assert morph.final.get(5, 0.0) == pytest.approx(20.0)


class TestLongLivedPlusFutures:
    def test_long_lived_pinned_task_reports_back(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)

        class Scanner(Actor):
            SIZE = 8

            @action
            def scan(self, env, base, count):
                total = 0
                for i in range(count):
                    yield Load(base + i * 8, 8)
                    yield Compute(1)
                    total += env.machine.mem.get(base + i * 8, 0)
                return total

        base = machine.address_space.alloc(64 * 8, align=64)
        for i in range(64):
            machine.mem[base + i * 8] = i
        alloc = runtime.allocator_for(Scanner, capacity=4)
        scanner = alloc.allocate()
        got = []

        def prog():
            future = yield Invoke(
                scanner, "scan", (base, 64), tile=3, with_future=True, args_bytes=16
            )
            value = yield WaitFuture(future)
            got.append(value)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert got == [sum(range(64))]


class TestAllParadigmsConcurrently:
    def test_kitchen_sink(self):
        """Offload, long-lived, data-triggered, and streaming at once."""
        machine = Machine(small_config())
        runtime = Leviathan(machine)

        # Data-triggered + offload.
        morph = DeltaMorph(runtime, 32)
        actor = DeltaActor()
        actor.addr = morph.get_actor_addr(0)

        # Streaming.
        stream = EdgeStream(runtime, [(i % 32, 1.0) for i in range(100)])
        stream.start()
        consumed = []

        def stream_consumer():
            while True:
                entry = yield from stream.consume()
                if entry is STREAM_END:
                    return
                consumed.append(entry)

        # Long-lived pinned worker.
        class Worker(Actor):
            SIZE = 8

            @action
            def churn(self, env):
                for _ in range(50):
                    yield Compute(10)
                return "done"

        alloc = runtime.allocator_for(Worker, capacity=2)
        worker = alloc.allocate()
        statuses = []

        def launcher():
            future = yield Invoke(worker, "churn", tile=2, with_future=True)
            for _ in range(20):
                yield Invoke(actor, "add", (1.0,), location=Location.REMOTE)
            status = yield WaitFuture(future)
            statuses.append(status)

        machine.spawn(stream_consumer(), tile=0)
        machine.spawn(launcher(), tile=1)
        machine.run()
        morph.unregister()

        assert len(consumed) == 100
        assert statuses == ["done"]
        assert morph.final.get(0, 0.0) == pytest.approx(20.0)

    def test_deterministic_multi_paradigm(self):
        def run_once():
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            morph = DeltaMorph(runtime, 16)
            actor = DeltaActor()
            actor.addr = morph.get_actor_addr(3)
            stream = EdgeStream(runtime, [(3, 1.0)] * 40)
            stream.start()

            def consumer():
                while True:
                    entry = yield from stream.consume()
                    if entry is STREAM_END:
                        return
                    yield Invoke(actor, "add", (entry[1],), location=Location.REMOTE)

            machine.spawn(consumer(), tile=0)
            final = machine.run()
            return final, dict(machine.stats.counters)

        assert run_once() == run_once()

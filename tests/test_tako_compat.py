"""Unit tests for the tākō-style line-granularity interface."""

from repro.core.tako_compat import LineMorph
from repro.sim.ops import Compute, Load, Store
from tests.conftest import run_program


class RecordingLineMorph(LineMorph):
    def __init__(self, runtime, n_lines=16, level="l2"):
        self.misses = []
        self.evictions = []
        self.writebacks = []
        super().__init__(runtime, level, n_lines, name="tako-lines")

    def on_miss(self, view, line_addr):
        self.misses.append(line_addr)
        yield Compute(1)

    def on_eviction(self, view, line_addr, dirty):
        self.evictions.append((line_addr, dirty))
        yield Compute(1)

    def on_writeback(self, view, line_addr):
        self.writebacks.append(line_addr)
        yield Compute(1)


class TestLineGranularity:
    def test_one_handler_call_per_line(self, machine, runtime):
        morph = RecordingLineMorph(runtime)
        run_program(machine, [Load(morph.line_addr(0), 8)])
        # One line -> exactly one on_miss (vs. 8 object ctors in a Morph).
        assert morph.misses == [morph.line_addr(0)]

    def test_handler_gets_line_addresses(self, machine, runtime):
        morph = RecordingLineMorph(runtime)
        run_program(machine, [Load(morph.line_addr(3) + 17, 1)])
        assert morph.misses == [morph.line_addr(3)]
        assert morph.misses[0] % 64 == 0

    def test_clean_eviction_vs_writeback_split(self, machine, runtime):
        morph = RecordingLineMorph(runtime)
        run_program(
            machine,
            [Load(morph.line_addr(0), 8), Store(morph.line_addr(1), 8)],
        )
        morph.unregister()
        assert morph.evictions == [(morph.line_addr(0), False)]
        assert morph.writebacks == [morph.line_addr(1)]

    def test_line_index_roundtrip(self, runtime):
        morph = RecordingLineMorph(runtime)
        for i in (0, 5, 15):
            assert morph.line_index(morph.line_addr(i)) == i

    def test_llc_level(self, machine, runtime):
        morph = RecordingLineMorph(runtime, level="llc")
        run_program(machine, [Load(morph.line_addr(2), 8)])
        assert machine.stats["morph.llc_constructions"] == 1
        assert morph.misses == [morph.line_addr(2)]


class TestProgrammabilityGap:
    """The paper's Sec. VIII-A point, demonstrated as a test: with
    line-granularity handlers, objects that do not divide a line land
    split across handler invocations and the handler must reason about
    partial objects; Leviathan's Morph refuses the broken layout
    outright and its padded layout never splits an object."""

    def test_6B_objects_split_across_line_handlers(self, machine, runtime):
        morph = RecordingLineMorph(runtime, n_lines=4)
        object_size = 6
        # Object 10 occupies bytes 60..65: it straddles lines 0 and 1.
        start = 10 * object_size
        assert start // 64 != (start + object_size - 1) // 64
        run_program(machine, [Load(morph.line_addr(0) + start, object_size)])
        # The access triggered BOTH line handlers; each saw a fragment.
        assert len(morph.misses) == 2

    def test_leviathan_morph_never_splits_objects(self, machine, runtime):
        from tests.test_morph import RecordingMorph

        morph = RecordingMorph(runtime, n_actors=32, object_size=6)
        for i in range(32):
            addr = morph.get_actor_addr(i)
            assert addr // 64 == (addr + 5) // 64  # padded: never straddles

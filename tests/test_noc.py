"""Unit and property tests for the mesh NoC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import SystemConfig
from repro.sim.noc import MeshNoc
from repro.sim.stats import Stats


def make_noc(n_tiles=16):
    return MeshNoc(SystemConfig(n_tiles=n_tiles), Stats())


class TestTopology:
    def test_coords_corners(self):
        noc = make_noc(16)
        assert noc.coords(0) == (0, 0)
        assert noc.coords(3) == (3, 0)
        assert noc.coords(15) == (3, 3)

    def test_coords_rejects_bad_tile(self):
        noc = make_noc(16)
        with pytest.raises(ValueError):
            noc.coords(16)
        with pytest.raises(ValueError):
            noc.coords(-1)

    def test_hops_adjacent(self):
        noc = make_noc(16)
        assert noc.hops(0, 1) == 1
        assert noc.hops(0, 4) == 1

    def test_hops_diagonal(self):
        noc = make_noc(16)
        assert noc.hops(0, 15) == 6  # 3 + 3 on a 4x4 mesh

    def test_hops_self(self):
        assert make_noc().hops(5, 5) == 0

    def test_rectangular_mesh(self):
        noc = make_noc(8)  # 4x2
        assert noc.width == 4
        assert noc.height == 2
        assert noc.hops(0, 7) == 4


class TestAccounting:
    def test_send_counts_flit_hops(self):
        noc = make_noc()
        noc.send(0, 1, 8)  # 2 flits x 1 hop
        assert noc.stats["noc.flit_hops"] == 2
        assert noc.stats["noc.messages"] == 1

    def test_local_send_free_traffic(self):
        noc = make_noc()
        noc.send(3, 3, 64)
        assert noc.stats["noc.flit_hops"] == 0
        assert noc.stats["noc.messages"] == 1

    def test_data_costs_more_flits_than_control(self):
        noc = make_noc()
        noc.send(0, 1, 8)
        control = noc.stats["noc.flits"]
        noc.send(0, 1, 64)
        data = noc.stats["noc.flits"] - control
        assert data > control

    def test_round_trip_latency(self):
        noc = make_noc()
        rt = noc.round_trip(0, 5, 8, 64)
        stats2 = Stats()
        noc2 = MeshNoc(SystemConfig(), stats2)
        assert rt == noc2.send(0, 5, 8) + noc2.send(5, 0, 64)

    def test_latency_grows_with_distance(self):
        noc = make_noc()
        assert noc.send(0, 15, 8) > noc.send(0, 1, 8)


@settings(max_examples=80, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=15),
    b=st.integers(min_value=0, max_value=15),
)
def test_property_hops_symmetric(a, b):
    noc = make_noc(16)
    assert noc.hops(a, b) == noc.hops(b, a)


@settings(max_examples=80, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=15),
    b=st.integers(min_value=0, max_value=15),
    c=st.integers(min_value=0, max_value=15),
)
def test_property_hops_triangle_inequality(a, b, c):
    noc = make_noc(16)
    assert noc.hops(a, c) <= noc.hops(a, b) + noc.hops(b, c)


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=15),
    b=st.integers(min_value=0, max_value=15),
    payload=st.integers(min_value=1, max_value=256),
)
def test_property_latency_positive_and_monotone_in_payload(a, b, payload):
    noc = make_noc(16)
    lat_small = noc.send(a, b, payload)
    lat_big = noc.send(a, b, payload + 64)
    assert lat_small >= 1
    assert lat_big >= lat_small

"""Property-based tests for task offload under random invoke storms.

For arbitrary mixes of locations, actors, invokers, and engine/buffer
capacities: every invoked task executes exactly once, all functional
updates land, the invoke buffer never exceeds its capacity, and runs
are deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine


class Tally(Actor):
    SIZE = 8

    @action
    def hit(self, env, token):
        yield Load(self.addr, 8)
        yield Compute(2)
        mem = env.machine.mem
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0) + token),
        )


LOCATIONS = [Location.LOCAL, Location.REMOTE, Location.DYNAMIC]

INVOKE_SEQ = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # invoker tile
        st.integers(min_value=0, max_value=7),  # actor index
        st.integers(min_value=0, max_value=2),  # location index
        st.booleans(),  # exclusive hint
    ),
    min_size=1,
    max_size=80,
)


def run_storm(ops, task_contexts=8, buffer_entries=2):
    cfg = small_config(
        **{
            "engine.task_contexts": task_contexts,
            "core.invoke_buffer_entries": buffer_entries,
        }
    )
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(Tally, capacity=8)
    actors = [alloc.allocate() for _ in range(8)]

    per_tile = {t: [] for t in range(4)}
    expected = {i: 0 for i in range(8)}
    for tile, actor_index, loc_index, exclusive in ops:
        per_tile[tile].append((actor_index, loc_index, exclusive))
        expected[actor_index] += 1

    def invoker(jobs):
        for actor_index, loc_index, exclusive in jobs:
            yield Invoke(
                actors[actor_index],
                "hit",
                (1,),
                location=LOCATIONS[loc_index],
                exclusive=exclusive,
            )
            yield Compute(1)

    for tile, jobs in per_tile.items():
        if jobs:
            machine.spawn(invoker(jobs), tile=tile)
    machine.run()
    got = {i: machine.mem.get(actors[i].addr, 0) for i in range(8)}
    return machine, expected, got


@settings(max_examples=30, deadline=None)
@given(ops=INVOKE_SEQ)
def test_property_every_invoke_executes_exactly_once(ops):
    machine, expected, got = run_storm(ops)
    assert got == expected
    executed = (
        machine.stats["engine.tasks"] + machine.stats["invoke.inline_at_core"]
    )
    assert executed == len(ops)


@settings(max_examples=15, deadline=None)
@given(
    ops=INVOKE_SEQ,
    task_contexts=st.sampled_from([2, 4, 8]),
    buffer_entries=st.sampled_from([1, 2, 4]),
)
def test_property_backpressure_never_loses_work(ops, task_contexts, buffer_entries):
    _, expected, got = run_storm(
        ops, task_contexts=task_contexts, buffer_entries=buffer_entries
    )
    assert got == expected


@settings(max_examples=10, deadline=None)
@given(ops=INVOKE_SEQ)
def test_property_invoke_storms_deterministic(ops):
    first = run_storm(ops)
    second = run_storm(ops)
    assert first[2] == second[2]
    assert dict(first[0].stats.counters) == dict(second[0].stats.counters)


# ----------------------------------------------------------------------
# NACK/spill accounting under injected context exhaustion
# ----------------------------------------------------------------------
def run_exhausted_storm(ops, window, max_retries=None):
    """The invoke storm with an exhaustion window on every engine."""
    from repro.core.engine import NACK_BYTES
    from repro.sim.faults import ContextExhaustion, FaultPlan

    overrides = {"engine.task_contexts": 2}
    if max_retries is not None:
        overrides["core.invoke_max_retries"] = max_retries
        overrides["core.invoke_retry_delay"] = 20
    cfg = small_config(**overrides)
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    FaultPlan(
        [ContextExhaustion(t, 0.0, window) for t in range(4)], seed=1
    ).attach(machine)
    alloc = runtime.allocator_for(Tally, capacity=8)
    actors = [alloc.allocate() for _ in range(8)]

    per_tile = {t: [] for t in range(4)}
    expected = {i: 0 for i in range(8)}
    for tile, actor_index, loc_index, exclusive in ops:
        per_tile[tile].append((actor_index, loc_index, exclusive))
        expected[actor_index] += 1

    def invoker(jobs):
        for actor_index, loc_index, exclusive in jobs:
            yield Invoke(
                actors[actor_index],
                "hit",
                (1,),
                location=LOCATIONS[loc_index],
                exclusive=exclusive,
            )
            yield Compute(1)

    for tile, jobs in per_tile.items():
        if jobs:
            machine.spawn(invoker(jobs), tile=tile)
    machine.run()
    got = {i: machine.mem.get(actors[i].addr, 0) for i in range(8)}
    return machine, runtime, expected, got, NACK_BYTES


@settings(max_examples=15, deadline=None)
@given(ops=INVOKE_SEQ, window=st.sampled_from([50.0, 200.0, 800.0]))
def test_property_spill_bytes_account_every_retry(ops, window):
    """In a survivable run, ``invoke.spill_bytes == NACK_BYTES * retries``:

    every NACK bounces ``NACK_BYTES`` back to the invoker and triggers
    exactly one re-send, in both the legacy spill queue and the bounded
    retry shuttle (windows short enough for the backoff to outlast).
    """
    for max_retries in (None, 16):
        machine, _, expected, got, nack_bytes = run_exhausted_storm(
            ops, window, max_retries=max_retries
        )
        assert got == expected
        assert (
            machine.stats["invoke.spill_bytes"]
            == nack_bytes * machine.stats["invoke.retries"]
        )


@settings(max_examples=15, deadline=None)
@given(ops=INVOKE_SEQ, window=st.sampled_from([50.0, 400.0]))
def test_property_invoke_buffers_drain_to_zero(ops, window):
    """After the machine drains, no invoke-buffer slot is still in flight
    and no engine still holds busy or spill-queued tasks."""
    machine, runtime, expected, got, _ = run_exhausted_storm(ops, window)
    assert got == expected
    now = machine.now
    for buffer in runtime.invoke_buffers:
        outstanding = [s for s in buffer._acks if s[0] is None or s[0] > now]
        assert outstanding == []
    assert all(
        engine.busy_offload == 0 and engine.queued_tasks == 0
        for engine in runtime.engines
    )

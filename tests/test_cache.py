"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import CacheLine, SetAssocCache


def make_cache(sets=4, ways=2, policy="lru", shift=0):
    return SetAssocCache(sets, ways, policy=policy, name="t", index_shift=shift)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        cache.insert(0x100)
        assert cache.lookup(0x100) is not None

    def test_contains(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.contains(5)
        assert not cache.contains(6)

    def test_insert_existing_returns_none(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.insert(5) is None

    def test_insert_merges_flags(self):
        cache = make_cache()
        cache.insert(5, dirty=False, morph=False)
        cache.insert(5, dirty=True, morph=True)
        entry = cache.lookup(5)
        assert entry.dirty and entry.morph

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(5, dirty=True)
        entry = cache.invalidate(5)
        assert entry.dirty
        assert not cache.contains(5)

    def test_invalidate_missing_returns_none(self):
        assert make_cache().invalidate(5) is None

    def test_eviction_on_conflict(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(1)
        cache.insert(2)
        victim = cache.insert(3)
        assert victim is not None
        assert victim.line in (1, 2)

    def test_capacity(self):
        cache = make_cache(sets=4, ways=2)
        assert cache.capacity_lines == 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(3, 2)  # non-power-of-two sets
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)
        with pytest.raises(ValueError):
            SetAssocCache(4, 2, policy="mru")


class TestIndexShift:
    def test_shift_moves_set_bits(self):
        cache = make_cache(sets=4, shift=4)
        # Lines differing only in the low 4 bits map to the same set.
        assert cache.set_index(0x10) == cache.set_index(0x1F)
        assert cache.set_index(0x10) != cache.set_index(0x20)

    def test_banked_lines_spread_over_sets(self):
        # Lines of one bank (line % 16 == 3) must use all sets when the
        # shift skips the bank bits -- the regression behind the LLC
        # set-aliasing bug.
        cache = make_cache(sets=4, shift=4)
        bank_lines = [3 + 16 * i for i in range(8)]
        assert len({cache.set_index(l) for l in bank_lines}) == 4


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = make_cache(sets=1, ways=2, policy="lru")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # make 2 the LRU
        victim = cache.insert(3)
        assert victim.line == 2

    def test_touch_false_does_not_update(self):
        cache = make_cache(sets=1, ways=2, policy="lru")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1, touch=False)  # probe: 1 stays LRU
        victim = cache.insert(3)
        assert victim.line == 1


class TestRrip:
    def test_hit_protects_line(self):
        cache = make_cache(sets=1, ways=2, policy="rrip")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # rrpv -> 0
        victim = cache.insert(3)
        assert victim.line == 2

    def test_aging_finds_victim(self):
        cache = make_cache(sets=1, ways=2, policy="rrip")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)
        cache.lookup(2)
        # Both at rrpv 0: aging must still produce a victim.
        assert cache.insert(3) is not None


class TestBrrip:
    def test_scan_resistance(self):
        """A sparsely-reused line survives a scan under BRRIP, not SRRIP."""

        def run(policy):
            cache = make_cache(sets=1, ways=4, policy=policy)
            cache.insert(1000)
            survived = 0
            for i in range(128):
                cache.insert(i)
                if i % 8 == 0 and cache.contains(1000):
                    cache.lookup(1000)  # occasional reuse of the hot line
                if cache.contains(1000):
                    survived += 1
            return survived

        assert run("brrip") > run("rrip")

    def test_occasional_srrip_insertion(self):
        cache = make_cache(sets=1, ways=4, policy="brrip")
        rrpvs = set()
        for i in range(64):
            cache.insert(i)
            entry = cache.lookup(i, touch=False)
            if entry:
                rrpvs.add(entry.rrpv)
        assert SetAssocCache.RRIP_INSERT in rrpvs  # the 1/32 ramp-in path
        assert SetAssocCache.RRIP_MAX in rrpvs


class TestResidency:
    def test_resident_lines(self):
        cache = make_cache()
        for line in (1, 2, 3):
            cache.insert(line)
        assert sorted(cache.resident_lines()) == [1, 2, 3]

    def test_resident_in_range(self):
        cache = make_cache()
        for line in (1, 5, 9):
            cache.insert(line)
        assert sorted(cache.resident_in(2, 9)) == [5]


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=200),
    sets=st.sampled_from([1, 2, 4, 8]),
    ways=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(["lru", "rrip", "brrip"]),
)
def test_property_capacity_never_exceeded(lines, sets, ways, policy):
    cache = SetAssocCache(sets, ways, policy=policy)
    for line in lines:
        cache.insert(line)
        for cache_set in cache._sets:
            assert len(cache_set) <= ways


@settings(max_examples=60, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=200),
    policy=st.sampled_from(["lru", "rrip", "brrip"]),
)
def test_property_insert_makes_resident(lines, policy):
    cache = SetAssocCache(4, 4, policy=policy)
    for line in lines:
        cache.insert(line)
        assert cache.contains(line)


@settings(max_examples=60, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60))
def test_property_eviction_conservation(lines):
    """Inserted lines are either resident or were returned as victims."""
    cache = SetAssocCache(2, 2, policy="lru")
    evicted = []
    inserted = set()
    for line in lines:
        inserted.add(line)
        victim = cache.insert(line)
        if victim is not None:
            evicted.append(victim.line)
    resident = set(cache.resident_lines())
    assert resident <= inserted
    # No line is simultaneously resident twice (dict invariants).
    assert len(list(cache.resident_lines())) == len(resident)


@settings(max_examples=40, deadline=None)
@given(
    shift=st.integers(min_value=0, max_value=6),
    line=st.integers(min_value=0, max_value=1 << 20),
)
def test_property_set_index_in_range(shift, line):
    cache = SetAssocCache(8, 2, index_shift=shift)
    assert 0 <= cache.set_index(line) < 8


def test_cache_line_repr_flags():
    line = CacheLine(0x40)
    line.dirty = True
    assert "D" in repr(line)
    line.morph = True
    assert "M" in repr(line)


class TestPerSetLruTicks:
    """LRU replacement state is scoped per set (regression tests).

    The tick was once a single cache-global counter; replacement only
    ever compares lines within one set, so the clocks are per-set.
    These tests pin the ordering contract, in particular under
    ``index_shift`` aliasing, where distinct line numbers collapse onto
    the same set and heavy traffic to *other* sets interleaves with the
    set under test.
    """

    def test_lru_order_within_aliased_set(self):
        # shift=2 on 4 sets: lines 0..3 and 16..19 both map to set 0.
        cache = make_cache(sets=4, ways=2, shift=2)
        assert cache.set_index(0) == cache.set_index(16) == 0
        cache.insert(0)
        cache.insert(16)  # set 0 now full: [0, 16]
        cache.lookup(0)  # 0 is now most-recently used
        victim = cache.insert(32)  # third alias of set 0
        assert victim is not None and victim.line == 16

    def test_foreign_set_traffic_does_not_perturb_lru(self):
        cache = make_cache(sets=4, ways=2, shift=2)
        cache.insert(0)
        cache.insert(16)
        cache.lookup(0)
        # Hammer every other set; none of this may reorder set 0.
        for round_ in range(50):
            for set_idx in (1, 2, 3):
                cache.insert((set_idx << 2) + (round_ % 4) * 16)
                cache.lookup((set_idx << 2))
        victim = cache.insert(32)
        assert victim.line == 16

    def test_untouched_probe_does_not_promote(self):
        cache = make_cache(sets=4, ways=2, shift=2)
        cache.insert(0)
        cache.insert(16)
        cache.lookup(0)
        cache.lookup(16, touch=False)  # probe: must not promote 16
        victim = cache.insert(32)
        assert victim.line == 16

    def test_reinsert_counts_as_touch(self):
        cache = make_cache(sets=4, ways=2, shift=2)
        cache.insert(0)
        cache.insert(16)
        cache.insert(0)  # re-insert: flag merge, but also an LRU touch
        victim = cache.insert(32)
        assert victim.line == 16

    def test_ticks_are_per_set(self):
        cache = make_cache(sets=4, ways=2, shift=2)
        cache.insert(0)  # set 0
        cache.insert(4)  # set 1
        cache.insert(4)
        cache.insert(4)
        assert cache._ticks[0] == 1
        assert cache._ticks[1] == 3
        assert cache._ticks[2] == 0

    @settings(max_examples=60, deadline=None)
    @given(
        shift=st.integers(min_value=0, max_value=4),
        touches=st.lists(st.integers(min_value=0, max_value=7), min_size=2, max_size=40),
    )
    def test_property_victim_is_least_recently_touched(self, shift, touches):
        """With aliasing, the victim is always the set's true LRU line."""
        ways = 4
        cache = make_cache(sets=2, ways=ways, shift=shift)
        # Lines that all alias onto set 0 regardless of shift.
        aliases = [i << (shift + 1) for i in range(8)]
        last_touch = {}
        clock = 0
        for i in touches:
            line = aliases[i]
            clock += 1
            if cache.contains(line):
                cache.lookup(line)
                last_touch[line] = clock
            else:
                victim = cache.insert(line)
                last_touch[line] = clock
                if victim is not None:
                    # The victim must be the least-recently-touched of
                    # the lines resident before this insert.
                    resident_before = set(last_touch) - {line}
                    assert victim.line == min(
                        resident_before, key=lambda l: last_touch[l]
                    )
                    del last_touch[victim.line]

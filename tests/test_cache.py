"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import CacheLine, SetAssocCache


def make_cache(sets=4, ways=2, policy="lru", shift=0):
    return SetAssocCache(sets, ways, policy=policy, name="t", index_shift=shift)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        cache.insert(0x100)
        assert cache.lookup(0x100) is not None

    def test_contains(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.contains(5)
        assert not cache.contains(6)

    def test_insert_existing_returns_none(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.insert(5) is None

    def test_insert_merges_flags(self):
        cache = make_cache()
        cache.insert(5, dirty=False, morph=False)
        cache.insert(5, dirty=True, morph=True)
        entry = cache.lookup(5)
        assert entry.dirty and entry.morph

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(5, dirty=True)
        entry = cache.invalidate(5)
        assert entry.dirty
        assert not cache.contains(5)

    def test_invalidate_missing_returns_none(self):
        assert make_cache().invalidate(5) is None

    def test_eviction_on_conflict(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(1)
        cache.insert(2)
        victim = cache.insert(3)
        assert victim is not None
        assert victim.line in (1, 2)

    def test_capacity(self):
        cache = make_cache(sets=4, ways=2)
        assert cache.capacity_lines == 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(3, 2)  # non-power-of-two sets
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)
        with pytest.raises(ValueError):
            SetAssocCache(4, 2, policy="mru")


class TestIndexShift:
    def test_shift_moves_set_bits(self):
        cache = make_cache(sets=4, shift=4)
        # Lines differing only in the low 4 bits map to the same set.
        assert cache.set_index(0x10) == cache.set_index(0x1F)
        assert cache.set_index(0x10) != cache.set_index(0x20)

    def test_banked_lines_spread_over_sets(self):
        # Lines of one bank (line % 16 == 3) must use all sets when the
        # shift skips the bank bits -- the regression behind the LLC
        # set-aliasing bug.
        cache = make_cache(sets=4, shift=4)
        bank_lines = [3 + 16 * i for i in range(8)]
        assert len({cache.set_index(l) for l in bank_lines}) == 4


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = make_cache(sets=1, ways=2, policy="lru")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # make 2 the LRU
        victim = cache.insert(3)
        assert victim.line == 2

    def test_touch_false_does_not_update(self):
        cache = make_cache(sets=1, ways=2, policy="lru")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1, touch=False)  # probe: 1 stays LRU
        victim = cache.insert(3)
        assert victim.line == 1


class TestRrip:
    def test_hit_protects_line(self):
        cache = make_cache(sets=1, ways=2, policy="rrip")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # rrpv -> 0
        victim = cache.insert(3)
        assert victim.line == 2

    def test_aging_finds_victim(self):
        cache = make_cache(sets=1, ways=2, policy="rrip")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)
        cache.lookup(2)
        # Both at rrpv 0: aging must still produce a victim.
        assert cache.insert(3) is not None


class TestBrrip:
    def test_scan_resistance(self):
        """A sparsely-reused line survives a scan under BRRIP, not SRRIP."""

        def run(policy):
            cache = make_cache(sets=1, ways=4, policy=policy)
            cache.insert(1000)
            survived = 0
            for i in range(128):
                cache.insert(i)
                if i % 8 == 0 and cache.contains(1000):
                    cache.lookup(1000)  # occasional reuse of the hot line
                if cache.contains(1000):
                    survived += 1
            return survived

        assert run("brrip") > run("rrip")

    def test_occasional_srrip_insertion(self):
        cache = make_cache(sets=1, ways=4, policy="brrip")
        rrpvs = set()
        for i in range(64):
            cache.insert(i)
            entry = cache.lookup(i, touch=False)
            if entry:
                rrpvs.add(entry.rrpv)
        assert SetAssocCache.RRIP_INSERT in rrpvs  # the 1/32 ramp-in path
        assert SetAssocCache.RRIP_MAX in rrpvs


class TestResidency:
    def test_resident_lines(self):
        cache = make_cache()
        for line in (1, 2, 3):
            cache.insert(line)
        assert sorted(cache.resident_lines()) == [1, 2, 3]

    def test_resident_in_range(self):
        cache = make_cache()
        for line in (1, 5, 9):
            cache.insert(line)
        assert sorted(cache.resident_in(2, 9)) == [5]


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=200),
    sets=st.sampled_from([1, 2, 4, 8]),
    ways=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(["lru", "rrip", "brrip"]),
)
def test_property_capacity_never_exceeded(lines, sets, ways, policy):
    cache = SetAssocCache(sets, ways, policy=policy)
    for line in lines:
        cache.insert(line)
        for cache_set in cache._sets:
            assert len(cache_set) <= ways


@settings(max_examples=60, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=200),
    policy=st.sampled_from(["lru", "rrip", "brrip"]),
)
def test_property_insert_makes_resident(lines, policy):
    cache = SetAssocCache(4, 4, policy=policy)
    for line in lines:
        cache.insert(line)
        assert cache.contains(line)


@settings(max_examples=60, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60))
def test_property_eviction_conservation(lines):
    """Inserted lines are either resident or were returned as victims."""
    cache = SetAssocCache(2, 2, policy="lru")
    evicted = []
    inserted = set()
    for line in lines:
        inserted.add(line)
        victim = cache.insert(line)
        if victim is not None:
            evicted.append(victim.line)
    resident = set(cache.resident_lines())
    assert resident <= inserted
    # No line is simultaneously resident twice (dict invariants).
    assert len(list(cache.resident_lines())) == len(resident)


@settings(max_examples=40, deadline=None)
@given(
    shift=st.integers(min_value=0, max_value=6),
    line=st.integers(min_value=0, max_value=1 << 20),
)
def test_property_set_index_in_range(shift, line):
    cache = SetAssocCache(8, 2, index_shift=shift)
    assert 0 <= cache.set_index(line) < 8


def test_cache_line_repr_flags():
    line = CacheLine(0x40)
    line.dirty = True
    assert "D" in repr(line)
    line.morph = True
    assert "M" in repr(line)

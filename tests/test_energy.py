"""Unit tests for the event-count energy model."""

import pytest

from repro.sim.energy import EnergyModel, EnergyParams
from repro.sim.stats import Stats


class TestEnergyModel:
    def test_empty_stats_zero_energy(self):
        assert EnergyModel().energy_pj(Stats()) == 0.0

    def test_weighted_sum(self):
        stats = Stats()
        stats.add("l1.accesses", 10)
        stats.add("dram.accesses", 2)
        params = EnergyParams()
        expected = 10 * params.l1_access + 2 * params.dram_access
        assert EnergyModel(params).energy_pj(stats) == pytest.approx(expected)

    def test_relative_costs_ordered(self):
        """DRAM >> LLC > L2 > L1; engine ops cheaper than core ops."""
        p = EnergyParams()
        assert p.dram_access > p.llc_access > p.l2_access > p.l1_access
        assert p.engine_instruction < p.core_instruction

    def test_ideal_engine_is_energy_free(self):
        stats = Stats()
        stats.add("engine.instructions", 1000)
        stats.add("engine_l1.accesses", 100)
        stats.add("l1.accesses", 1)
        ideal = EnergyModel(ideal_engine=True)
        real = EnergyModel(ideal_engine=False)
        assert ideal.energy_pj(stats) < real.energy_pj(stats)
        assert ideal.energy_pj(stats) == pytest.approx(EnergyParams().l1_access)

    def test_breakdown_sums_to_total(self):
        stats = Stats()
        stats.add("l1.accesses", 3)
        stats.add("noc.flit_hops", 5)
        stats.add("core.instructions", 7)
        model = EnergyModel()
        assert sum(model.breakdown_pj(stats).values()) == pytest.approx(
            model.energy_pj(stats)
        )

    def test_breakdown_omits_zero_components(self):
        stats = Stats()
        stats.add("l1.accesses", 3)
        breakdown = EnergyModel().breakdown_pj(stats)
        assert list(breakdown) == ["l1.accesses"]

    def test_uncounted_events_ignored(self):
        stats = Stats()
        stats.add("bogus.counter", 99)
        assert EnergyModel().energy_pj(stats) == 0.0


class TestMachineEnergy:
    def test_machine_energy_increases_with_work(self, machine):
        from repro.sim.ops import Compute, Load

        def prog():
            for i in range(10):
                yield Load(0x10000 + i * 64, 8)
                yield Compute(5)

        before = machine.energy_pj()
        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.energy_pj() > before

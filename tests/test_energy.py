"""Unit tests for the event-count energy model."""

import pytest

from repro.sim.energy import EnergyMeter, EnergyModel, EnergyParams
from repro.sim.stats import Stats


class TestEnergyModel:
    def test_empty_stats_zero_energy(self):
        assert EnergyModel().energy_pj(Stats()) == 0.0

    def test_weighted_sum(self):
        stats = Stats()
        stats.add("l1.accesses", 10)
        stats.add("dram.accesses", 2)
        params = EnergyParams()
        expected = 10 * params.l1_access + 2 * params.dram_access
        assert EnergyModel(params).energy_pj(stats) == pytest.approx(expected)

    def test_relative_costs_ordered(self):
        """DRAM >> LLC > L2 > L1; engine ops cheaper than core ops."""
        p = EnergyParams()
        assert p.dram_access > p.llc_access > p.l2_access > p.l1_access
        assert p.engine_instruction < p.core_instruction

    def test_ideal_engine_is_energy_free(self):
        stats = Stats()
        stats.add("engine.instructions", 1000)
        stats.add("engine_l1.accesses", 100)
        stats.add("l1.accesses", 1)
        ideal = EnergyModel(ideal_engine=True)
        real = EnergyModel(ideal_engine=False)
        assert ideal.energy_pj(stats) < real.energy_pj(stats)
        assert ideal.energy_pj(stats) == pytest.approx(EnergyParams().l1_access)

    def test_breakdown_sums_to_total(self):
        stats = Stats()
        stats.add("l1.accesses", 3)
        stats.add("noc.flit_hops", 5)
        stats.add("core.instructions", 7)
        model = EnergyModel()
        assert sum(model.breakdown_pj(stats).values()) == pytest.approx(
            model.energy_pj(stats)
        )

    def test_breakdown_omits_zero_components(self):
        stats = Stats()
        stats.add("l1.accesses", 3)
        breakdown = EnergyModel().breakdown_pj(stats)
        assert list(breakdown) == ["l1.accesses"]

    def test_uncounted_events_ignored(self):
        stats = Stats()
        stats.add("bogus.counter", 99)
        assert EnergyModel().energy_pj(stats) == 0.0


class TestMachineEnergy:
    def test_machine_energy_increases_with_work(self, machine):
        from repro.sim.ops import Compute, Load

        def prog():
            for i in range(10):
                yield Load(0x10000 + i * 64, 8)
                yield Compute(5)

        before = machine.energy_pj()
        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.energy_pj() > before


class TestEnergyMeter:
    def _run(self, machine):
        from repro.sim.ops import Load, Store

        def prog():
            for i in range(20):
                yield Load(0x10000 + i * 64, 8)
            for i in range(10):
                yield Store(0x10000 + i * 64, 8)

        machine.spawn(prog(), tile=0)
        machine.run()

    def test_live_terms_match_counter_model(self, machine):
        """The meter's per-event accumulation must equal the post-hoc
        counter model for every memory-side term."""
        meter = EnergyMeter(machine)
        self._run(machine)
        p = meter.params
        stats = machine.stats
        expected = {
            "l1": stats["l1.accesses"] * p.l1_access,
            "l2": stats["l2.accesses"] * p.l2_access,
            "llc": stats["llc.accesses"] * p.llc_access,
            "mc_cache": stats["mc_cache.accesses"] * p.mc_cache_access,
            "dram": stats["dram.accesses"] * p.dram_access,
            "noc": stats["noc.flit_hops"] * p.noc_flit_hop,
        }
        for term, pj in expected.items():
            if pj:
                assert meter.terms[term] == pytest.approx(pj), term
        assert meter.total_pj == pytest.approx(sum(meter.terms.values()))

    def test_reset_and_detach(self, machine):
        meter = EnergyMeter(machine)
        self._run(machine)
        assert meter.total_pj > 0
        meter.reset()
        assert meter.total_pj == 0 and meter.terms == {}
        meter.detach()
        machine.hierarchy.access(0, 0x90000, 8, is_write=False)
        assert meter.total_pj == 0
        assert not machine.events.active

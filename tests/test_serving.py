"""The serving zoo: functional oracles, determinism, replay, chaos, docs.

Covers the contract ``docs/workloads.md`` promises for every zoo
workload:

- functional correctness (oracles are checked inside the runs; a wrong
  answer raises) and baseline/leviathan output equality;
- bit-identical reruns, and ``jobs=1`` vs ``jobs=4`` pool parity
  through the content-addressed cache;
- trace replay: JSONL round-trip through a file, validation errors,
  and bit-identical replay of a synthesized trace — including the
  worked example embedded in ``docs/workloads.md``;
- chaos: survivable fault plans change timing, never outputs;
- request-class latency percentiles present and ordered;
- every zoo module carries a module docstring (the public-API
  documentation pass is enforced, not aspirational).
"""

import importlib
import json
import pkgutil
import re
from pathlib import Path

import pytest

from repro.experiments import serving as serving_experiments
from repro.experiments.pool import ExperimentPool, RunSpec, canonical_json, encode_result
from repro.sim.faults import FaultSession
from repro.workloads.serving import kvpaging, kvserve, nearstorage, tracereplay

DOCS = Path(__file__).resolve().parent.parent / "docs" / "workloads.md"

#: Small-but-representative params: every request kind and request
#: class still occurs, runs stay sub-second.
KV_SMALL = dict(
    n_clients=2,
    requests_per_client=8,
    n_keys=64,
    mean_gap=30,
    scan_len=4,
    stream_buffer=16,
    seed=5,
)
PAGING_SMALL = dict(
    n_pages=64,
    resident_pages=16,
    n_workers=2,
    decode_steps=24,
    steps_per_invoke=8,
    reuse_distance=32,
    seed=3,
)
STORAGE_SMALL = dict(n_rows=256, n_scanners=2, seed=7)


def _encoded(result):
    return canonical_json(encode_result(result))


# ----------------------------------------------------------------------
# functional correctness + variant equality
# ----------------------------------------------------------------------
class TestFunctional:
    def test_kvserve_variants_agree(self):
        base = kvserve.run_baseline(KV_SMALL, n_tiles=4)
        lev = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        assert base.output == lev.output
        assert base.cycles > 0 and lev.cycles > 0

    def test_kvpaging_variants_agree(self):
        base = kvpaging.run_baseline(PAGING_SMALL, n_tiles=4)
        lev = kvpaging.run_leviathan(PAGING_SMALL, n_tiles=4)
        assert base.output == lev.output
        assert base.output == kvpaging.expected_output(kvpaging._params(PAGING_SMALL))

    def test_nearstorage_variants_agree(self):
        base = nearstorage.run_baseline(STORAGE_SMALL, n_tiles=4)
        lev = nearstorage.run_leviathan(STORAGE_SMALL, n_tiles=4)
        assert base.output == lev.output
        assert lev.cycles < base.cycles  # pushdown wins even scaled down

    def test_kvserve_percentiles_present_and_ordered(self):
        lev = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        for cls in ("get", "put", "scan"):
            count = lev.stat(f"request.{cls}.count")
            assert count > 0, cls
            p50 = lev.stat(f"request.{cls}.p50")
            p95 = lev.stat(f"request.{cls}.p95")
            p99 = lev.stat(f"request.{cls}.p99")
            assert 0 < p50 <= p95 <= p99, cls

    def test_baseline_carries_no_request_stats(self):
        base = kvserve.run_baseline(KV_SMALL, n_tiles=4)
        assert not any(k.startswith("request.") for k in base.stats)


# ----------------------------------------------------------------------
# determinism: reruns and pool-worker parity
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize(
        "run,params,kwargs",
        [
            (kvserve.run_leviathan, KV_SMALL, {"n_tiles": 4}),
            (kvpaging.run_leviathan, PAGING_SMALL, {"n_tiles": 4}),
            (nearstorage.run_leviathan, STORAGE_SMALL, {"n_tiles": 4}),
        ],
        ids=["kvserve", "kvpaging", "nearstorage"],
    )
    def test_reruns_bit_identical(self, run, params, kwargs):
        assert _encoded(run(params, **kwargs)) == _encoded(run(params, **kwargs))

    def test_jobs1_vs_jobs4_bit_identical(self, tmp_path):
        specs = [
            RunSpec(
                "repro.workloads.serving.kvserve:run_leviathan",
                {"params": KV_SMALL, "n_tiles": 4},
                "zoo/kv",
            ),
            RunSpec(
                "repro.workloads.serving.kvpaging:run_leviathan",
                {"params": PAGING_SMALL, "n_tiles": 4},
                "zoo/paging",
            ),
            RunSpec(
                "repro.workloads.serving.nearstorage:run_leviathan",
                {"params": STORAGE_SMALL, "n_tiles": 4},
                "zoo/scan",
            ),
            RunSpec(
                "repro.workloads.serving.tracereplay:run_replay",
                {
                    "trace": tracereplay.synthesize_trace(KV_SMALL),
                    "params": KV_SMALL,
                    "n_tiles": 4,
                },
                "zoo/replay",
            ),
        ]
        inline = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "c1"))
        parallel = ExperimentPool(jobs=4, cache_dir=str(tmp_path / "c4"))
        one = [_encoded(r) for r in inline.run_results(specs)]
        four = [_encoded(r) for r in parallel.run_results(specs)]
        assert one == four


# ----------------------------------------------------------------------
# trace replay
# ----------------------------------------------------------------------
class TestTraceReplay:
    def test_synthesized_trace_replays_bit_identically(self):
        direct = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        trace = tracereplay.synthesize_trace(KV_SMALL)
        replay = tracereplay.run_replay(trace=trace, params=KV_SMALL, n_tiles=4)
        assert replay.cycles == direct.cycles
        assert replay.output == direct.output
        assert {k: v for k, v in replay.stats.items() if k.startswith("request.")} == {
            k: v for k, v in direct.stats.items() if k.startswith("request.")
        }

    def test_file_round_trip(self, tmp_path):
        trace = tracereplay.synthesize_trace(KV_SMALL)
        path = tracereplay.write_trace(trace, str(tmp_path / "trace.jsonl"))
        assert tracereplay.load_trace(path) == trace
        from_file = tracereplay.run_replay(trace_path=path, params=KV_SMALL, n_tiles=4)
        inline = tracereplay.run_replay(trace=trace, params=KV_SMALL, n_tiles=4)
        assert _encoded(from_file) == _encoded(inline)

    def test_trace_arrival_times_strictly_increase_per_client(self):
        trace = tracereplay.synthesize_trace(KV_SMALL)
        last = {}
        for record in trace:
            client = record["client"]
            assert record["t"] > last.get(client, -1)
            last[client] = record["t"]

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"t": 1, "client": 0, "op": "get"}',  # missing key
            '{"t": -1, "client": 0, "op": "get", "key": 2}',  # negative t
            '{"t": 1, "client": true, "op": "get", "key": 2}',  # bool client
            '{"t": 1, "client": 0, "op": "delete", "key": 2}',  # unknown op
            '{"t": 1.5, "client": 0, "op": "get", "key": 2}',  # float t
            '["t", 1]',  # not an object
        ],
    )
    def test_invalid_lines_rejected_with_location(self, tmp_path, line):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1, "client": 0, "op": "get", "key": 2}\n' + line + "\n")
        with pytest.raises(ValueError, match=re.escape(f"{path}:2")):
            tracereplay.load_trace(str(path))

    def test_exactly_one_trace_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            tracereplay.run_replay()
        with pytest.raises(ValueError, match="exactly one"):
            tracereplay.run_replay(trace=[], trace_path="x.jsonl")

    def test_gap_client_ids_get_empty_schedules(self):
        trace = [{"t": 10, "client": 2, "op": "get", "key": 1}]
        schedules = tracereplay.schedules_from_trace(trace)
        assert len(schedules) == 3
        assert schedules[0] == [] and schedules[1] == []
        assert schedules[2][0]["key"] == 1

    def test_docs_worked_example_replays(self):
        """The ```jsonl block in docs/workloads.md is executable truth."""
        text = DOCS.read_text()
        match = re.search(r"```jsonl\n(.*?)```", text, re.DOTALL)
        assert match, "docs/workloads.md lost its ```jsonl worked example"
        records = [json.loads(line) for line in match.group(1).strip().splitlines()]
        validated = [tracereplay._validate(r, f"docs[{i}]") for i, r in enumerate(records)]
        assert validated == records
        result = tracereplay.run_replay(
            trace=records, params={"n_keys": 64, "scan_len": 4}, n_tiles=4
        )
        assert result.functional and result.cycles > 0
        assert result.stat("request.get.count") == 3
        assert result.stat("request.put.count") == 1
        assert result.stat("request.scan.count") == 8  # 2 scans x scan_len 4


# ----------------------------------------------------------------------
# chaos: survivable fault plans never change outputs
# ----------------------------------------------------------------------
class TestChaos:
    PLANS = [
        "noc-delay:0.3@10; seed:3",
        "stall:1@50+200; seed:5",
        "crash:2; seed:6",
        "noc-delay:0.2@15; dram-err:0-1048576@0.03@80; stall:2@40+150; seed:9",
    ]

    @pytest.mark.parametrize("spec", PLANS)
    def test_kvserve_survives(self, spec):
        clean = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        with FaultSession(spec):
            chaos = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        assert chaos.output == clean.output
        assert chaos.functional

    def test_chaos_replays_deterministically(self):
        spec = self.PLANS[-1]
        with FaultSession(spec):
            first = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        with FaultSession(spec):
            second = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
        assert _encoded(first) == _encoded(second)

    def test_kvpaging_survives_noc_delay(self):
        clean = kvpaging.run_leviathan(PAGING_SMALL, n_tiles=4)
        with FaultSession("noc-delay:0.2@12; seed:11"):
            chaos = kvpaging.run_leviathan(PAGING_SMALL, n_tiles=4)
        assert chaos.output == clean.output


# ----------------------------------------------------------------------
# experiments: registered studies pass their expectations
# ----------------------------------------------------------------------
class TestExperiments:
    @pytest.mark.parametrize(
        "runner",
        [
            serving_experiments.run_serve_kv,
            serving_experiments.run_serve_paging,
            serving_experiments.run_serve_scan,
            serving_experiments.run_serve_replay,
        ],
        ids=["serve-kv", "serve-paging", "serve-scan", "serve-replay"],
    )
    def test_experiment_passes(self, runner, tmp_path):
        pool = ExperimentPool(jobs=1, cache_dir=str(tmp_path / "cache"))
        exp = runner(pool=pool)
        exp.check()  # raises listing any failed expectation

    def test_registered_in_cli(self):
        from repro.experiments.cli import _EXPERIMENTS

        for name in ("serve-kv", "serve-paging", "serve-scan", "serve-replay"):
            assert name in _EXPERIMENTS


# ----------------------------------------------------------------------
# documentation is enforced
# ----------------------------------------------------------------------
class TestDocs:
    def test_every_zoo_module_has_a_docstring(self):
        import repro.workloads.serving as pkg

        modules = ["repro.workloads.serving", "repro.sim.telemetry.requests",
                   "repro.workloads.distributions", "repro.experiments.serving"]
        modules += [
            f"repro.workloads.serving.{m.name}"
            for m in pkgutil.iter_modules(pkg.__path__)
        ]
        for name in modules:
            doc = importlib.import_module(name).__doc__
            assert doc and len(doc.strip()) > 80, f"{name} lacks a real docstring"

    def test_zoo_public_functions_documented(self):
        for module, names in [
            (kvserve, ["run_baseline", "run_leviathan", "build_schedule"]),
            (kvpaging, ["run_baseline", "run_leviathan", "access_sequences"]),
            (nearstorage, ["run_baseline", "run_leviathan", "make_table"]),
            (tracereplay, ["run_replay", "load_trace", "write_trace", "synthesize_trace"]),
        ]:
            for name in names:
                assert getattr(module, name).__doc__, f"{module.__name__}.{name}"

    def test_cookbook_exists_and_catalogs_the_zoo(self):
        text = DOCS.read_text()
        for anchor in ("kvserve", "kvpaging", "nearstorage", "tracereplay",
                       "DEFAULT_PARAMS", "serve-kv", "p50/p95/p99"):
            assert anchor in text, anchor

"""Per-level outcome assertions for the access-path pipeline.

Each test drives the hierarchy into a known state and asserts the exact
``AccessResult.outcomes`` trail -- the request plumbing the experiments
use for per-level attribution.
"""

from repro.sim.hierarchy import ConstructResult, HierarchyHooks
from repro.sim.stats import AccessProfile

ADDR = 0x2_0000


def _access(machine, tile=0, addr=ADDR, size=8, write=False, engine=False):
    return machine.hierarchy.access(tile, addr, size, is_write=write, engine=engine)


class TestCorePath:
    def test_cold_miss_walks_to_dram(self, machine):
        result = _access(machine)
        assert result.outcomes == [
            ("l1", "miss"),
            ("l2", "miss"),
            ("llc", "miss"),
            ("dram", "fill"),
        ]
        assert result.served_by == ("dram", "fill")

    def test_l1_hit(self, machine):
        _access(machine)
        result = _access(machine)
        assert result.outcomes == [("l1", "hit")]
        assert result.latency <= machine.config.l1.hit_latency + 1

    def test_l2_hit_after_l1_invalidation(self, machine):
        _access(machine)
        machine.hierarchy.l1[0].invalidate(ADDR // 64)
        result = _access(machine)
        assert result.outcomes == [("l1", "miss"), ("l2", "hit")]

    def test_llc_hit_from_other_tile(self, machine):
        _access(machine, tile=0)
        result = _access(machine, tile=1)
        assert result.outcomes == [("l1", "miss"), ("l2", "miss"), ("llc", "hit")]

    def test_latency_orders_with_depth(self, machine):
        dram = _access(machine).latency
        machine.hierarchy.l1[0].invalidate(ADDR // 64)
        l2 = _access(machine).latency
        l1 = _access(machine).latency
        llc = _access(machine, tile=1).latency
        assert l1 < l2 < llc < dram

    def test_multi_line_concatenates_outcomes(self):
        from repro.sim.config import small_config
        from repro.sim.system import Machine

        machine = Machine(small_config(l2_prefetcher=False))
        result = _access(machine, addr=ADDR, size=256)
        assert result.count("dram", "fill") == 4
        assert result.count("l1", "miss") == 4
        assert len(result.outcomes) == 16
        # Lines overlap: the latency is the slowest line, not the sum.
        single = _access(machine, addr=ADDR + 0x10000).latency
        assert result.latency < 4 * single

    def test_outcome_counts_view(self, machine):
        result = _access(machine, addr=ADDR, size=128)
        counts = result.outcome_counts()
        assert counts[("llc", "miss")] == 2
        assert result.count("llc") == 2


class TestEnginePath:
    def test_engine_cold_miss(self, machine):
        result = _access(machine, engine=True)
        assert result.outcomes == [
            ("engine_l1", "miss"),
            ("l2", "snoop_miss"),
            ("llc", "miss"),
            ("dram", "fill"),
        ]

    def test_engine_l1_hit(self, machine):
        _access(machine, engine=True)
        result = _access(machine, engine=True)
        assert result.outcomes == [("engine_l1", "hit")]

    def test_engine_snoops_core_l2(self, machine):
        _access(machine)  # the core fills its L1 + L2
        result = _access(machine, engine=True)
        assert result.outcomes == [("engine_l1", "miss"), ("l2", "snoop_hit")]


class _L2Morph(HierarchyHooks):
    def __init__(self, base_line, bound_line):
        self.base_line = base_line
        self.bound_line = bound_line

    def _covers(self, line):
        return self.base_line <= line < self.bound_line

    def morph_level(self, line):
        return "l2" if self._covers(line) else None

    def on_miss(self, level, tile, line):
        if level == "l2" and self._covers(line):
            return ConstructResult(latency=5, lines=[line])
        return None


class TestMorphPath:
    def test_construct_terminates_the_walk(self, machine):
        base_line = ADDR // 64
        machine.hierarchy.hooks = _L2Morph(base_line, base_line + 8)
        result = _access(machine)
        assert result.outcomes == [
            ("l1", "miss"),
            ("l2", "miss"),
            ("l2", "construct"),
        ]
        assert machine.stats["dram.accesses"] == 0


class TestAccessProfile:
    def test_profile_accumulates_breakdown(self, machine):
        profile = AccessProfile(machine)
        _access(machine)  # dram fill
        _access(machine)  # l1 hit
        _access(machine, tile=1)  # llc hit
        assert profile.requests == 3
        assert profile.count("l1", "hit") == 1
        assert profile.count("dram", "fill") == 1
        assert profile.served_by[("llc", "hit")] == 1
        assert profile.by_tile == {0: 2, 1: 1}
        assert profile.hit_rate("l1") == 1 / 3
        assert profile.mean_latency("l1") <= machine.config.l1.hit_latency + 1
        assert "requests" in profile.summary()

    def test_detach_stops_accumulation(self, machine):
        profile = AccessProfile(machine)
        _access(machine)
        profile.detach()
        _access(machine)
        assert profile.requests == 1
        assert not machine.events.active

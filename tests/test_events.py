"""Unit tests for the event bus: registration, dispatch, and the
zero-subscriber fast path."""

import pytest

from repro.sim import events
from repro.sim.events import (
    CacheAccess,
    DramAccess,
    EventBus,
    Eviction,
    FlitHop,
    MemoryAccess,
)
from repro.sim.ops import Load, Store
from tests.conftest import run_program


class TestRegistration:
    def test_starts_inactive(self):
        bus = EventBus()
        assert not bus.active
        assert bus.subscriber_count() == 0

    def test_subscribe_activates(self):
        bus = EventBus()
        bus.subscribe(CacheAccess, lambda e: None)
        assert bus.active
        assert bus.wants(CacheAccess)
        assert not bus.wants(Eviction)
        assert bus.subscriber_count(CacheAccess) == 1

    def test_unsubscribe_deactivates(self):
        bus = EventBus()
        handler = bus.subscribe(CacheAccess, lambda e: None)
        bus.unsubscribe(CacheAccess, handler)
        assert not bus.active
        assert bus.subscriber_count() == 0

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        handler = lambda e: None  # noqa: E731
        bus.subscribe(CacheAccess, handler)
        bus.unsubscribe(CacheAccess, handler)
        bus.unsubscribe(CacheAccess, handler)  # second detach: no-op
        assert not bus.active

    def test_unsubscribe_of_unknown_handler_is_noop(self):
        bus = EventBus()
        bus.subscribe(CacheAccess, lambda e: None)
        bus.unsubscribe(CacheAccess, lambda e: None)  # different handler
        assert bus.subscriber_count(CacheAccess) == 1

    def test_bound_methods_unsubscribe(self):
        """Bound methods are fresh objects per attribute access; the bus
        must compare by equality or detach would silently fail."""

        class Sub:
            def __init__(self):
                self.seen = 0

            def on_event(self, event):
                self.seen += 1

        bus = EventBus()
        sub = Sub()
        bus.subscribe(CacheAccess, sub.on_event)
        assert sub.on_event is not sub.on_event  # the trap
        bus.unsubscribe(CacheAccess, sub.on_event)
        assert not bus.active

    def test_remaining_subscribers_keep_bus_active(self):
        bus = EventBus()
        keep = bus.subscribe(CacheAccess, lambda e: None)
        drop = bus.subscribe(Eviction, lambda e: None)
        bus.unsubscribe(Eviction, drop)
        assert bus.active
        assert bus.wants(CacheAccess)
        bus.unsubscribe(CacheAccess, keep)
        assert not bus.active

    def test_active_recomputed_across_all_types(self):
        """Removing the last handler of one type must consult every
        *other* type before dropping the guard — and removing the truly
        last handler must drop it no matter which type it was under or
        in which order the others detached."""
        bus = EventBus()
        handlers = {
            event_type: bus.subscribe(event_type, lambda e: None)
            for event_type in (CacheAccess, Eviction, FlitHop, DramAccess)
        }
        for i, (event_type, handler) in enumerate(list(handlers.items())):
            assert bus.active  # still someone left before this removal
            bus.unsubscribe(event_type, handler)
            remaining = len(handlers) - 1 - i
            assert bus.active == (remaining > 0)
            assert bus.subscriber_count() == remaining
        assert not bus.active
        # Re-attaching after full drain re-arms the guard.
        bus.subscribe(MemoryAccess, lambda e: None)
        assert bus.active


class TestDispatch:
    def test_dispatch_by_exact_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(CacheAccess, got.append)
        event = CacheAccess("l1", 0, 1, True, False, False)
        bus.emit(event)
        bus.emit(Eviction("l1", 0, 1, False, False))  # not subscribed
        assert got == [event]

    def test_double_subscription_delivers_twice(self):
        bus = EventBus()
        got = []
        bus.subscribe(CacheAccess, got.append)
        bus.subscribe(CacheAccess, got.append)
        bus.emit(CacheAccess("l1", 0, 1, True, False, False))
        assert len(got) == 2

    def test_unsubscribe_from_inside_handler(self):
        bus = EventBus()
        got = []

        def once(event):
            got.append(event)
            bus.unsubscribe(CacheAccess, once)

        bus.subscribe(CacheAccess, once)
        bus.emit(CacheAccess("l1", 0, 1, True, False, False))
        bus.emit(CacheAccess("l1", 0, 2, True, False, False))
        assert len(got) == 1
        assert not bus.active


class TestMachineIntegration:
    def test_machine_emits_cache_accesses(self, machine):
        got = []
        machine.events.subscribe(CacheAccess, got.append)
        run_program(machine, [Load(0x10000, 8)])
        levels = [e.level for e in got]
        assert "l1" in levels and "llc" in levels

    def test_memory_access_carries_result(self, machine):
        got = []
        machine.events.subscribe(MemoryAccess, got.append)
        run_program(machine, [Store(0x10000, 8)])
        assert len(got) == 1
        event = got[0]
        assert event.is_write and event.addr == 0x10000
        assert event.result.served_by == ("dram", "fill")

    def test_flit_and_dram_events_match_counters(self, machine):
        flits = []
        drams = []
        machine.events.subscribe(FlitHop, flits.append)
        machine.events.subscribe(DramAccess, drams.append)
        run_program(machine, [Load(0x10000 + i * 64, 8) for i in range(8)])
        assert len(flits) == machine.stats["noc.messages"]
        assert sum(f.flits * f.hops for f in flits) == machine.stats["noc.flit_hops"]
        assert sum(1 for d in drams if d.dram_cycled) == machine.stats["dram.accesses"]
        assert len(drams) == machine.stats["mc_cache.accesses"]


#: Every event type the simulator can emit on the hot paths.
_HOT_PATH_EVENTS = [
    events.MemoryAccess,
    events.CacheAccess,
    events.CoherenceAction,
    events.Eviction,
    events.DramAccess,
    events.FlitHop,
    events.MorphConstruct,
    events.MorphDestruct,
]


class TestZeroSubscriberCost:
    def test_no_events_constructed_without_subscribers(self, machine, monkeypatch):
        """The guard-checked emit must not even *construct* an event when
        nothing is subscribed: booby-trap every constructor and run."""

        def boom(self, *args, **kwargs):
            raise AssertionError(f"{type(self).__name__} constructed with no subscriber")

        for event_type in _HOT_PATH_EVENTS:
            monkeypatch.setattr(event_type, "__init__", boom)
        run_program(machine, [Load(0x10000 + i * 64, 8) for i in range(16)])
        assert machine.stats["dram.accesses"] > 0  # the run really ran

    def test_trap_fires_once_subscribed(self, machine, monkeypatch):
        """Sanity-check the booby trap: with a subscriber the same run
        must hit the patched constructor."""

        def boom(self, *args, **kwargs):
            raise AssertionError("constructed")

        monkeypatch.setattr(events.CacheAccess, "__init__", boom)
        machine.events.subscribe(events.CacheAccess, lambda e: None)
        with pytest.raises(AssertionError, match="constructed"):
            machine.hierarchy.access(0, 0x10000, 8, is_write=False)

"""Unit tests for the fault-injection layer (:mod:`repro.sim.faults`)."""

import pytest

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, InvokeTimeout, Location
from repro.core.runtime import Leviathan
from repro.core.stream import STREAM_END, Stream
from repro.sim.config import small_config
from repro.sim.events import (
    DegradedToFallback,
    EngineFailed,
    FaultInjected,
    InvokeRetried,
)
from repro.sim.faults import (
    ContextExhaustion,
    DramError,
    EngineCrash,
    EngineStall,
    FaultPlan,
    FaultPlanError,
    FaultSession,
    NocDelay,
    NocDrop,
    active_session,
)
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine

SPEC = (
    "crash:1@2000; stall:2@100+500; exhaust:0@0+50; "
    "noc-delay:0.1@20; noc-drop:0.01; dram-err:0-1024@0.05@200; seed:7"
)


class TestPlanGrammar:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(SPEC)
        assert FaultPlan.parse(plan.spec()) == plan
        assert plan.seed == 7
        assert len(plan.rules) == 6

    def test_rule_types(self):
        plan = FaultPlan.parse(SPEC)
        kinds = [type(rule) for rule in plan.rules]
        assert kinds == [
            EngineCrash,
            EngineStall,
            ContextExhaustion,
            NocDelay,
            NocDrop,
            DramError,
        ]

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.parse("seed:3")
        assert plan.rules == ()
        assert plan.seed == 3

    def test_crash_time_defaults_to_zero(self):
        plan = FaultPlan.parse("crash:2")
        assert plan.rules[0] == EngineCrash(2, 0.0)

    def test_unknown_clause_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault clause"):
            FaultPlan.parse("meteor:3")

    def test_malformed_clause_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fault clause"):
            FaultPlan.parse("crash:banana")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan.parse("noc-delay:1.5@20")

    def test_bad_line_range_rejected(self):
        with pytest.raises(FaultPlanError, match="line range"):
            FaultPlan.parse("dram-err:100-5@0.5")

    def test_non_positive_window_rejected(self):
        with pytest.raises(FaultPlanError, match="window"):
            FaultPlan.parse("stall:0@100+0")

    def test_tile_out_of_range_rejected_at_attach(self):
        machine = Machine(small_config())
        with pytest.raises(FaultPlanError, match="tile 99"):
            FaultPlan.parse("crash:99").attach(machine)


class Tally(Actor):
    SIZE = 8

    @action
    def hit(self, env, token):
        yield Load(self.addr, 8)
        yield Compute(2)
        mem = env.machine.mem
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(self.addr, mem.get(self.addr, 0) + token),
        )


def tally_workload(machine, runtime, n=12):
    alloc = runtime.allocator_for(Tally, capacity=4)
    actors = [alloc.allocate() for _ in range(4)]

    def invoker(tile):
        for i in range(n // 4):
            yield Invoke(actors[(tile + i) % 4], "hit", (1,), location=Location.DYNAMIC)
            yield Compute(3)

    for tile in range(4):
        machine.spawn(invoker(tile), tile=tile)
    return actors


class TestTimingFaults:
    def test_noc_delay_slows_the_run(self):
        def run(spec):
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            if spec is not None:
                FaultPlan.parse(spec).attach(machine)
            actors = tally_workload(machine, runtime)
            cycles = machine.run()
            results = {a.addr: machine.mem.get(a.addr) for a in actors}
            return machine, cycles, results

        _, clean_cycles, clean_results = run(None)
        machine, fault_cycles, fault_results = run("noc-delay:1.0@50; seed:1")
        assert fault_results == clean_results  # survivable: results identical
        assert fault_cycles > clean_cycles
        assert machine.faults.injected["noc-delay"] > 0
        assert machine.stats["faults.noc"] == machine.faults.injected["noc-delay"]

    def test_noc_drop_counts_as_retransmit(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan.parse("noc-drop:1.0@128; seed:2").attach(machine)
        tally_workload(machine, runtime)
        machine.run()
        assert machine.faults.injected["noc-drop"] > 0

    def test_dram_error_adds_latency_not_values(self):
        def run(with_faults):
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            if with_faults:
                # Every DRAM line, certain hit, heavy penalty.
                FaultPlan.parse("dram-err:0-1000000000@1.0@500; seed:0").attach(machine)
            actors = tally_workload(machine, runtime)
            cycles = machine.run()
            return machine, cycles, {a.addr: machine.mem.get(a.addr) for a in actors}

        _, clean_cycles, clean_results = run(False)
        machine, fault_cycles, fault_results = run(True)
        assert fault_results == clean_results
        assert fault_cycles > clean_cycles
        assert machine.stats["faults.dram_errors"] > 0

    def test_same_seed_same_injections(self):
        def run():
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            FaultPlan.parse("noc-delay:0.3@20; dram-err:0-1000000@0.5; seed:9").attach(
                machine
            )
            tally_workload(machine, runtime)
            cycles = machine.run()
            return cycles, dict(machine.faults.injected), dict(machine.stats.counters)

        assert run() == run()


class TestEngineFaults:
    def test_crash_marks_engine_failed(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan([EngineCrash(1, 10.0)]).attach(machine)
        failures = []
        machine.events.subscribe(EngineFailed, failures.append)

        def prog():
            yield Compute(100)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert runtime.engines[1].failed
        assert [ev.tile for ev in failures] == [1]
        assert machine.stats["faults.engine_failures"] == 1

    def test_crash_preserves_results_via_degradation(self):
        def run(spec):
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            if spec:
                FaultPlan.parse(spec).attach(machine)
            alloc = runtime.allocator_for(Tally, capacity=4)
            actors = [alloc.allocate() for _ in range(4)]

            def invoker(tile):
                # Pinned invokes: every tile (incl. the crashed ones)
                # receives work, forcing the degradation paths.
                for i in range(6):
                    yield Invoke(actors[i % 4], "hit", (1,), tile=(tile + i) % 4)
                    yield Compute(3)

            for tile in range(4):
                machine.spawn(invoker(tile), tile=tile)
            machine.run()
            return machine, {a.addr: machine.mem.get(a.addr) for a in actors}

        _, clean = run(None)
        machine, faulted = run("crash:1; crash:2@40; seed:5")
        assert faulted == clean
        assert machine.stats["invoke.degraded"] > 0
        assert machine.stats["invoke.on_core_fallbacks"] > 0

    def test_all_engines_failed_runs_on_core(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan.parse("crash:0; crash:1; crash:2; crash:3").attach(machine)
        fallbacks = []
        machine.events.subscribe(DegradedToFallback, fallbacks.append)
        actors = tally_workload(machine, runtime, n=8)
        machine.run()
        assert {a.addr: machine.mem.get(a.addr) for a in actors}
        assert machine.stats["invoke.on_core_fallbacks"] > 0
        assert any(ev.kind == "on-core" for ev in fallbacks)
        # Nothing executed on an engine.
        assert machine.stats["engine.instructions"] == 0

    def test_stall_window_nacks_then_recovers(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan([EngineStall(1, 0.0, 300.0)]).attach(machine)
        done = []

        class Probe(Actor):
            SIZE = 8

            @action
            def go(self, env):
                yield Compute(1)
                done.append(env.machine.now)

        actor = runtime.allocator_for(Probe, capacity=2).allocate()

        def prog():
            yield Invoke(actor, "go", tile=1)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert len(done) == 1
        assert machine.stats["engine.nacks"] >= 1
        assert not runtime.engines[1].failed

    def test_exhaustion_window_spills(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan([ContextExhaustion(2, 0.0, 200.0)]).attach(machine)
        actors = tally_workload(machine, runtime)
        machine.run()
        assert {a.addr: machine.mem.get(a.addr) for a in actors}
        assert machine.faults.injected["ctx-exhaust"] == 1

    def test_engine_rules_inert_on_baseline_machine(self):
        # No Leviathan runtime: the rule has nothing to fault and the
        # run still completes.
        machine = Machine(small_config())
        FaultPlan.parse("crash:1@5").attach(machine)

        def prog():
            yield Compute(50)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert machine.stats["faults.inert_rules"] == 1
        assert machine.stats["faults.engine_failures"] == 0


class TestBoundedRetry:
    def test_retries_then_succeeds(self):
        cfg = small_config(
            **{"core.invoke_max_retries": 8, "core.invoke_retry_delay": 20}
        )
        machine = Machine(cfg)
        runtime = Leviathan(machine)
        # Window short enough for the backoff schedule to outlast it.
        FaultPlan([ContextExhaustion(1, 0.0, 100.0)]).attach(machine)
        retried = []
        machine.events.subscribe(InvokeRetried, retried.append)
        done = []

        class Probe(Actor):
            SIZE = 8

            @action
            def go(self, env):
                yield Compute(1)
                done.append(True)

        actor = runtime.allocator_for(Probe, capacity=2).allocate()

        def prog():
            yield Invoke(actor, "go", tile=1)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert done == [True]
        assert machine.stats["invoke.retries"] >= 1
        assert len(retried) == machine.stats["invoke.retries"]
        assert retried[0].attempt == 1
        assert retried[0].backoff == 20.0

    def test_timeout_past_max_retries(self):
        cfg = small_config(
            **{"core.invoke_max_retries": 2, "core.invoke_retry_delay": 5}
        )
        machine = Machine(cfg)
        runtime = Leviathan(machine)
        # Window far longer than 2 retries can cover.
        FaultPlan([ContextExhaustion(1, 0.0, 1_000_000.0)]).attach(machine)

        class Probe(Actor):
            SIZE = 8

            @action
            def go(self, env):
                yield Compute(1)

        actor = runtime.allocator_for(Probe, capacity=2).allocate()

        def prog():
            yield Invoke(actor, "go", tile=1)

        machine.spawn(prog(), tile=0)
        with pytest.raises(InvokeTimeout, match="2 retries"):
            machine.run()

    def test_legacy_mode_unchanged_without_config(self):
        # invoke_max_retries defaults to None: the unbounded spill queue
        # still handles NACKs and no retry shuttle is spawned.
        machine = Machine(small_config(**{"engine.task_contexts": 1}))
        runtime = Leviathan(machine)
        actors = tally_workload(machine, runtime, n=16)
        machine.run()
        assert {a.addr: machine.mem.get(a.addr) for a in actors}


class CountStream(Stream):
    def gen_stream(self, env):
        for i in range(10):
            yield from self.push(i)


class TestStreamDegradation:
    def test_failed_producer_engine_degrades_to_queue(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan.parse("crash:1").attach(machine)
        fallbacks = []
        machine.events.subscribe(DegradedToFallback, fallbacks.append)
        stream = CountStream(
            runtime, object_size=8, buffer_entries=16,
            consumer_tile=0, producer_tile=1,
        )
        got = []

        def consumer():
            while True:
                value = yield from stream.consume()
                if value is STREAM_END:
                    return
                got.append(value)

        # The crash driver fires at t=0 before the workload contexts
        # spawn; start() sees the failed engine.
        def starter():
            yield Compute(1)
            stream.start()
            machine.spawn(consumer(), tile=0)

        machine.spawn(starter(), tile=0)
        machine.run()
        assert got == list(range(10))
        assert machine.stats["stream.degraded"] == 1
        assert any(ev.kind == "stream-queue" for ev in fallbacks)


class TestMorphDegradation:
    def test_constructors_run_on_core_when_engine_failed(self):
        from repro.core.morph import Morph

        built = []

        class CountingMorph(Morph):
            def construct(self, view, index):
                built.append(index)
                yield Compute(1)

        machine = Machine(small_config())
        runtime = Leviathan(machine)
        FaultPlan.parse("crash:0; crash:1; crash:2; crash:3").attach(machine)
        morph = CountingMorph(runtime, "l2", 16, 8)

        def prog():
            yield Compute(1)
            yield Load(morph.get_actor_addr(0), 8)

        machine.spawn(prog(), tile=0)
        machine.run()
        assert built  # constructors still ran
        assert machine.stats["faults.actions_on_core"] > 0
        assert machine.stats["engine.instructions"] == 0


class TestDetachedOverhead:
    def test_no_plan_is_bit_identical(self):
        def run(attach_empty):
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            if attach_empty:
                controller = FaultPlan([], seed=4).attach(machine)
                controller.detach()
            actors = tally_workload(machine, runtime)
            cycles = machine.run()
            return cycles, {a.addr: machine.mem.get(a.addr) for a in actors}

        assert run(False) == run(True)

    def test_detach_clears_hooks(self):
        machine = Machine(small_config())
        Leviathan(machine)
        controller = FaultPlan.parse("noc-delay:0.5@10; dram-err:0-10@0.5").attach(
            machine
        )
        assert machine.faults is controller
        assert machine.hierarchy.noc.faults is controller
        controller.detach()
        assert machine.faults is None
        assert machine.hierarchy.noc.faults is None
        assert all(c.faults is None for c in machine.hierarchy.mem.controllers)
        assert not machine.events.active


class TestFaultSession:
    def test_session_attaches_to_every_machine(self):
        with FaultSession("noc-delay:1.0@10; seed:1") as session:
            assert active_session() is session
            m1 = Machine(small_config())
            m2 = Machine(small_config())
            assert m1.faults is not None
            assert m2.faults is not None
            assert len(session.controllers) == 2
        assert active_session() is None
        m3 = Machine(small_config())
        assert m3.faults is None

    def test_nested_install_rejected(self):
        with FaultSession("seed:0"):
            with pytest.raises(RuntimeError, match="already installed"):
                FaultSession("seed:1").install()

    def test_report_and_save(self, tmp_path):
        with FaultSession("noc-delay:1.0@25; seed:6") as session:
            machine = Machine(small_config())
            runtime = Leviathan(machine)
            tally_workload(machine, runtime)
            machine.run()
            report = session.report()
            assert report["seed"] == 6
            assert report["total_injected"] > 0
            path = session.save(str(tmp_path))
        import json

        with open(path) as handle:
            saved = json.load(handle)
        assert saved["machines"][0]["injected"]["noc-delay"] > 0

    def test_fault_report_lists_open_invokes_in_stall_dump(self):
        # The controller's span tracker feeds describe_stall: a hang with
        # an in-flight invoke names it in the DeadlockError dump.
        from repro.sim.ops import Condition, Wait
        from repro.sim.scheduler import DeadlockError

        with FaultSession("seed:0"):
            machine = Machine(small_config())
            Leviathan(machine)
            never = Condition("never")

            def prog():
                yield Wait(never)

            machine.spawn(prog(), tile=0, name="hang")
            with pytest.raises(DeadlockError) as excinfo:
                machine.run()
            assert "hang" in str(excinfo.value)

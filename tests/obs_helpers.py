"""Importable spec targets and mini-workloads for observability tests.

Pool workers resolve :class:`~repro.experiments.pool.RunSpec` functions
by import path, so anything a pool test fans out must live in a real
module (``"tests.obs_helpers:slow_point"``) rather than inside the test
file. The invoke workload also serves the flight-recorder tests, which
need a run that emits plenty of bus events.
"""

import time

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute
from repro.sim.system import Machine


def slow_point(tag, seconds=0.3):
    """Sleep long enough for a heartbeat/status poll to catch the run."""
    time.sleep(seconds)
    return {"tag": tag}


def deadlocking_point(tag="deadlock"):
    """Build a machine and livelock it: raises via the watchdog."""
    machine = Machine(small_config(watchdog_steps=500))

    def spin():
        while True:
            yield Compute(0)

    machine.spawn(spin(), tile=0, name=f"{tag}-spinner")
    machine.run()


class Ping(Actor):
    SIZE = 8

    @action
    def ping(self, env, amount):
        yield Compute(1)


def invoke_burst(machine=None):
    """A small invoke storm over four tiles; returns the machine."""
    machine = machine if machine is not None else Machine(small_config())
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(Ping, capacity=8)
    actors = [alloc.allocate() for _ in range(4)]

    def invoker(tile):
        for i in range(6):
            actor = actors[(tile + i) % 4]
            yield Invoke(actor, "ping", (i,), location=Location.REMOTE)
            yield Compute(2)

    for tile in range(4):
        machine.spawn(invoker(tile), tile=tile)
    machine.run()
    return machine

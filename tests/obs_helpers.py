"""Importable spec targets and mini-workloads for observability tests.

Pool workers resolve :class:`~repro.experiments.pool.RunSpec` functions
by import path, so anything a pool test fans out must live in a real
module (``"tests.obs_helpers:slow_point"``) rather than inside the test
file. The invoke workload also serves the flight-recorder tests, which
need a run that emits plenty of bus events.
"""

import os
import signal
import time

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import small_config
from repro.sim.ops import Compute
from repro.sim.system import Machine


def slow_point(tag, seconds=0.3):
    """Sleep long enough for a heartbeat/status poll to catch the run."""
    time.sleep(seconds)
    return {"tag": tag}


def flaky_point(sentinel, tag="flaky"):
    """SIGKILL our own worker once; succeed after the sentinel exists.

    Exercises the supervisor's transient-failure path: the first
    attempt leaves a sentinel file and dies without an outcome; the
    requeued attempt sees the sentinel and returns normally.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempt 1 died here\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"tag": tag}


def slow_once_point(sentinel, tag="slow-once", seconds=60.0):
    """Blow the run deadline once; succeed on the retried attempt."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempt 1 overslept here\n")
        time.sleep(seconds)
    return {"tag": tag}


def hang_point(sentinel, tag="hang", seconds=120.0):
    """Simulate a hung worker once; succeed on the retried attempt.

    The first attempt suspends its own heartbeat writer and sleeps --
    to the supervisor this is indistinguishable from a livelocked or
    SIGSTOPped worker, so it must be killed via hang detection and
    requeued. The retried attempt sees the sentinel and returns.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempt 1 hung here\n")
        from repro.experiments.monitor import current_heartbeat

        writer = current_heartbeat()
        if writer is not None:
            writer.suspend()
        time.sleep(seconds)
    return {"tag": tag}


def deadlocking_point(tag="deadlock"):
    """Build a machine and livelock it: raises via the watchdog."""
    machine = Machine(small_config(watchdog_steps=500))

    def spin():
        while True:
            yield Compute(0)

    machine.spawn(spin(), tile=0, name=f"{tag}-spinner")
    machine.run()


class Ping(Actor):
    SIZE = 8

    @action
    def ping(self, env, amount):
        yield Compute(1)


def invoke_burst(machine=None):
    """A small invoke storm over four tiles; returns the machine."""
    machine = machine if machine is not None else Machine(small_config())
    runtime = Leviathan(machine)
    alloc = runtime.allocator_for(Ping, capacity=8)
    actors = [alloc.allocate() for _ in range(4)]

    def invoker(tile):
        for i in range(6):
            actor = actors[(tile + i) % 4]
            yield Invoke(actor, "ping", (i,), location=Location.REMOTE)
            yield Compute(2)

    for tile in range(4):
        machine.spawn(invoker(tile), tile=tile)
    machine.run()
    return machine

"""Unit tests for the Actor base class and action registration."""

import pytest

from repro.core.actor import Actor, action
from repro.sim.ops import Compute


class Counter(Actor):
    SIZE = 8

    @action
    def bump(self, env, amount):
        yield Compute(1)
        return amount + 1

    def helper(self):
        return "not an action"


class TestActor:
    def test_requires_size(self):
        class Nameless(Actor):
            pass

        with pytest.raises(TypeError):
            Nameless()

    def test_actions_discovered(self):
        assert Counter.actions() == ["bump"]

    def test_action_fn_bound(self):
        counter = Counter()
        fn = counter.action_fn("bump")
        gen = fn(None, 41)
        next(gen)
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        assert stop.value.value == 42

    def test_non_action_rejected(self):
        counter = Counter()
        with pytest.raises(AttributeError):
            counter.action_fn("helper")
        with pytest.raises(AttributeError):
            counter.action_fn("missing")

    def test_repr_unallocated(self):
        assert "unallocated" in repr(Counter())

    def test_repr_with_address(self):
        counter = Counter()
        counter.addr = 0x1234
        assert "0x1234" in repr(counter)

    def test_subclass_size_inherited_by_allocator(self, runtime):
        alloc = runtime.allocator_for(Counter, capacity=8)
        counter = alloc.allocate()
        assert counter.addr is not None
        assert counter.allocator is alloc

    def test_action_marker_preserved_in_subclass(self):
        class Derived(Counter):
            SIZE = 16

            @action
            def other(self, env):
                yield Compute(1)

        assert sorted(Derived.actions()) == ["bump", "other"]

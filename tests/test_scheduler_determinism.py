"""Scheduler-mode determinism: heap and run-list produce one schedule.

The run-list scheduler (``scheduler_mode="runlist"``, the default) is a
performance rearchitecture of the original binary-heap scheduler
(``"heap"``, kept as the executable reference). Its correctness claim
is *bit-identical schedules*: for any workload, both modes execute the
same operations on the same contexts in the same order at the same
simulated times. These tests drive both modes over seeded random
workloads and over a real macro workload and require identical
execution logs, final times, and statistics -- guarding the
tie-break-by-enqueue-order contract documented in ``scheduler.py``.
"""

import random

import pytest

from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Sleep, Store
from repro.sim.scheduler import HeapScheduler, Scheduler
from repro.sim.system import Machine


def _make_machine(mode):
    return Machine(small_config(scheduler_mode=mode))


def _random_op_trace(seed, steps):
    """Pre-generate one context's operation list (schedule-independent).

    Drawing from the RNG *during* the run would entangle the draw order
    with the schedule under test; pre-generating makes each program a
    fixed sequence so any divergence is the scheduler's alone.
    """
    rng = random.Random(seed)
    ops = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.40:
            ops.append(("compute", rng.randint(1, 6)))
        elif roll < 0.55:
            ops.append(("sleep", rng.randint(0, 3)))
        elif roll < 0.80:
            ops.append(("load", rng.randrange(0, 64) * 64))
        else:
            ops.append(("store", rng.randrange(0, 64) * 64))
    return ops


def _run_mode(mode, seed, n_contexts=6, steps=40):
    """Run the seeded workload under ``mode``; return its full trace."""
    machine = _make_machine(mode)
    base = machine.address_space.alloc(64 * 64, align=64)
    log = []

    def program(name, trace):
        for i, (kind, arg) in enumerate(trace):
            # The (who, step, when) triple captures the interleaving:
            # two schedules are identical iff these logs are equal.
            log.append((name, i, machine.scheduler.current.time))
            if kind == "compute":
                yield Compute(arg)
            elif kind == "sleep":
                yield Sleep(arg)
            elif kind == "load":
                yield Load(base + arg, 8)
            else:
                yield Store(base + arg, 8)

    for c in range(n_contexts):
        trace = _random_op_trace(seed * 1000 + c, steps)
        machine.spawn(
            program(f"det{c}", trace), tile=c % machine.config.n_tiles, name=f"det{c}"
        )
    final = machine.run()
    return log, final, dict(machine.stats.counters)


class TestSchedulerModeSelection:
    def test_default_is_runlist(self):
        machine = Machine(small_config())
        assert type(machine.scheduler) is Scheduler

    def test_heap_mode_selectable(self):
        machine = _make_machine("heap")
        assert type(machine.scheduler) is HeapScheduler

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="scheduler_mode"):
            small_config(scheduler_mode="fifo")


class TestSpawnOrderTieBreak:
    """Same-time contexts run in spawn order -- in both modes."""

    def test_zero_time_spawn_order(self):
        orders = {}
        for mode in ("runlist", "heap"):
            machine = _make_machine(mode)
            order = []

            def program(name):
                order.append(name)
                yield Compute(1)
                order.append(name)
                yield Compute(1)

            for c in range(5):
                machine.spawn(program(f"tie{c}"), tile=0, name=f"tie{c}")
            machine.run()
            orders[mode] = order
        # The first round runs strictly in spawn order. (Later rounds
        # are allowed to let the dispatching context continue through a
        # time tie -- but both modes must make the same choice.)
        assert orders["runlist"][:5] == [f"tie{c}" for c in range(5)]
        assert orders["runlist"] == orders["heap"]

    @pytest.mark.parametrize("mode", ["runlist", "heap"])
    def test_wake_preserves_fifo_order(self, mode):
        from repro.sim.ops import Condition, Wait

        machine = _make_machine(mode)
        cond = Condition("gate")
        got = []

        def waiter(name):
            value = yield Wait(cond)
            got.append((name, value))

        def waker():
            yield Sleep(10)
            machine.wake_all(cond, value="go")

        for c in range(4):
            machine.spawn(waiter(f"w{c}"), tile=0, name=f"w{c}")
        machine.spawn(waker(), tile=1, name="waker")
        machine.run()
        assert got == [(f"w{c}", "go") for c in range(4)]


class TestHeapRunlistEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23, 101, 424242])
    def test_random_workload_identical_schedules(self, seed):
        runlist = _run_mode("runlist", seed)
        heap = _run_mode("heap", seed)
        assert runlist[0] == heap[0], "execution interleaving diverged"
        assert runlist[1] == heap[1], "final simulated time diverged"
        assert runlist[2] == heap[2], "statistics diverged"

    @pytest.mark.parametrize("seed", [3, 17])
    def test_contended_single_tile(self, seed):
        """Everything on one tile: maximal timestamp collisions."""
        machine_results = []
        for mode in ("runlist", "heap"):
            machine = _make_machine(mode)
            base = machine.address_space.alloc(8 * 64, align=64)
            log = []

            def program(name, trace):
                for i, (kind, arg) in enumerate(trace):
                    log.append((name, i))
                    if kind == "compute":
                        yield Compute(arg)
                    elif kind == "sleep":
                        yield Sleep(arg)
                    elif kind == "load":
                        yield Load(base + (arg % 512), 8)
                    else:
                        yield Store(base + (arg % 512), 8)

            for c in range(8):
                trace = _random_op_trace(seed * 77 + c, 25)
                machine.spawn(program(f"c{c}", trace), tile=0, name=f"c{c}")
            final = machine.run()
            machine_results.append((log, final, dict(machine.stats.counters)))
        assert machine_results[0] == machine_results[1]


class TestMacroEquivalence:
    """A real runtime workload (parks, wakes, invokes) in both modes."""

    def test_fig18_identical_across_modes(self, monkeypatch):
        from repro.perf.registry import FIG18_PARAMS
        from repro.workloads.hashtable import run_leviathan

        small = dict(FIG18_PARAMS)
        small.update(n_buckets=16, nodes_per_bucket=8, n_threads=4, lookups_per_thread=8)

        results = {}
        for mode in ("runlist", "heap"):
            if mode == "heap":
                import repro.sim.system as system_module

                monkeypatch.setattr(
                    system_module, "make_scheduler", lambda m: HeapScheduler(m)
                )
            r = run_leviathan(dict(small), n_tiles=4)
            results[mode] = (r.cycles, r.energy_pj, r.output, r.stats)
        assert results["runlist"] == results["heap"]

"""Fast/slow dispatch identity on the fig18 workload.

The hierarchy has two dispatch variants: the instrumented path (taken
whenever anything subscribes to ``MemoryAccess`` -- profilers, faults,
telemetry) builds a full :class:`AccessResult` per request, and the
detached fast path walks the same caches through a pooled request and
returns only the latency. These are *performance* variants, not
semantic ones: a run must produce bit-identical timing, energy,
statistics, and functional output no matter which path it took, and
attached runs must observe identical ``AccessResult`` streams.
"""

import pytest

import repro.workloads.hashtable as hashtable
from repro.sim.faults import FaultSession
from repro.sim.stats import AccessProfile
from repro.sim.telemetry.session import TelemetrySession

#: fig18 scaled to unit-test size (a run is a few thousand steps).
SMALL = dict(n_buckets=16, nodes_per_bucket=8, n_threads=4, lookups_per_thread=8)
TILES = 4


def fingerprint(result):
    """Everything a run produces except the (optional) access profile."""
    return (
        result.cycles,
        result.energy_pj,
        result.stats,
        repr(result.output),
        result.energy_breakdown,
    )


class _NullProfile:
    """Stand-in that never subscribes: forces the detached fast path."""

    def __init__(self, machine=None):
        self.requests = 0

    def detach(self):
        return self

    def breakdown(self):
        return {}


class _RecordingProfile(AccessProfile):
    """AccessProfile that also logs the full MemoryAccess stream."""

    instances = []

    def __init__(self, machine=None):
        self.stream = []
        super().__init__(machine)
        _RecordingProfile.instances.append(self)

    def _on_access(self, event):
        self.stream.append(
            (
                event.tile,
                event.addr,
                event.size,
                event.is_write,
                event.engine,
                event.near_memory,
                repr(event.result),
            )
        )
        super()._on_access(event)


def _run(runner, **kwargs):
    return runner(dict(SMALL), n_tiles=TILES, **kwargs)


@pytest.mark.parametrize(
    "runner", [hashtable.run_baseline, hashtable.run_leviathan], ids=["baseline", "leviathan"]
)
class TestAttachedDetachedIdentity:
    def test_detached_matches_attached(self, runner, monkeypatch):
        attached = _run(runner)
        assert attached.access_profile  # default runner really instruments
        monkeypatch.setattr(hashtable, "AccessProfile", _NullProfile)
        detached = _run(runner)
        assert detached.access_profile == {}
        assert fingerprint(detached) == fingerprint(attached)

    def test_fault_attached_matches(self, runner):
        attached = _run(runner)
        # An inert plan (probability 0) attaches the fault machinery --
        # and with it the instrumented access path -- without ever
        # perturbing the run.
        with FaultSession("noc-delay:0.0@5") as session:
            faulted = _run(runner)
        assert session.total_injected == 0
        assert fingerprint(faulted) == fingerprint(attached)

    def test_telemetry_attached_matches(self, runner):
        attached = _run(runner)
        with TelemetrySession() as session:
            telemetered = _run(runner)
        assert session.telemetries  # the run really was observed
        assert fingerprint(telemetered) == fingerprint(attached)


class TestAccessResultStream:
    @pytest.mark.parametrize(
        "runner",
        [hashtable.run_baseline, hashtable.run_leviathan],
        ids=["baseline", "leviathan"],
    )
    def test_repeated_attached_runs_identical_streams(self, runner, monkeypatch):
        monkeypatch.setattr(hashtable, "AccessProfile", _RecordingProfile)
        monkeypatch.setattr(_RecordingProfile, "instances", [])
        first = _run(runner)
        second = _run(runner)
        streams = [p.stream for p in _RecordingProfile.instances]
        assert len(streams) == 2
        assert streams[0], "instrumented run observed no accesses"
        assert streams[0] == streams[1]
        assert fingerprint(first) == fingerprint(second)
        assert first.access_profile == second.access_profile

"""Unit tests for the memory hierarchy: hits, misses, coherence,
inclusion, writebacks, morph hooks, and the flush path."""

import pytest

from repro.sim.config import small_config
from repro.sim.hierarchy import ConstructResult, HierarchyHooks
from repro.sim.system import Machine


@pytest.fixture
def hierarchy(machine):
    return machine.hierarchy


ADDR = 0x2_0000


class TestBasicPath:
    def test_cold_miss_goes_to_dram(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)
        assert machine.stats["dram.accesses"] == 1
        assert machine.stats["llc.misses"] == 1

    def test_second_access_hits_l1(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)
        snap = machine.stats.snapshot()
        latency = hierarchy.access(0, ADDR, 8, is_write=False).latency
        diff = machine.stats.diff(snap)
        assert diff.get("dram.accesses", 0) == 0
        assert diff.get("llc.accesses", 0) == 0
        assert latency <= machine.config.l1.hit_latency + 1

    def test_hit_latency_ordering(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)  # warm
        l1_hit = hierarchy.access(0, ADDR, 8, is_write=False).latency
        # From another tile: must at least go to the LLC.
        remote = hierarchy.access(1, ADDR, 8, is_write=False).latency
        assert remote > l1_hit

    def test_multi_line_access_overlaps(self, machine, hierarchy):
        lat_one = hierarchy.access(0, ADDR, 8, is_write=False).latency
        lat_four = hierarchy.access(0, ADDR + 0x1000, 256, is_write=False).latency
        # Four lines overlap: latency must be far below 4x a single miss.
        assert lat_four < 3 * lat_one
        assert machine.stats["dram.accesses"] >= 5

    def test_bank_interleaving(self, machine, hierarchy):
        banks = {hierarchy.bank_of(line) for line in range(16)}
        assert len(banks) == machine.config.n_tiles


class TestWritebacks:
    def test_dirty_line_written_back_to_dram(self, machine, hierarchy):
        cfg = machine.config
        hierarchy.access(0, ADDR, 8, is_write=True)
        # Evict it from everything by storming the same LLC set.
        llc_capacity = cfg.llc.lines(cfg.line_size) * cfg.n_tiles
        for i in range(1, llc_capacity * 4):
            hierarchy.access(0, ADDR + i * 64, 8, is_write=False)
        assert machine.stats["dram.writes"] >= 1

    def test_clean_eviction_no_writeback(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)
        snap = machine.stats.snapshot()
        cfg = machine.config
        llc_capacity = cfg.llc.lines(cfg.line_size) * cfg.n_tiles
        for i in range(1, llc_capacity * 4):
            hierarchy.access(0, ADDR + i * 64, 8, is_write=False)
        assert machine.stats.diff(snap).get("dram.writes", 0) == 0


class TestCoherence:
    def test_write_sets_ownership(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=True)
        line = hierarchy.line_of(ADDR)
        assert hierarchy.owner_of(line) == 0

    def test_read_by_other_downgrades(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=True)
        hierarchy.access(1, ADDR, 8, is_write=False)
        line = hierarchy.line_of(ADDR)
        assert hierarchy.owner_of(line) is None
        assert machine.stats["coherence.ping_pongs"] == 1

    def test_write_invalidates_sharers(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)
        hierarchy.access(1, ADDR, 8, is_write=False)
        hierarchy.access(2, ADDR, 8, is_write=True)
        line = hierarchy.line_of(ADDR)
        assert hierarchy.owner_of(line) == 2
        assert not hierarchy.tile_has_private(0, line)
        assert not hierarchy.tile_has_private(1, line)
        assert machine.stats["coherence.invalidations"] >= 2

    def test_upgrade_on_shared_write_hit(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)
        hierarchy.access(1, ADDR, 8, is_write=False)
        snap = machine.stats.snapshot()
        hierarchy.access(0, ADDR, 8, is_write=True)  # L1 hit, needs upgrade
        diff = machine.stats.diff(snap)
        assert diff.get("coherence.upgrades", 0) == 1

    def test_ping_pong_costs_latency(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=True)
        hierarchy.access(1, ADDR + 0x1000, 8, is_write=True)  # unrelated
        clean = hierarchy.access(1, ADDR + 0x1000, 8, is_write=True).latency
        dirty_remote = hierarchy.access(1, ADDR, 8, is_write=True).latency
        assert dirty_remote > clean

    def test_inclusive_recall_on_llc_eviction(self, machine, hierarchy):
        """LLC evictions must pull private copies (inclusion)."""
        hierarchy.access(0, ADDR, 8, is_write=True)
        line = hierarchy.line_of(ADDR)
        bank = hierarchy.bank_of(line)
        victim = hierarchy.llc[bank].invalidate(line)
        hierarchy._evict_llc(bank, victim)
        assert not hierarchy.tile_has_private(0, line)
        assert machine.stats["dram.writes"] >= 1  # the dirty data survived


class TestEngineAccess:
    def test_engine_miss_bypasses_l2_fill(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False, engine=True)
        line = hierarchy.line_of(ADDR)
        assert hierarchy.engine_l1[0].contains(line)
        assert not hierarchy.l2[0].contains(line)

    def test_engine_snoops_tile_l2(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False)  # core fills L2
        snap = machine.stats.snapshot()
        hierarchy.access(0, ADDR, 8, is_write=False, engine=True)
        diff = machine.stats.diff(snap)
        assert diff.get("llc.accesses", 0) == 0  # satisfied by the snoop

    def test_engine_hit_is_fast(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=False, engine=True)
        latency = hierarchy.access(0, ADDR, 8, is_write=False, engine=True).latency
        assert latency <= 3

    def test_engine_dirty_eviction_writes_to_llc(self, machine, hierarchy):
        hierarchy.access(0, ADDR, 8, is_write=True, engine=True)
        line = hierarchy.line_of(ADDR)
        el1 = hierarchy.engine_l1[0]
        victim = el1.invalidate(line)
        hierarchy._evict_engine_l1(0, victim)
        bank = hierarchy.bank_of(line)
        entry = hierarchy.llc[bank].lookup(line, touch=False)
        assert entry is not None and entry.dirty


class _CountingHooks(HierarchyHooks):
    def __init__(self, level, base_line, bound_line):
        self.level = level
        self.base_line = base_line
        self.bound_line = bound_line
        self.constructed = []
        self.destructed = []

    def _covers(self, line):
        return self.base_line <= line < self.bound_line

    def morph_level(self, line):
        return self.level if self._covers(line) else None

    def on_miss(self, level, tile, line):
        if level == self.level and self._covers(line):
            self.constructed.append(line)
            return ConstructResult(latency=5, lines=[line])
        return None

    def on_evict(self, level, tile, line, dirty):
        if level == self.level and self._covers(line):
            self.destructed.append((line, dirty))
            return True
        return False


class TestMorphHooks:
    def test_l2_morph_constructs_without_dram(self, machine, hierarchy):
        base_line = ADDR // 64
        hooks = _CountingHooks("l2", base_line, base_line + 8)
        hierarchy.hooks = hooks
        hierarchy.access(0, ADDR, 8, is_write=False)
        assert hooks.constructed == [base_line]
        assert machine.stats["dram.accesses"] == 0
        assert machine.stats["morph.l2_constructions"] == 1

    def test_llc_morph_constructs_at_bank(self, machine, hierarchy):
        base_line = ADDR // 64
        hooks = _CountingHooks("llc", base_line, base_line + 8)
        hierarchy.hooks = hooks
        hierarchy.access(0, ADDR, 8, is_write=False)
        assert hooks.constructed == [base_line]
        assert machine.stats["morph.llc_constructions"] == 1
        assert machine.stats["dram.accesses"] == 0

    def test_flush_range_fires_destructors(self, machine, hierarchy):
        from repro.sim.address import Region

        base_line = ADDR // 64
        hooks = _CountingHooks("l2", base_line, base_line + 8)
        hierarchy.hooks = hooks
        hierarchy.access(0, ADDR, 8, is_write=True)
        hierarchy.flush_range(Region(ADDR, 64))
        assert [line for line, _ in hooks.destructed] == [base_line]

    def test_destructor_sees_dirty_flag(self, machine, hierarchy):
        from repro.sim.address import Region

        base_line = ADDR // 64
        hooks = _CountingHooks("l2", base_line, base_line + 16)
        hierarchy.hooks = hooks
        hierarchy.access(0, ADDR, 8, is_write=True)
        hierarchy.access(0, ADDR + 64, 8, is_write=False)
        hierarchy.flush_range(Region(ADDR, 128))
        flags = dict(hooks.destructed)
        assert flags[base_line] is True
        assert flags[base_line + 1] is False

    def test_engine_llc_morph_access_bypasses_private(self, machine, hierarchy):
        base_line = ADDR // 64
        hooks = _CountingHooks("llc", base_line, base_line + 8)
        hierarchy.hooks = hooks
        hierarchy.access(0, ADDR, 8, is_write=True, engine=True)
        line = hierarchy.line_of(ADDR)
        assert not hierarchy.engine_l1[0].contains(line)
        bank = hierarchy.bank_of(line)
        assert hierarchy.llc[bank].contains(line)


class TestFlush:
    def test_flush_writes_back_dirty_regular_lines(self, machine, hierarchy):
        from repro.sim.address import Region

        hierarchy.access(0, ADDR, 8, is_write=True)
        hierarchy.flush_range(Region(ADDR, 64))
        assert machine.stats["dram.writes"] >= 1
        line = hierarchy.line_of(ADDR)
        assert not hierarchy.tile_has_private(0, line)
        assert not hierarchy.llc_has(line)


class TestPrefetcher:
    def test_sequential_misses_trigger_prefetch(self, machine, hierarchy):
        for i in range(6):
            hierarchy.access(0, ADDR + i * 64, 8, is_write=False)
        assert machine.stats["prefetch.issued"] > 0

    def test_prefetched_line_hits_in_l2(self, machine, hierarchy):
        for i in range(4):
            hierarchy.access(0, ADDR + i * 64, 8, is_write=False)
        snap = machine.stats.snapshot()
        hierarchy.access(0, ADDR + 4 * 64, 8, is_write=False)
        assert machine.stats.diff(snap).get("dram.accesses", 0) == 0

    def test_prefetcher_can_be_disabled(self):
        cfg = small_config(l2_prefetcher=False)
        machine = Machine(cfg)
        for i in range(8):
            machine.hierarchy.access(0, ADDR + i * 64, 8, is_write=False)
        assert machine.stats["prefetch.issued"] == 0

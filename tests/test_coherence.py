"""Unit tests for the coherence directory."""

from repro.sim.coherence import Directory, DirectoryEntry
from repro.sim.stats import Stats


def make_dir():
    return Directory(Stats())


class TestDirectory:
    def test_empty_line_has_no_state(self):
        directory = make_dir()
        assert directory.peek(5) is None
        assert directory.owner_of(5) is None
        assert directory.sharers_of(5) == set()

    def test_shared_fill(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=False)
        directory.record_fill(5, tile=2, exclusive=False)
        assert directory.sharers_of(5) == {1, 2}
        assert directory.owner_of(5) is None

    def test_exclusive_fill_sets_owner(self):
        directory = make_dir()
        directory.record_fill(5, tile=3, exclusive=True)
        assert directory.owner_of(5) == 3
        assert 3 in directory.sharers_of(5)

    def test_read_refill_after_ownership_downgrades(self):
        directory = make_dir()
        directory.record_fill(5, tile=3, exclusive=True)
        directory.record_fill(5, tile=3, exclusive=False)
        assert directory.owner_of(5) is None

    def test_private_eviction_clears_sharer(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=True)
        directory.record_private_eviction(5, tile=1)
        assert directory.peek(5) is None  # entry garbage-collected

    def test_private_eviction_keeps_other_sharers(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=False)
        directory.record_fill(5, tile=2, exclusive=False)
        directory.record_private_eviction(5, tile=1)
        assert directory.sharers_of(5) == {2}

    def test_eviction_of_owner_clears_ownership(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=True)
        directory.record_fill(5, tile=2, exclusive=False)
        directory.record_private_eviction(5, tile=1)
        assert directory.owner_of(5) is None
        assert directory.sharers_of(5) == {2}

    def test_eviction_of_unknown_line_is_noop(self):
        directory = make_dir()
        directory.record_private_eviction(99, tile=0)  # no crash

    def test_drop(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=True)
        directory.drop(5)
        assert directory.peek(5) is None

    def test_sharers_copy_is_defensive(self):
        directory = make_dir()
        directory.record_fill(5, tile=1, exclusive=False)
        sharers = directory.sharers_of(5)
        sharers.add(99)
        assert directory.sharers_of(5) == {1}

    def test_entry_repr(self):
        entry = DirectoryEntry()
        entry.sharers.add(2)
        entry.owner = 2
        assert "owner=2" in repr(entry)

"""The profiler harness: attribution, collapsed stacks, pool artifacts."""

import pstats
import re
import time
from collections import Counter

import pytest

from repro.experiments.pool import ExperimentPool, RunSpec
from repro.perf.profile import (
    ProfileHarness,
    ProfileReport,
    classify,
    fold_stacks,
    module_of,
)

#: Every folded line is ``frame;frame;... count`` -- the input format of
#: flamegraph.pl and speedscope: no spaces inside frames, one trailing
#: integer.
FOLDED_LINE = re.compile(r"^[^ ]+(;[^ ]+)* \d+$")

#: A cheap fig18 configuration for profile runs in tests.
SMALL_FIG18 = {
    "n_buckets": 8,
    "nodes_per_bucket": 8,
    "n_threads": 4,
    "lookups_per_thread": 8,
}


class TestClassify:
    @pytest.mark.parametrize(
        ("path", "label"),
        [
            ("/x/src/repro/sim/scheduler.py", "sim.scheduler"),
            ("/x/src/repro/sim/ops.py", "sim.scheduler"),
            ("/x/src/repro/sim/cache.py", "sim.cache"),
            ("/x/src/repro/sim/hierarchy.py", "sim.cache"),
            ("/x/src/repro/sim/noc.py", "sim.noc"),
            ("/x/src/repro/sim/dram.py", "sim.dram"),
            ("/x/src/repro/sim/stats.py", "sim.stats"),
            ("/x/src/repro/sim/telemetry/session.py", "telemetry"),
            ("/x/src/repro/sim/faults.py", "sim.faults"),
            ("/x/src/repro/core/offload.py", "core.offload"),
            ("/x/src/repro/core/stream.py", "core.stream"),
            ("/x/src/repro/core/morph.py", "core.morph"),
            ("/x/src/repro/workloads/hashtable.py", "workloads"),
            ("/x/src/repro/experiments/pool.py", "experiments"),
            ("/x/src/repro/perf/bench.py", "perf"),
            ("/usr/lib/python3/json/decoder.py", "other"),
            ("<built-in>", "other"),
            ("", "other"),
        ],
    )
    def test_module_to_subsystem(self, path, label):
        assert classify(path) == label

    def test_module_of_strips_to_dotted_path(self):
        assert module_of("/x/src/repro/sim/cache.py") == "repro.sim.cache"
        assert module_of("/nothing/here.py") == ""


class TestAttribution:
    @pytest.fixture(scope="class")
    def fig18_harness(self):
        from repro.perf.registry import FIG18_TILES
        from repro.workloads import hashtable

        harness = ProfileHarness()
        harness.run(
            hashtable.run_leviathan, dict(SMALL_FIG18), n_tiles=FIG18_TILES
        )
        return harness

    def test_subsystems_sum_to_total_within_5_percent(self, fig18_harness):
        """The acceptance criterion: per-subsystem wall time must sum to
        within 5% of the total profiled time on the fig18 macro. (The
        attribution is exhaustive -- unmatched frames land in 'other' --
        so the sum is exact up to float rounding.)"""
        report = fig18_harness.report
        assert report.total_s > 0
        attributed = sum(report.subsystems.values())
        assert attributed == pytest.approx(report.total_s, rel=0.05)

    def test_simulator_subsystems_dominate(self, fig18_harness):
        labels = set(fig18_harness.report.subsystems)
        assert "sim.scheduler" in labels
        assert "sim.cache" in labels

    def test_hot_rows_are_sorted_and_labelled(self, fig18_harness):
        hot = fig18_harness.report.hot
        assert hot
        times = [row["tottime_s"] for row in hot]
        assert times == sorted(times, reverse=True)
        for row in hot:
            assert {"function", "module", "subsystem", "calls"} <= set(row)

    def test_render_shows_breakdown(self, fig18_harness):
        text = fig18_harness.report.render(top=5)
        assert "per-subsystem breakdown" in text
        assert "sim.scheduler" in text

    def test_folded_stacks_are_flamegraph_input(self, fig18_harness):
        lines = fig18_harness.folded.splitlines()
        assert lines, "sampler collected no stacks on a ~1s macro run"
        for line in lines:
            assert FOLDED_LINE.match(line), f"bad folded line: {line!r}"
        assert any("repro." in line for line in lines)

    def test_save_writes_artifact_triple(self, fig18_harness, tmp_path):
        outdir = fig18_harness.save(str(tmp_path / "prof"))
        for name in ("profile.json", "profile.pstats", "stacks.folded"):
            assert (tmp_path / "prof" / name).exists()
        stats = pstats.Stats(str(tmp_path / "prof" / "profile.pstats"))
        assert stats.stats
        import json

        payload = json.loads((tmp_path / "prof" / "profile.json").read_text())
        assert payload["fingerprint"]["python"]
        assert payload["subsystems"]
        assert outdir == str(tmp_path / "prof")


class TestFoldStacks:
    def test_synthetic_counter(self):
        counts = Counter(
            {
                ("main", "run", "step"): 3,
                ("main", "idle"): 1,
                (): 5,  # empty stacks are dropped
            }
        )
        text = fold_stacks(counts)
        assert text == "main;idle 1\nmain;run;step 3\n"

    def test_empty_counter(self):
        assert fold_stacks(Counter()) == ""

    def test_report_from_trivial_profile(self):
        import cProfile

        profile = cProfile.Profile()
        profile.runcall(lambda: sum(range(1000)))
        report = ProfileReport.from_profile(profile, top=3)
        assert len(report.hot) <= 3
        assert sum(report.subsystems.values()) == pytest.approx(report.total_s)

    def test_save_before_run_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="nothing profiled"):
            ProfileHarness().save(str(tmp_path))

    def test_sampler_can_be_disabled(self):
        harness = ProfileHarness(sample=False)
        result = harness.run(lambda: 42)
        assert result == 42
        assert harness.folded == ""
        assert harness.report.total_s >= 0

    def test_sampler_observes_long_call(self):
        harness = ProfileHarness(sample_interval=0.001)

        def spin():
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                pass

        harness.run(spin)
        assert harness.folded
        assert "spin" in harness.folded


class TestPoolProfile:
    def test_pool_drops_profile_artifacts(self, tmp_path):
        """`--profile DIR` pool runs must produce the artifact triple per
        run and return the same result as a direct call."""
        from repro.workloads import hashtable

        pool = ExperimentPool(jobs=1, cache_dir=None, profile_dir=str(tmp_path))
        spec = RunSpec(
            "repro.workloads.hashtable:run_leviathan",
            {"params": dict(SMALL_FIG18), "n_tiles": 4},
            label="profile-test",
        )
        (result,) = pool.run_results([spec])
        direct = hashtable.run_leviathan(dict(SMALL_FIG18), n_tiles=4)
        assert result.cycles == direct.cycles
        assert result.stats == direct.stats

        run_dirs = list((tmp_path / "runs").iterdir())
        assert len(run_dirs) == 1
        for name in ("profile.json", "profile.pstats", "stacks.folded"):
            assert (run_dirs[0] / name).exists(), name
        assert pool.consume_report().get("profiled") == 1

"""Unit tests for the very-large-object fallbacks (Sec. VI-C)."""

import pytest

from repro.core.fallback import (
    MallocAllocator,
    PagedMorph,
    ThreadPairStream,
    exceeds_hardware_limit,
)
from repro.sim.ops import Compute
from tests.conftest import run_program


class TestLimitCheck:
    def test_within_limit(self, config):
        assert not exceeds_hardware_limit(256, config)

    def test_beyond_limit(self, config):
        assert exceeds_hardware_limit(257, config)
        assert exceeds_hardware_limit(4096, config)


class TestAutoAllocator:
    def test_small_objects_get_full_treatment(self, runtime):
        from repro.core.allocator import Allocator

        alloc = runtime.allocator_auto(24)
        assert isinstance(alloc, Allocator)
        assert alloc.padded_size == 32

    def test_large_objects_fall_back_to_malloc(self, runtime):
        alloc = runtime.allocator_auto(4096)
        assert isinstance(alloc, MallocAllocator)
        assert runtime.machine.stats["allocator.fallbacks"] == 1

    def test_both_provide_same_interface(self, runtime):
        for size in (24, 4096):
            alloc = runtime.allocator_auto(size)
            addr = alloc.allocate()
            assert isinstance(addr, int)
            alloc.deallocate(addr)
            assert alloc.fragmentation() >= 0.0


class TestMallocAllocator:
    def test_line_aligned(self, runtime):
        alloc = MallocAllocator(runtime, 1000)
        addr = alloc.allocate()
        assert addr % 64 == 0

    def test_padded_in_dram(self, runtime):
        alloc = MallocAllocator(runtime, 1000)
        assert alloc.dram_bytes_per_object() == 1024
        assert alloc.fragmentation() == pytest.approx(24 / 1024)

    def test_no_translation_entry(self, runtime):
        before = len(runtime.mapping)
        MallocAllocator(runtime, 1000).allocate()
        assert len(runtime.mapping) == before

    def test_objects_spread_across_banks(self, runtime):
        alloc = MallocAllocator(runtime, 1000)
        addr = alloc.allocate()
        hierarchy = runtime.machine.hierarchy
        lines = range(addr // 64, (addr + 999) // 64 + 1)
        assert len({hierarchy.bank_of(line) for line in lines}) > 1


class TestPagedMorph:
    def test_first_touch_constructs_page(self, machine, runtime):
        constructed = []

        def ctor(index):
            constructed.append(index)
            yield Compute(1)

        morph = PagedMorph(runtime, n_actors=100, object_size=512, construct=ctor)

        def prog():
            yield from morph.touch(3)

        run_program(machine, prog())
        # 4096 / 512 = 8 objects per page.
        assert constructed == list(range(8))
        assert machine.stats["fallback.page_constructions"] == 1

    def test_second_touch_free(self, machine, runtime):
        count = []

        def ctor(index):
            count.append(index)
            yield Compute(1)

        morph = PagedMorph(runtime, n_actors=100, object_size=512, construct=ctor)

        def prog():
            yield from morph.touch(0)
            yield from morph.touch(1)  # same page

        run_program(machine, prog())
        assert len(count) == 8

    def test_evict_all_runs_destructors(self, machine, runtime):
        destructed = []

        def dtor(index):
            destructed.append(index)
            yield Compute(1)

        morph = PagedMorph(runtime, n_actors=16, object_size=512, destruct=dtor)

        def prog():
            yield from morph.touch(0)
            yield from morph.evict_all()

        run_program(machine, prog())
        assert destructed == list(range(8))
        assert machine.stats["fallback.page_destructions"] == 1

    def test_actor_addr(self, runtime):
        morph = PagedMorph(runtime, n_actors=16, object_size=512)
        assert morph.actor_addr(2) - morph.actor_addr(0) == 1024


class TestThreadPairStream:
    def test_end_to_end(self, machine, runtime):
        stream = ThreadPairStream(
            runtime, object_size=512, buffer_entries=4, producer_tile=0, consumer_tile=1
        )
        got = []

        def producer():
            for i in range(20):
                yield from stream.push(i)
            stream.close()

        def consumer():
            while True:
                value = yield from stream.pop()
                if value is ThreadPairStream.END:
                    return
                got.append(value)

        machine.spawn(producer(), tile=0)
        machine.spawn(consumer(), tile=1)
        machine.run()
        assert got == list(range(20))

    def test_runs_on_cores_not_engines(self, machine, runtime):
        stream = ThreadPairStream(
            runtime, object_size=512, buffer_entries=4, producer_tile=0, consumer_tile=1
        )

        def producer():
            yield from stream.push(1)
            stream.close()

        def consumer():
            yield from stream.pop()

        machine.spawn(producer(), tile=0)
        machine.spawn(consumer(), tile=1)
        machine.run()
        assert machine.stats["engine.instructions"] == 0

    def test_backpressure_bounds_occupancy(self, machine, runtime):
        stream = ThreadPairStream(
            runtime, object_size=64, buffer_entries=2, producer_tile=0, consumer_tile=1
        )
        peak = []

        def producer():
            for i in range(10):
                yield from stream.push(i)
                peak.append(stream.tail - stream.head)
            stream.close()

        got = []

        def consumer():
            while True:
                value = yield from stream.pop()
                if value is ThreadPairStream.END:
                    return
                got.append(value)

        machine.spawn(producer(), tile=0)
        machine.spawn(consumer(), tile=1)
        machine.run()
        assert got == list(range(10))
        assert max(peak) <= 2

    def test_close_wakes_blocked_consumer(self, machine, runtime):
        stream = ThreadPairStream(
            runtime, object_size=64, buffer_entries=4, producer_tile=0, consumer_tile=1
        )
        ended = []

        def consumer():
            value = yield from stream.pop()  # blocks: nothing produced
            ended.append(value is ThreadPairStream.END)

        def producer():
            yield Compute(100)
            stream.close()

        machine.spawn(consumer(), tile=1)
        machine.spawn(producer(), tile=0)
        machine.run()
        assert ended == [True]

    def test_slots_are_line_aligned(self, runtime):
        stream = ThreadPairStream(
            runtime, object_size=100, buffer_entries=4, producer_tile=0, consumer_tile=1
        )
        assert stream.slot_size == 128
        assert stream.slot_addr(0) % 64 == 0
        assert stream.slot_addr(5) == stream.slot_addr(1)


class TestDegradedStream:
    """A Stream whose producer engine failed collapses to the queue."""

    def _degraded_stream(self, machine, runtime, n=12, buffer_entries=16):
        from repro.core.stream import Stream
        from repro.sim.faults import FaultPlan

        FaultPlan.parse("crash:1").attach(machine)

        class Producer(Stream):
            def gen_stream(self, env):
                for i in range(n):
                    yield from self.push(i * 10)

        return Producer(
            runtime,
            object_size=8,
            buffer_entries=buffer_entries,
            consumer_tile=0,
            producer_tile=1,
        )

    def test_push_and_consume_through_queue(self, machine, runtime):
        from repro.core.stream import STREAM_END

        stream = self._degraded_stream(machine, runtime)
        got = []

        def consumer():
            while True:
                value = yield from stream.consume()
                if value is STREAM_END:
                    return
                got.append(value)

        def starter():
            yield Compute(1)
            stream.start()
            machine.spawn(consumer(), tile=0)

        machine.spawn(starter(), tile=0)
        machine.run()
        assert got == [i * 10 for i in range(12)]
        assert machine.stats["stream.degraded"] == 1
        # The phantom range was unregistered: no data-triggered actions.
        assert not stream.registered
        assert machine.stats["engine.instructions"] == 0

    def test_terminate_unblocks_degraded_producer(self, machine, runtime):
        stream = self._degraded_stream(machine, runtime, n=50, buffer_entries=16)

        def consumer():
            for _ in range(3):
                yield from stream.consume()
            stream.terminate()

        def starter():
            yield Compute(1)
            stream.start()
            machine.spawn(consumer(), tile=0)

        machine.spawn(starter(), tile=0)
        machine.run()  # terminates: the blocked producer is released
        assert machine.stats["stream.terminated_early"] == 1

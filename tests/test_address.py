"""Unit and property tests for addresses, regions, and spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.address import AddressSpace, Region


class TestRegion:
    def test_contains(self):
        region = Region(0x100, 0x40)
        assert region.contains(0x100)
        assert region.contains(0x13F)
        assert not region.contains(0x140)
        assert not region.contains(0xFF)

    def test_end(self):
        assert Region(0x100, 0x40).end == 0x140

    def test_overlaps(self):
        a = Region(0, 16)
        assert a.overlaps(Region(8, 16))
        assert not a.overlaps(Region(16, 16))

    def test_offset_of(self):
        region = Region(0x100, 0x40)
        assert region.offset_of(0x110) == 0x10
        with pytest.raises(ValueError):
            region.offset_of(0x200)


class TestAddressSpace:
    def test_alloc_disjoint(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert b >= a + 100

    def test_alloc_alignment(self):
        space = AddressSpace()
        addr = space.alloc(10, align=64)
        assert addr % 64 == 0

    def test_alloc_rejects_bad_sizes(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.alloc(0)
        with pytest.raises(ValueError):
            space.alloc(8, align=3)

    def test_dram_space_is_disjoint_from_cache_space(self):
        space = AddressSpace()
        cache_addr = space.alloc(1 << 20)
        dram_addr = space.alloc_dram(1 << 20)
        assert dram_addr >= AddressSpace.DRAM_BASE
        assert cache_addr < AddressSpace.DRAM_BASE

    def test_alloc_region(self):
        space = AddressSpace()
        region = space.alloc_region(100)
        assert region.size == 100
        assert region.base % 64 == 0

    def test_line_of(self):
        space = AddressSpace(line_size=64)
        assert space.line_of(0) == 0
        assert space.line_of(63) == 0
        assert space.line_of(64) == 1

    def test_line_base(self):
        space = AddressSpace(line_size=64)
        assert space.line_base(0x7F) == 0x40

    def test_lines_touched_single(self):
        space = AddressSpace(line_size=64)
        assert list(space.lines_touched(0, 8)) == [0]

    def test_lines_touched_straddle(self):
        space = AddressSpace(line_size=64)
        assert list(space.lines_touched(60, 8)) == [0, 1]

    def test_lines_touched_multi_line(self):
        space = AddressSpace(line_size=64)
        assert list(space.lines_touched(0, 256)) == [0, 1, 2, 3]


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=30),
    align=st.sampled_from([1, 8, 64, 256]),
)
def test_property_allocations_never_overlap(sizes, align):
    space = AddressSpace()
    regions = []
    for size in sizes:
        base = space.alloc(size, align=align)
        assert base % align == 0
        regions.append(Region(base, size))
    for i, a in enumerate(regions):
        for b in regions[i + 1 :]:
            assert not a.overlaps(b)


@settings(max_examples=80, deadline=None)
@given(addr=st.integers(min_value=0, max_value=1 << 30), size=st.integers(1, 1024))
def test_property_lines_touched_cover_access(addr, size):
    space = AddressSpace(line_size=64)
    lines = list(space.lines_touched(addr, size))
    assert lines[0] == addr // 64
    assert lines[-1] == (addr + size - 1) // 64
    assert lines == sorted(lines)

"""Unit tests for the operation vocabulary."""

import pytest

from repro.sim.ops import (
    AtomicRMW,
    Branch,
    Compute,
    Fence,
    Load,
    Prefetch,
    SetPhase,
    Sleep,
    Store,
)
from tests.conftest import run_program


class TestCompute:
    def test_core_latency_uses_ipc(self, machine):
        final = run_program(machine, iter([Compute(9)]))
        assert final == pytest.approx(9 / machine.config.core.ipc)

    def test_counts_instructions(self, machine):
        run_program(machine, iter([Compute(9)]))
        assert machine.stats["core.instructions"] == 9

    def test_zero_instructions_free(self, machine):
        assert run_program(machine, iter([Compute(0)])) == 0


class TestBranch:
    def test_predicted_branch_cheap(self, machine):
        final = run_program(machine, iter([Branch(mispredicted=False)]))
        assert final < machine.config.core.branch_miss_penalty

    def test_mispredicted_branch_pays_penalty(self, machine):
        final = run_program(machine, iter([Branch(mispredicted=True)]))
        assert final >= machine.config.core.branch_miss_penalty
        assert machine.stats["core.branch_mispredictions"] == 1


class TestLoadsStores:
    def test_load_reaches_memory(self, machine):
        run_program(machine, iter([Load(0x10000, 8)]))
        assert machine.stats["l1.accesses"] == 1
        assert machine.stats["dram.accesses"] == 1

    def test_store_marks_dirty(self, machine):
        run_program(machine, iter([Store(0x10000, 8)]))
        line = machine.hierarchy.line_of(0x10000)
        assert machine.hierarchy.l1[0].lookup(line, touch=False).dirty

    def test_apply_callback_runs(self, machine):
        seen = []
        run_program(machine, iter([Store(0x10000, 8, apply=lambda: seen.append(1))]))
        assert seen == [1]

    def test_load_apply_callback(self, machine):
        seen = []
        run_program(machine, iter([Load(0x10000, 8, apply=lambda: seen.append(1))]))
        assert seen == [1]


class TestAtomics:
    def test_fenced_atomic_pays_fence(self, machine):
        relaxed_machine_time = None

        def relaxed():
            yield AtomicRMW(0x10000, 8, fenced=False)

        def fenced():
            yield AtomicRMW(0x10000, 8, fenced=True)

        from repro.sim.config import small_config
        from repro.sim.system import Machine

        m1 = Machine(small_config())
        t_relaxed = run_program(m1, relaxed())
        m2 = Machine(small_config())
        t_fenced = run_program(m2, fenced())
        assert t_fenced == pytest.approx(
            t_relaxed + m2.config.core.fence_penalty
        )
        assert m2.stats["core.fences"] == 1
        assert m1.stats["core.fences"] == 0

    def test_atomic_counts(self, machine):
        run_program(machine, iter([AtomicRMW(0x10000, 8)]))
        assert machine.stats["core.atomics"] == 1

    def test_fence_op(self, machine):
        final = run_program(machine, iter([Fence()]))
        assert final == machine.config.core.fence_penalty


class TestMisc:
    def test_sleep(self, machine):
        assert run_program(machine, iter([Sleep(123)])) == 123

    def test_sleep_negative_clamped(self, machine):
        assert run_program(machine, iter([Sleep(-5)])) == 0

    def test_set_phase(self, machine):
        def prog():
            yield SetPhase("warm")
            yield Compute(3)
            yield SetPhase(None)
            yield Compute(3)

        run_program(machine, prog())
        assert machine.stats["warm/core.instructions"] == 3
        assert machine.stats["core.instructions"] == 6

    def test_prefetch_is_cheap_but_warms(self, machine):
        final = run_program(machine, iter([Prefetch(0x10000)]))
        assert final <= 2
        line = machine.hierarchy.line_of(0x10000)
        assert machine.hierarchy.l1[0].contains(line)


class TestEngineTiming:
    def test_engine_compute_uses_fabric_timing(self, machine):
        def prog():
            yield Compute(10)

        machine.spawn(prog(), tile=0, is_engine=True)
        final = machine.run()
        engine = machine.config.engine
        assert final == pytest.approx(10 * engine.pe_latency / engine.issue_width)
        assert machine.stats["engine.instructions"] == 10

    def test_ideal_engine_compute_is_free(self):
        from repro.sim.config import small_config
        from repro.sim.system import Machine

        machine = Machine(small_config(**{"engine.ideal": True}))

        def prog():
            yield Compute(1000)

        machine.spawn(prog(), tile=0, is_engine=True)
        assert machine.run() == 0

    def test_engine_has_no_mispredictions(self, machine):
        def prog():
            yield Branch(mispredicted=True)

        machine.spawn(prog(), tile=0, is_engine=True)
        machine.run()
        assert machine.stats["core.branch_mispredictions"] == 0

    def test_engine_fence_free(self, machine):
        def prog():
            yield Fence()

        machine.spawn(prog(), tile=0, is_engine=True)
        assert machine.run() == 0

"""Unit tests for the NDC taxonomy (Tables I-III)."""

import pytest

from repro import taxonomy


class TestParadigms:
    def test_four_paradigms(self):
        assert len(taxonomy.PARADIGMS) == 4

    def test_taxonomy_coordinates_unique(self):
        coords = {(p.small_tasks, p.talks_to_cores) for p in taxonomy.PARADIGMS}
        assert len(coords) == 4

    def test_classify(self):
        assert taxonomy.classify(True, True) is taxonomy.TASK_OFFLOAD
        assert taxonomy.classify(False, False) is taxonomy.LONG_LIVED
        assert taxonomy.classify(True, False) is taxonomy.DATA_TRIGGERED
        assert taxonomy.classify(False, True) is taxonomy.STREAMING

    def test_prior_work_nonempty(self):
        for paradigm in taxonomy.PARADIGMS:
            assert paradigm.prior_work

    def test_paper_exemplars_present(self):
        assert "Livia" in taxonomy.TASK_OFFLOAD.prior_work
        assert "PHI" in taxonomy.DATA_TRIGGERED.prior_work
        assert "HATS" in taxonomy.STREAMING.prior_work

    def test_analogies(self):
        # Sec. II-C's rough analogy set.
        assert "function" in taxonomy.TASK_OFFLOAD.analogy
        assert "thread" in taxonomy.LONG_LIVED.analogy
        assert "interrupt" in taxonomy.DATA_TRIGGERED.analogy
        assert "socket" in taxonomy.STREAMING.analogy


class TestTables:
    def test_table1_rows(self):
        rows = taxonomy.table1()
        assert len(rows) == 4
        assert rows[0][0] == "Task offload"

    def test_table2_actions(self):
        actions = dict(taxonomy.table2())
        assert "constructor" in actions["Data-triggered actions"].lower()
        assert "producer" in actions["Streaming"].lower()

    def test_table3_merges_long_lived(self):
        rows = taxonomy.table3()
        assert len(rows) == 3
        names = [r[0] for r in rows]
        assert "Long-lived workloads" not in names

    def test_table3_support_fields(self):
        support = {name: (core, cache, engine) for name, core, cache, engine in taxonomy.table3()}
        assert "invoke" in support["Task offload"][0]
        assert "tag bits" in support["Data-triggered actions"][1]
        assert "stream" in support["Streaming"][2]

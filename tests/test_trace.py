"""Unit tests for the optional tracer."""

from repro.sim.ops import Load, Store
from repro.sim.trace import Tracer
from tests.conftest import run_program


class TestTracer:
    def test_records_watched_accesses(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        run_program(machine, [Load(0x10008, 8), Store(0x20000, 8)])
        assert len(tracer) == 1
        assert tracer.count(containing="hot") == 1
        assert "load 8B" in tracer.render()

    def test_unwatched_accesses_ignored(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        run_program(machine, [Load(0x50000, 8)])
        assert len(tracer) == 0

    def test_detach_restores_path(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        tracer.detach()
        run_program(machine, [Load(0x10008, 8)])
        assert len(tracer) == 0

    def test_engine_accesses_labelled(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")

        def prog():
            yield Store(0x10000, 8)

        machine.spawn(prog(), tile=2, is_engine=True)
        machine.run()
        assert tracer.count(containing="engine2") == 1

    def test_bounded(self, machine):
        tracer = Tracer(machine, max_events=5).watch_range(0, 1 << 30, "all")
        run_program(machine, [Load(0x10000 + i * 64, 8) for i in range(20)])
        assert len(tracer) == 5

    def test_truncation_is_counted_and_rendered(self, machine):
        tracer = Tracer(machine, max_events=5).watch_range(0, 1 << 30, "all")
        run_program(machine, [Load(0x10000 + i * 64, 8) for i in range(20)])
        assert tracer.dropped == 15
        rendered = tracer.render()
        assert "15 events dropped" in rendered
        assert "max_events=5" in rendered

    def test_no_truncation_no_dropped_line(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        run_program(machine, [Load(0x10008, 8)])
        assert tracer.dropped == 0
        assert "dropped" not in tracer.render()

    def test_detach_twice_is_safe(self, machine):
        tracer = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        tracer.detach()
        tracer.detach()
        run_program(machine, [Load(0x10008, 8)])
        assert len(tracer) == 0
        assert not machine.events.active

    def test_two_tracers_record_independently(self, machine):
        hot = Tracer(machine).watch_range(0x10000, 0x10100, "hot")
        cold = Tracer(machine).watch_range(0x20000, 0x20100, "cold")
        run_program(machine, [Load(0x10008, 8), Store(0x20000, 8)])
        assert hot.count(containing="hot") == 1 and len(hot) == 1
        assert cold.count(containing="cold") == 1 and len(cold) == 1
        # Detaching one must not disturb the other.
        hot.detach()
        run_program(machine, [Load(0x20008, 8)])
        assert len(hot) == 1
        assert len(cold) == 2

    def test_morph_constructions_traced(self, machine, runtime):
        from repro.core.morph import Morph

        class Phantom(Morph):
            def construct(self, view, index):
                return
                yield  # pragma: no cover

        morph = Phantom(runtime, level="l2", n_actors=8, object_size=64)
        tracer = Tracer(machine).watch_range(morph.base, morph.bound, "phantom")
        run_program(machine, [Load(morph.get_actor_addr(0), 8)])
        assert tracer.count(kind="construct") == 1

    def test_tracing_does_not_change_timing(self):
        from repro.sim.config import small_config
        from repro.sim.system import Machine

        def prog():
            for i in range(32):
                yield Load(0x10000 + i * 64, 8)

        plain = Machine(small_config())
        plain.spawn(prog(), tile=0)
        plain_time = plain.run()

        traced = Machine(small_config())
        Tracer(traced).watch_range(0x10000, 0x20000, "x")
        traced.spawn(prog(), tile=0)
        traced_time = traced.run()
        assert traced_time == plain_time


class TestStreamFutureApi:
    def test_next_wait_equivalent_to_consume(self, machine, runtime):
        from repro.core.stream import STREAM_END
        from tests.test_stream import RangeStream

        stream = RangeStream(runtime, count=10)
        stream.start()
        got = []

        def consumer():
            while True:
                future = stream.next()
                value = yield from future.wait()
                if value is STREAM_END:
                    return
                got.append(value)

        machine.spawn(consumer(), tile=0)
        machine.run()
        assert got == list(range(10))

"""Latency-attribution invariants and the ``explain`` engine.

The contract of the critical-path attribution layer:

- per span, the component partition sums EXACTLY to the span's
  end-to-end latency (the taxonomy is a partition, not a sampling);
- fault-free serving runs attribute ~100% of request cycles to named
  components;
- attribution is a pure observer: macro figures (fig18 hash table)
  are bit-identical with and without a telemetry session attached;
- offline attribution rebuilt from ``trace.json`` agrees with the
  rollup the live session computed;
- orphaned lifecycle events (an end without a beginning) are counted,
  never silently folded into a span;
- ``leviathan explain`` renders waterfalls for run dirs and cached
  results, and ``--diff`` attributes a latency delta.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.actor import Actor, action
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.experiments import explain as explain_mod
from repro.experiments.cli import main as cli_main
from repro.experiments.pool import encode_result
from repro.experiments.telemetry_report import (
    aggregate_sweep,
    render_dashboard,
)
from repro.sim.config import small_config
from repro.sim.ops import Compute, Load, Store
from repro.sim.system import Machine
from repro.sim.telemetry import Telemetry, TelemetrySession
from repro.sim.telemetry.critpath import (
    ATTRIBUTED,
    COMPONENTS,
    _fit_exact,
    attribute_span,
    rollup_spans,
    spans_from_trace,
)
from repro.sim.telemetry.spans import SpanTracker
from repro.workloads import hashtable
from repro.workloads.serving import kvserve

KV_SMALL = dict(
    n_clients=2,
    requests_per_client=8,
    n_keys=64,
    mean_gap=30,
    scan_len=4,
    stream_buffer=16,
    seed=5,
)
HT_SMALL = dict(
    n_buckets=16,
    nodes_per_bucket=8,
    n_threads=8,
    lookups_per_thread=16,
    object_size=64,
)


class Cell(Actor):
    SIZE = 8

    @action
    def poke(self, env, amount=1):
        yield Load(self.addr, 8)
        yield Compute(1)
        mem = env.machine.mem
        yield Store(
            self.addr,
            8,
            apply=lambda: mem.__setitem__(
                self.addr, mem.get(self.addr, 0) + amount
            ),
        )


def _kv_session():
    """One kvserve run observed by a telemetry session."""
    with TelemetrySession() as session:
        kvserve.run_leviathan(KV_SMALL, n_tiles=4)
    telemetry = session.telemetries[0]
    telemetry.finalize()
    return telemetry


def _request_spans(telemetry):
    return [
        s
        for s in telemetry.spans.finished
        if s.cat in ("invoke", "stream")
    ]


class TestFitExact:
    def test_partition_is_exact_and_proportional(self):
        fitted = _fit_exact([1.0, 3.0, 0.1], 10.0)
        assert sum(fitted) == 10.0
        assert fitted[1] == pytest.approx(3 * fitted[0], rel=1e-9)
        assert all(v >= 0.0 for v in fitted)

    def test_zero_estimates_yield_zeros(self):
        assert _fit_exact([0.0, 0.0], 10.0) == [0.0, 0.0]
        assert _fit_exact([5.0], 0.0) == [0.0]


class TestExactPartition:
    def test_every_request_span_sums_to_its_latency(self):
        telemetry = _kv_session()
        spans = _request_spans(telemetry)
        assert len(spans) > 10
        for span in spans:
            comps = attribute_span(span)
            assert set(comps) == set(COMPONENTS)
            assert all(v >= 0.0 for v in comps.values()), (span, comps)
            assert sum(comps.values()) == pytest.approx(
                span.duration, abs=1e-6
            ), (span, comps)

    def test_fault_free_coverage_is_total(self):
        telemetry = _kv_session()
        assert telemetry.attribution.coverage() == pytest.approx(
            1.0, abs=1e-9
        )
        for cls, entry in telemetry.attribution.snapshot().items():
            assert entry["coverage"] == pytest.approx(1.0, abs=1e-9), cls

    def test_rollup_cycles_equal_span_latency_total(self):
        telemetry = _kv_session()
        snapshot = telemetry.attribution.snapshot()
        total = sum(e["cycles"] for e in snapshot.values())
        spans = _request_spans(telemetry)
        assert total == pytest.approx(
            sum(s.duration for s in spans), rel=1e-12
        )
        # The waterfall itself sums to the end-to-end latency.
        for cls, entry in snapshot.items():
            component_total = sum(
                c["total"] for c in entry["components"].values()
            )
            assert component_total == pytest.approx(
                entry["cycles"], rel=1e-9, abs=1e-6
            ), cls


class TestObserverPurity:
    @pytest.mark.parametrize(
        "run", [hashtable.run_baseline, hashtable.run_leviathan]
    )
    def test_fig18_bit_identical_with_session_attached(self, run):
        bare = run(dict(HT_SMALL))
        with TelemetrySession() as session:
            observed = run(dict(HT_SMALL))
        assert session.telemetries, "session saw no machine"
        assert observed.cycles == bare.cycles
        assert observed.output == bare.output
        assert observed.stats == bare.stats
        assert observed.energy_pj == bare.energy_pj


def _approx_equal(a, b, path=""):
    """Recursive comparison tolerating float accumulation-order drift."""
    if isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            _approx_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, float) or isinstance(b, float):
        assert b == pytest.approx(a, rel=1e-9, abs=1e-6), path
    else:
        assert a == b, path


class TestOfflineAgreement:
    def test_trace_rebuild_matches_live_rollup(self, tmp_path):
        telemetry = _kv_session()
        outdir = tmp_path / "machine-00"
        telemetry.save(str(outdir))
        with open(outdir / "trace.json") as handle:
            trace = json.load(handle)
        rebuilt = rollup_spans(spans_from_trace(trace))
        _approx_equal(telemetry.attribution.snapshot(), rebuilt.snapshot())

    def test_attribution_json_round_trips(self, tmp_path):
        telemetry = _kv_session()
        outdir = tmp_path / "machine-00"
        telemetry.save(str(outdir))
        with open(outdir / "attribution.json") as handle:
            payload = json.load(handle)
        assert payload["coverage"] == pytest.approx(1.0, abs=1e-9)
        assert set(payload["classes"]) == {"get", "put", "scan"}
        assert payload["meta"]["spans_orphaned"] == 0


class TestOrphanAccounting:
    def _ev(self, cid, time=10.0):
        return SimpleNamespace(cid=cid, time=time, tile=0, accepted=True)

    def test_end_without_begin_counts_orphan(self):
        tracker = SpanTracker()
        tracker.future_filled(self._ev(cid=999))
        tracker.engine_start(self._ev(cid=998))
        assert tracker.orphans == 2

    def test_post_close_chatter_is_not_an_orphan(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        telemetry = Telemetry(machine)
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=0)
        machine.run()
        telemetry.finalize()
        assert telemetry.spans.orphans == 0

    def test_cap_dropped_span_events_are_not_orphans(self):
        machine = Machine(small_config())
        runtime = Leviathan(machine)
        telemetry = Telemetry(machine)
        telemetry.spans.max_spans = 1
        cell = runtime.allocator_for(Cell, capacity=8).allocate()

        def prog():
            for _ in range(5):
                yield Invoke(cell, "poke", (1,), location=Location.REMOTE)

        machine.spawn(prog(), tile=0)
        machine.run()
        telemetry.finalize()
        assert telemetry.spans.dropped > 0
        assert telemetry.spans.orphans == 0


@pytest.fixture(scope="module")
def kv_artifacts(tmp_path_factory):
    """Saved artifacts + cached-result entries for one kvserve study."""
    root = tmp_path_factory.mktemp("explain")
    with TelemetrySession() as session:
        lev = kvserve.run_leviathan(KV_SMALL, n_tiles=4)
    telemetry = session.telemetries[0]
    run_dir = root / "runs" / "serve-kv-leviathan-abc" / "machine-00"
    telemetry.save(str(run_dir))
    base = kvserve.run_baseline(KV_SMALL, n_tiles=4)
    lev_entry = root / "lev.json"
    base_entry = root / "base.json"
    lev_entry.write_text(json.dumps({"result": encode_result(lev)}))
    base_entry.write_text(json.dumps({"result": encode_result(base)}))
    return {
        "root": root,
        "run_dir": run_dir,
        "telemetry": telemetry,
        "lev": lev,
        "lev_entry": lev_entry,
        "base_entry": base_entry,
    }


class TestExplain:
    def test_run_dir_report_matches_live_session(self, kv_artifacts):
        report = explain_mod.analyze(str(kv_artifacts["run_dir"]))
        telemetry = kv_artifacts["telemetry"]
        assert report["source_kind"] == "run-dir"
        assert report["coverage"] == pytest.approx(
            telemetry.attribution.coverage(), abs=1e-9
        )
        _approx_equal(
            telemetry.attribution.snapshot(), report["classes"]
        )

    def test_sweep_root_aggregates(self, kv_artifacts):
        report = explain_mod.analyze(str(kv_artifacts["root"]))
        assert report["machines"] == [str(kv_artifacts["run_dir"])]
        assert report["requests"] > 0

    def test_waterfall_markdown_fields(self, kv_artifacts):
        report = explain_mod.analyze(str(kv_artifacts["run_dir"]))
        text = explain_mod.render_markdown(report)
        assert "# Latency attribution:" in text
        assert "attribution coverage: **100.00%**" in text
        for cls in ("get", "put", "scan"):
            assert f"## {cls}" in text
        assert "| component | cycles | share | p50 | p95 | p99 |" in text

    def test_cache_entry_unflattens_stats(self, kv_artifacts):
        report = explain_mod.analyze(str(kv_artifacts["lev_entry"]))
        lev = kv_artifacts["lev"]
        assert report["source_kind"] == "cache-entry"
        assert report["coverage"] >= 0.99
        for cls in ("get", "put", "scan"):
            entry = report["classes"][cls]
            assert entry["count"] == lev.stat(f"attribution.{cls}.count")
            assert entry["cycles"] == pytest.approx(
                lev.stat(f"attribution.{cls}.cycles")
            )
            for component in COMPONENTS:
                assert entry["components"][component][
                    "total"
                ] == pytest.approx(
                    lev.stat(f"attribution.{cls}.{component}.total")
                )

    def test_diff_attributes_the_delta(self, kv_artifacts):
        diff = explain_mod.diff_reports(
            explain_mod.analyze(str(kv_artifacts["base_entry"])),
            explain_mod.analyze(str(kv_artifacts["lev_entry"])),
        )
        assert diff["machine_cycles_delta"] != 0
        get = diff["classes"]["get"]
        # Baseline records zero offloads; the whole mean is the delta.
        assert get["count_a"] == 0 and get["count_b"] > 0
        assert get["delta_mean"] == pytest.approx(get["mean_b"])
        component_delta = sum(
            c["delta_per_request"] for c in get["components"].values()
        )
        assert component_delta == pytest.approx(
            get["delta_mean"], rel=1e-9, abs=1e-6
        )
        text = explain_mod.render_diff_markdown(diff)
        assert "# Latency attribution diff" in text
        assert "| component | A cycles/req | B cycles/req |" in text

    def test_nonexistent_target_raises(self):
        with pytest.raises(FileNotFoundError):
            explain_mod.analyze("/nonexistent/run-dir")


class TestExplainCli:
    def test_explain_run_dir_writes_artifacts(self, kv_artifacts, capsys):
        run_dir = kv_artifacts["run_dir"]
        assert cli_main(["explain", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Latency attribution" in out
        report = json.loads((run_dir / "explain.json").read_text())
        assert report["kind"] == "leviathan-explain"
        assert (run_dir / "explain.md").exists()

    def test_explain_diff_exit_code_and_output(self, kv_artifacts, capsys):
        code = cli_main(
            [
                "explain",
                "--diff",
                str(kv_artifacts["base_entry"]),
                str(kv_artifacts["lev_entry"]),
            ]
        )
        assert code == 0
        assert "Latency attribution diff" in capsys.readouterr().out

    def test_explain_without_target_is_usage_error(self, capsys):
        assert cli_main(["explain"]) == 2

    def test_explain_bad_target_is_usage_error(self, capsys):
        assert cli_main(["explain", "/nonexistent/whatever"]) == 2


class TestDocsExample:
    """docs/observability.md's "Why is this run slow?" section is
    executed, not aspirational: the documented commands run and emit
    the documented report shape."""

    DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"

    def test_section_documents_the_real_commands(self):
        text = self.DOC.read_text()
        assert "## Why is this run slow? (`leviathan-repro explain`)" in text
        assert "leviathan-repro explain zoo-telemetry" in text
        assert "explain --diff" in text
        for component in ATTRIBUTED:
            assert f"`{component}`" in text or component in text

    def test_documented_explain_runs_and_matches_shape(
        self, kv_artifacts, capsys
    ):
        assert cli_main(["explain", str(kv_artifacts["run_dir"])]) == 0
        out = capsys.readouterr().out
        for marker in (
            "# Latency attribution:",
            "attribution coverage: **100.00%**",
            "| component | cycles | share | p50 | p95 | p99 |",
        ):
            assert marker in out
            assert marker.split("**")[0].strip() in self.DOC.read_text()

    def test_documented_diff_runs_and_matches_shape(
        self, kv_artifacts, capsys
    ):
        code = cli_main(
            [
                "explain",
                "--diff",
                str(kv_artifacts["base_entry"]),
                str(kv_artifacts["lev_entry"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        doc = self.DOC.read_text()
        for marker in (
            "# Latency attribution diff",
            "| component | A cycles/req | B cycles/req | delta |",
        ):
            assert marker in out
            assert marker in doc


class TestDashboardWaterfall:
    def test_sweep_aggregation_carries_attribution(self, kv_artifacts):
        agg = aggregate_sweep(str(kv_artifacts["root"]))
        attribution = agg["attribution"]
        assert set(attribution) == {"get", "put", "scan"}
        for entry in attribution.values():
            assert entry["coverage"] == pytest.approx(1.0, abs=1e-9)
            total = sum(c["total"] for c in entry["components"].values())
            assert total == pytest.approx(
                entry["cycles"], rel=1e-9, abs=1e-6
            )
        text = render_dashboard(agg)
        assert "Latency attribution waterfall" in text
        assert "| class | component | cycles | share | p50 | p95 | p99 |" in text

"""Unit tests for memory controllers, FIFO caches, and bandwidth."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.dram import FifoCache, MemoryController, MemorySystem
from repro.sim.noc import MeshNoc
from repro.sim.stats import Stats


def make_mc(fifo_lines=32):
    cfg = SystemConfig()
    cfg.memory.fifo_lines = fifo_lines
    return MemoryController(0, cfg, Stats())


class TestFifoCache:
    def test_probe_miss_then_hit(self):
        fifo = FifoCache(4)
        assert not fifo.probe(1)
        fifo.insert(1)
        assert fifo.probe(1)

    def test_fifo_order_eviction(self):
        fifo = FifoCache(2)
        fifo.insert(1)
        fifo.insert(2)
        fifo.insert(3)  # evicts 1 (oldest)
        assert not fifo.probe(1)
        assert fifo.probe(2) and fifo.probe(3)

    def test_duplicate_insert_no_growth(self):
        fifo = FifoCache(4)
        fifo.insert(1)
        fifo.insert(1)
        assert len(fifo) == 1

    def test_zero_capacity_never_holds(self):
        fifo = FifoCache(0)
        fifo.insert(1)
        assert not fifo.probe(1)

    def test_invalidate(self):
        fifo = FifoCache(4)
        fifo.insert(1)
        fifo.invalidate(1)
        assert not fifo.probe(1)


class TestMemoryController:
    def test_read_miss_costs_dram_latency(self):
        mc = make_mc()
        latency = mc.access(10, is_write=False, now=0)
        assert latency >= mc.config.latency
        assert mc.stats["dram.accesses"] == 1

    def test_read_hit_in_fifo_is_cheap(self):
        mc = make_mc()
        mc.access(10, now=0)
        latency = mc.access(10, now=1000)
        assert latency == MemoryController.FIFO_HIT_LATENCY
        assert mc.stats["mc_cache.hits"] == 1
        assert mc.stats["dram.accesses"] == 1  # no second DRAM access

    def test_write_always_reaches_dram(self):
        mc = make_mc()
        mc.access(10, now=0)  # fill fifo
        mc.access(10, is_write=True, now=1000)
        assert mc.stats["dram.writes"] == 1

    def test_bandwidth_queueing(self):
        """Back-to-back accesses at one controller queue behind each other."""
        mc = make_mc(fifo_lines=0)
        first = mc.access(1, now=0)
        second = mc.access(2, now=0)
        assert second > first  # paid queueing delay
        assert mc.stats["dram.queue_cycles"] > 0

    def test_no_queueing_when_spread_in_time(self):
        mc = make_mc(fifo_lines=0)
        lat1 = mc.access(1, now=0)
        lat2 = mc.access(2, now=10_000)
        assert lat2 == pytest.approx(lat1)


class TestMemorySystem:
    def make(self, n_tiles=16):
        cfg = SystemConfig(n_tiles=n_tiles)
        stats = Stats()
        return MemorySystem(cfg, stats, MeshNoc(cfg, stats)), stats

    def test_lines_interleave_across_controllers(self):
        mem, _ = self.make()
        controllers = {mem.controller_of(line).index for line in range(8)}
        assert len(controllers) == 4

    def test_controller_tiles_are_spread(self):
        mem, _ = self.make()
        assert len(set(mem.controller_tiles)) == 4

    def test_access_accounts_noc(self):
        mem, stats = self.make()
        mem.access(from_tile=5, dram_lines=(3,), is_write=False, payload_bytes=64)
        assert stats["noc.messages"] == 2  # request + data response

    def test_write_access_single_message(self):
        mem, stats = self.make()
        mem.access(from_tile=5, dram_lines=(3,), is_write=True, payload_bytes=64)
        assert stats["noc.messages"] == 1

    def test_multi_line_access_parallel(self):
        mem, stats = self.make()
        # Two lines at different controllers proceed in parallel: the
        # latency is the max, not the sum.
        single = mem.access(0, (0,), False, 64)
        combined = mem.access(0, (1, 2), False, 64)
        assert combined < 2 * single
        assert stats["dram.accesses"] == 3

"""The paper's four case studies and their baselines.

Each module exposes ``run_<variant>()`` functions returning a
:class:`~repro.workloads.common.RunResult` plus a ``run_all()`` driver
used by the figure benchmarks:

- :mod:`repro.workloads.phi` -- commutative scatter-updates (Sec. IV,
  Fig. 5): baseline push PageRank, tākō with fenced and relaxed
  atomics, Leviathan, and the idealized engine.
- :mod:`repro.workloads.decompress` -- near-cache data transformation
  (Sec. VIII-A, Fig. 16): software decompression, task-offload (OL),
  Leviathan with and without padding, ideal.
- :mod:`repro.workloads.hashtable` -- hash-table lookups (Sec. VIII-B,
  Fig. 18): software chains vs. offloaded pointer chasing, with and
  without padding / LLC object mapping, across object sizes.
- :mod:`repro.workloads.hats` -- decoupled graph traversal
  (Sec. VIII-C, Figs. 20-21): PageRank order, software BDFS, tākō
  pseudo-streaming, Leviathan streams, ideal.
- :mod:`repro.workloads.components` -- connected components with
  commutative *min* combining: PHI generality beyond Fig. 5's
  PageRank (Sec. IV's "diversity of graph applications" point).
"""

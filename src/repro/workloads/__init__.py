"""The workloads: the paper's case studies and the serving zoo.

Each module exposes pure ``run_<variant>()`` entry points returning a
:class:`~repro.workloads.common.RunResult` (see ``docs/workloads.md``
for the full authoring contract). The paper's four case studies, plus
the connected-components generality ablation:

- :mod:`repro.workloads.phi` -- commutative scatter-updates (Sec. IV,
  Fig. 5): baseline push PageRank, tākō with fenced and relaxed
  atomics, Leviathan, and the idealized engine.
- :mod:`repro.workloads.decompress` -- near-cache data transformation
  (Sec. VIII-A, Fig. 16): software decompression, task-offload (OL),
  Leviathan with and without padding, ideal.
- :mod:`repro.workloads.hashtable` -- hash-table lookups (Sec. VIII-B,
  Fig. 18): software chains vs. offloaded pointer chasing, with and
  without padding / LLC object mapping, across object sizes.
- :mod:`repro.workloads.hats` -- decoupled graph traversal
  (Sec. VIII-C, Figs. 20-21): PageRank order, software BDFS, tākō
  pseudo-streaming, Leviathan streams, ideal.
- :mod:`repro.workloads.components` -- connected components with
  commutative *min* combining: PHI generality beyond Fig. 5's
  PageRank (Sec. IV's "diversity of graph applications" point).

The **serving zoo** (:mod:`repro.workloads.serving`) maps the same
four NDC paradigms onto serving- and storage-shaped traffic: KV
request serving with open-loop arrivals and tail-latency tracking,
morph-paged LLM KV-cache decode, near-storage scan/filter/join
pushdown, and a JSONL trace-replay driver. Shared generators live in
:mod:`repro.workloads.distributions`; shared result types in
:mod:`repro.workloads.common`.
"""

"""Synthetic graph generators and the CSR representation.

Two generators stand in for the paper's inputs (per the substitution
table in DESIGN.md):

- :func:`uniform_graph` -- uniformly random edges, the stand-in for the
  paper's "4M vertex, 40M edge synthetic graph" in the PHI study
  (scatter-updates hit random destinations).
- :func:`community_graph` -- strong community structure with shuffled
  vertex ids, the stand-in for uk-2002 in the HATS study: consecutive
  CSR traversal has poor locality, while a bounded-DFS traversal stays
  inside a community and reuses cached vertex data.
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class Graph:
    """A directed graph in CSR form (in-edges, as pull-style PageRank uses).

    ``offsets[v] : offsets[v+1]`` indexes ``neighbors`` with the sources
    of v's in-edges. ``out_degree[u]`` counts u's out-edges (PageRank
    contributions divide by out-degree).
    """

    n_vertices: int
    offsets: np.ndarray
    neighbors: np.ndarray
    out_degree: np.ndarray

    @property
    def n_edges(self):
        return int(len(self.neighbors))

    def in_neighbors(self, v):
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def in_degree(self, v):
        return int(self.offsets[v + 1] - self.offsets[v])

    def edges(self):
        """Iterate (src, dst) pairs in CSR (destination-major) order."""
        for dst in range(self.n_vertices):
            for src in self.in_neighbors(dst):
                yield int(src), dst


def _csr_from_pairs(n_vertices, srcs, dsts):
    srcs = np.asarray(srcs, dtype=np.int64)
    dsts = np.asarray(dsts, dtype=np.int64)
    order = np.argsort(dsts, kind="stable")
    srcs, dsts = srcs[order], dsts[order]
    offsets = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(offsets, dsts + 1, 1)
    offsets = np.cumsum(offsets)
    out_degree = np.zeros(n_vertices, dtype=np.int64)
    np.add.at(out_degree, srcs, 1)
    return Graph(
        n_vertices=n_vertices,
        offsets=offsets,
        neighbors=srcs,
        out_degree=out_degree,
    )


def uniform_graph(n_vertices, n_edges, seed=0):
    """Uniformly random directed edges (self-loops filtered)."""
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    srcs = rng.integers(0, n_vertices, size=n_edges)
    dsts = rng.integers(0, n_vertices, size=n_edges)
    loops = srcs == dsts
    dsts[loops] = (dsts[loops] + 1) % n_vertices
    return _csr_from_pairs(n_vertices, srcs, dsts)


def community_graph(
    n_vertices,
    n_edges,
    n_communities=None,
    intra_fraction=0.9,
    seed=0,
):
    """A graph with planted communities and shuffled vertex ids.

    ``intra_fraction`` of edges connect vertices of the same community;
    the remainder are uniform. Vertex ids are randomly permuted so that
    community members are *not* adjacent in memory -- exactly the
    layout-vs-structure mismatch HATS exploits ("without expensive
    pre-processing, it is inefficient to process the edges in the order
    they are laid out in memory").
    """
    if n_communities is None:
        n_communities = max(2, int(np.sqrt(n_vertices) / 2))
    rng = np.random.default_rng(seed)
    community = rng.integers(0, n_communities, size=n_vertices)
    members = [np.flatnonzero(community == c) for c in range(n_communities)]
    members = [m for m in members if len(m) >= 2]

    srcs = np.empty(n_edges, dtype=np.int64)
    dsts = np.empty(n_edges, dtype=np.int64)
    intra = rng.random(n_edges) < intra_fraction
    n_intra = int(intra.sum())

    # Intra-community edges: pick a community (weighted by size), then
    # two distinct members (vectorized; collisions shifted within the
    # community).
    sizes = np.array([len(m) for m in members], dtype=np.float64)
    comm_choice = rng.choice(len(members), size=n_intra, p=sizes / sizes.sum())
    comm_sizes = sizes[comm_choice].astype(np.int64)
    src_slot = (rng.random(n_intra) * comm_sizes).astype(np.int64)
    dst_slot = (rng.random(n_intra) * comm_sizes).astype(np.int64)
    same = src_slot == dst_slot
    dst_slot[same] = (dst_slot[same] + 1) % comm_sizes[same]
    flat_members = np.concatenate(members) if members else np.arange(n_vertices)
    starts = np.cumsum([0] + [len(m) for m in members[:-1]])
    srcs[intra] = flat_members[starts[comm_choice] + src_slot]
    dsts[intra] = flat_members[starts[comm_choice] + dst_slot]

    n_inter = n_edges - n_intra
    inter_src = rng.integers(0, n_vertices, size=n_inter)
    inter_dst = rng.integers(0, n_vertices, size=n_inter)
    loops = inter_src == inter_dst
    inter_dst[loops] = (inter_dst[loops] + 1) % n_vertices
    srcs[~intra] = inter_src
    dsts[~intra] = inter_dst

    # Shuffle ids so memory order does not follow community structure.
    perm = rng.permutation(n_vertices)
    return _csr_from_pairs(n_vertices, perm[srcs], perm[dsts])

"""Case study: commutative scatter-updates / PHI (Sec. IV, Fig. 5).

PHI [52] turns the LLC into a write-combining buffer for commutative
updates: cache lines hold *deltas* instead of raw data, insertion
zero-initializes them, and eviction either applies deltas in-place or
logs them for later, whichever costs less bandwidth.

Variants (matching Fig. 5's bars):

- ``baseline``  -- push PageRank with fenced atomic RMWs on a shared
  rank array: fences serialize the cores, lines ping-pong, and the rank
  array streams through DRAM.
- ``tako_fence`` -- PHI's data-triggered half only (tākō [66]): deltas
  are phantom LLC data (constructor zero-fills, destructor bins), but
  cores still execute the RMWs themselves -- with full fences.
- ``tako_relax`` -- the same with relaxed atomics [9, 70], the crutch
  tākō needs because it cannot offload tasks.
- ``leviathan`` -- PHI in full: the same data-triggered morph *plus*
  task offload of the RMWs to the LLC-bank engines, eliminating both
  fences and data ping-pong.
- ``ideal``     -- Leviathan with the idealized (0-latency, energy-free)
  engine.

Functional correctness is end-to-end: every variant computes the same
per-vertex rank sums through the simulated machinery, checked against a
NumPy oracle.
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import AtomicRMW, Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.common import StudyResult, finish_run
from repro.workloads.graphs import uniform_graph

#: Default workload scale (the paper's 4M-vertex, 40M-edge graph,
#: scaled to simulator speed at the same 10 edges/vertex; the delta
#: array is ~2x the scaled LLC, as in the paper's 32 MB vs 8 MB).
DEFAULT_PARAMS = dict(n_vertices=4096, n_edges=40960, n_threads=16, seed=7)


def _add_to(mem, addr, amount):
    """Closure performing ``mem[addr] += amount`` (an op ``apply``)."""

    def apply():
        mem[addr] = mem.get(addr, 0.0) + amount

    return apply


def phi_config(n_tiles=16, ideal=False, invoke_buffer=4):
    """Table V scaled so the vertex data exceeds the LLC."""
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=2, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=4, ways=4, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(size_kb=1, ways=8, tag_latency=3, data_latency=5, replacement="rrip"),
    )
    cfg.core.invoke_buffer_entries = invoke_buffer
    cfg.engine.ideal = ideal
    cfg.engine.l1d_kb = 2  # scaled with the rest of the hierarchy
    return cfg


class _PhiData:
    """Shared layout: edge list, contributions, ranks (and the oracle)."""

    def __init__(self, machine, params):
        p = dict(DEFAULT_PARAMS)
        p.update(params or {})
        self.params = p
        graph = uniform_graph(p["n_vertices"], p["n_edges"], seed=p["seed"])
        # Push-style: edges sorted by source so contribution loads are
        # sequential per thread.
        order = np.argsort(graph.neighbors, kind="stable")
        dsts = np.repeat(
            np.arange(graph.n_vertices), np.diff(graph.offsets)
        )
        self.edge_src = graph.neighbors[order].astype(np.int64)
        self.edge_dst = dsts[order].astype(np.int64)
        out_degree = np.maximum(graph.out_degree, 1)
        self.contrib = (1.0 / out_degree).astype(np.float64)
        self.n_vertices = graph.n_vertices
        self.n_edges = graph.n_edges
        self.n_threads = p["n_threads"]

        space = machine.address_space
        self.machine = machine
        self.edge_base = space.alloc(self.n_edges * 8, align=64)
        self.contrib_base = space.alloc(self.n_vertices * 8, align=64)
        self.rank_base = space.alloc(self.n_vertices * 8, align=64)
        for v in range(self.n_vertices):
            machine.mem[self.rank_addr(v)] = 0.0

        oracle = np.zeros(self.n_vertices)
        np.add.at(oracle, self.edge_dst, self.contrib[self.edge_src])
        self.oracle = oracle

    def rank_addr(self, v):
        return self.rank_base + v * 8

    def edge_slices(self):
        """Per-thread contiguous edge ranges."""
        bounds = np.linspace(0, self.n_edges, self.n_threads + 1, dtype=np.int64)
        return [(int(bounds[t]), int(bounds[t + 1])) for t in range(self.n_threads)]

    def ranks(self):
        return np.array(
            [self.machine.mem[self.rank_addr(v)] for v in range(self.n_vertices)]
        )

    def verify(self):
        if not np.allclose(self.ranks(), self.oracle):
            raise AssertionError("PHI variant produced wrong ranks")
        return float(self.ranks().sum())


# ----------------------------------------------------------------------
# baseline: fenced atomics on the shared rank array
# ----------------------------------------------------------------------
def _baseline_thread(data, lo, hi):
    mem = data.machine.mem
    for k in range(lo, hi):
        yield Load(data.edge_base + k * 8, 8)
        src = int(data.edge_src[k])
        dst = int(data.edge_dst[k])
        yield Load(data.contrib_base + src * 8, 8)
        yield Compute(2)
        addr = data.rank_addr(dst)
        amount = float(data.contrib[src])
        yield AtomicRMW(addr, 8, fenced=True, apply=_add_to(mem, addr, amount))


def run_baseline(params=None, n_tiles=16):
    machine = Machine(phi_config(n_tiles=n_tiles))
    data = _PhiData(machine, params)
    machine.stats.set_phase("edge")
    for t, (lo, hi) in enumerate(data.edge_slices()):
        machine.spawn(
            _baseline_thread(data, lo, hi), tile=t % n_tiles, name=f"phi-base{t}"
        )
    machine.run()
    machine.stats.set_phase(None)
    checksum = data.verify()
    return finish_run(machine, "baseline", output=checksum)


# ----------------------------------------------------------------------
# the PHI delta morph (shared by tākō and Leviathan variants)
# ----------------------------------------------------------------------
class PhiDeltaMorph(Morph):
    """Phantom per-vertex deltas with PHI's insertion/eviction semantics.

    Construction zero-initializes; destruction applies deltas in-place
    when the line is densely updated, or logs them for later processing
    when sparse (PHI's bandwidth-minimizing policy [14, 40]).
    """

    LOG_ENTRY_BYTES = 16

    def __init__(self, runtime, data, inplace_threshold=None):
        self.data = data
        entries_per_line = runtime.machine.config.line_size // 8
        self.inplace_threshold = (
            entries_per_line // 2 if inplace_threshold is None else inplace_threshold
        )
        super().__init__(
            runtime, "llc", data.n_vertices, object_size=8, name="phi-delta"
        )
        space = runtime.machine.address_space
        n_tiles = runtime.machine.config.n_tiles
        log_capacity = (data.n_edges + data.n_vertices) * self.LOG_ENTRY_BYTES
        self.log_bases = [space.alloc(log_capacity, align=64) for _ in range(n_tiles)]

    def delta_addr(self, v):
        return self.get_actor_addr(v)

    def construct(self, view, index):
        self.machine.mem[self.delta_addr(index)] = 0.0
        yield Compute(1)

    def destruct(self, view, index, dirty):
        mem = self.machine.mem
        addr = self.delta_addr(index)
        delta = mem.get(addr, 0.0)
        if not dirty or delta == 0.0:
            yield Compute(1)
            return
        # PHI's dynamic policy, decided per line: count updated siblings.
        line = addr // self.machine.config.line_size
        first, last = self._objects_in_line(line)
        updated = sum(
            1 for i in range(first, last + 1) if mem.get(self.delta_addr(i), 0.0) != 0.0
        )
        if updated >= self.inplace_threshold:
            # In-place: read-modify-write the real rank entry.
            yield Load(self.data.rank_addr(index), 8)
            yield Compute(1)
            yield Store(self.data.rank_addr(index), 8)
            mem[self.data.rank_addr(index)] += delta
            self.machine.stats.add("phi.inplace_applies")
        else:
            # Log: append (vertex, delta) to this bank's log.
            log = view.state.setdefault("log", [])
            entry_addr = (
                self.log_bases[view.tile] + len(log) * self.LOG_ENTRY_BYTES
            )
            yield Store(entry_addr, self.LOG_ENTRY_BYTES)
            log.append((index, delta))
            self.machine.stats.add("phi.logged_updates")
        mem[addr] = 0.0

    def log_processing_program(self, tile):
        """Apply one bank's log to the rank array (a later, batched phase).

        As in PHI [52] (and propagation blocking [14, 40]), entries are
        first binned by vertex so the rank array is then updated in
        sequential order -- each rank line is read and written once per
        phase instead of once per entry.
        """
        mem = self.machine.mem
        log = self.views[tile].state.get("log", [])
        base = self.log_bases[tile]
        combined = {}
        for j, (index, delta) in enumerate(log):
            # Sequential scan of the log; binning is a couple of ops.
            yield Load(base + j * self.LOG_ENTRY_BYTES, self.LOG_ENTRY_BYTES)
            yield Compute(2)
            combined[index] = combined.get(index, 0.0) + delta
        for index in sorted(combined):
            yield Load(self.data.rank_addr(index), 8)
            yield Compute(1)
            delta = combined[index]
            addr = self.data.rank_addr(index)
            yield Store(addr, 8, apply=_add_to(mem, addr, delta))


def _finalize_phi(machine, morph, data):
    """Flush remaining deltas and process the logs (measured)."""
    machine.stats.set_phase("flush")
    morph.unregister()
    for tile in range(machine.config.n_tiles):
        if morph.views[tile].state.get("log"):
            machine.spawn(
                morph.log_processing_program(tile),
                tile=tile,
                name=f"phi-logproc{tile}",
            )
    machine.run()
    machine.stats.set_phase(None)


# ----------------------------------------------------------------------
# tākō: data-triggered only; cores do the atomics themselves
# ----------------------------------------------------------------------
def _tako_thread(data, morph, lo, hi, fenced):
    mem = data.machine.mem
    for k in range(lo, hi):
        yield Load(data.edge_base + k * 8, 8)
        src = int(data.edge_src[k])
        dst = int(data.edge_dst[k])
        yield Load(data.contrib_base + src * 8, 8)
        yield Compute(2)
        addr = morph.delta_addr(dst)
        amount = float(data.contrib[src])
        yield AtomicRMW(addr, 8, fenced=fenced, apply=_add_to(mem, addr, amount))


def run_tako(params=None, relaxed=False, n_tiles=16):
    machine = Machine(phi_config(n_tiles=n_tiles))
    runtime = Leviathan(machine)
    data = _PhiData(machine, params)
    morph = PhiDeltaMorph(runtime, data)
    machine.stats.set_phase("edge")
    for t, (lo, hi) in enumerate(data.edge_slices()):
        machine.spawn(
            _tako_thread(data, morph, lo, hi, fenced=not relaxed),
            tile=t % n_tiles,
            name=f"phi-tako{t}",
        )
    machine.run()
    _finalize_phi(machine, morph, data)
    checksum = data.verify()
    name = "tako_relax" if relaxed else "tako_fence"
    return finish_run(machine, name, output=checksum)


# ----------------------------------------------------------------------
# Leviathan: data-triggered morph + task offload of the RMWs
# ----------------------------------------------------------------------
class DeltaActor(Actor):
    """One vertex's delta object; ``add`` is the offloaded RMW (Fig. 2)."""

    SIZE = 8

    @action
    def add(self, env, amount):
        yield Compute(1)
        yield Store(
            self.addr, 8, apply=_add_to(env.machine.mem, self.addr, amount)
        )


def _leviathan_thread(data, actors, lo, hi):
    for k in range(lo, hi):
        yield Load(data.edge_base + k * 8, 8)
        src = int(data.edge_src[k])
        dst = int(data.edge_dst[k])
        yield Load(data.contrib_base + src * 8, 8)
        yield Compute(2)
        yield Invoke(
            actors[dst],
            "add",
            (float(data.contrib[src]),),
            location=Location.REMOTE,
            args_bytes=8,
        )


def run_leviathan(params=None, ideal=False, n_tiles=16, invoke_buffer=4):
    machine = Machine(
        phi_config(n_tiles=n_tiles, ideal=ideal, invoke_buffer=invoke_buffer)
    )
    runtime = Leviathan(machine)
    data = _PhiData(machine, params)
    morph = PhiDeltaMorph(runtime, data)
    actors = []
    for v in range(data.n_vertices):
        actor = DeltaActor()
        actor.addr = morph.delta_addr(v)
        actors.append(actor)
    machine.stats.set_phase("edge")
    for t, (lo, hi) in enumerate(data.edge_slices()):
        machine.spawn(
            _leviathan_thread(data, actors, lo, hi),
            tile=t % n_tiles,
            name=f"phi-lev{t}",
        )
    machine.run()
    _finalize_phi(machine, morph, data)
    checksum = data.verify()
    return finish_run(machine, "ideal" if ideal else "leviathan", output=checksum)


# ----------------------------------------------------------------------
# the full study
# ----------------------------------------------------------------------
def run_all(params=None, n_tiles=16, include_ideal=True):
    study = StudyResult(study="PHI (Fig. 5)", baseline="baseline", params=params or {})
    study.add(run_baseline(params, n_tiles=n_tiles))
    study.add(run_tako(params, relaxed=False, n_tiles=n_tiles))
    study.add(run_tako(params, relaxed=True, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles))
    if include_ideal:
        study.add(run_leviathan(params, ideal=True, n_tiles=n_tiles))
    return study

"""Case study: hash-table lookups via task offload (Sec. VIII-B, Fig. 18).

Buckets resolve collisions with linked lists; lookups chase pointers
through nodes that live (mostly) in the LLC. The paper's variants:

- ``baseline``   -- the core walks the chain itself: every hop is a
  round trip between the core and the node's LLC bank.
- ``leviathan``  -- Fig. 17: a ``Lookup`` task is invoked on the first
  node and *re-invokes itself* on the next node in continuation-passing
  style; hops become engine-to-engine packets inside the LLC, and the
  result returns through a single future.
- ``no_padding``   -- 24 B nodes without padding straddle lines: many
  offloaded tasks find only part of their node locally (Livia's [47]
  situation), costing extra NoC traffic.
- ``no_llc_mapping`` -- 128 B nodes without the LLC object-mapping:
  each node's two lines live in different banks, so nearly every task
  fetches half its node remotely -- worse than the baseline.

Fig. 24 (input-size) and Fig. 25 (system-size) reuse this module's
``run_*`` functions with different parameters.
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import Future, WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import Compute, Load
from repro.sim.stats import AccessProfile
from repro.sim.system import Machine
from repro.workloads.common import StudyResult, finish_run

#: Fig. 18's workload, scaled: threads each perform lookups against a
#: table whose (padded) size is ~2/3 of the scaled LLC ("the buckets
#: fit in the LLC, but not L1d or L2").
DEFAULT_PARAMS = dict(
    n_buckets=64,
    nodes_per_bucket=32,
    n_threads=16,
    lookups_per_thread=64,
    object_size=64,
    seed=23,
)

#: key compare + branch + next-pointer arithmetic per node visited.
VISIT_INSTRUCTIONS = 6


def hashtable_config(n_tiles=16, ideal=False, table_bytes=None):
    """Scaled Table V: the table fits in the LLC but not the L2."""
    # LLC sized ~1.5x the default table (128 KB padded table -> 192 KB).
    table_bytes = table_bytes or (64 * 32 * 64)
    per_bank_kb = max(1, (table_bytes * 3) // (2 * n_tiles * 1024))
    per_bank_kb = 1 << (per_bank_kb - 1).bit_length()  # round up to pow2
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(
            size_kb=per_bank_kb, ways=8, tag_latency=3, data_latency=5, replacement="rrip"
        ),
    )
    cfg.engine.ideal = ideal
    # Scale the engine L1d with the rest of the hierarchy (the paper's
    # 8 KB engine L1d is tiny next to its 4 MB table; keep that ratio).
    cfg.engine.l1d_kb = 1
    return cfg


class Node(Actor):
    """One hash-table node (Fig. 17): key, value, metadata, next pointer.

    ``SIZE`` is set per subclass by the workload (24 B, 64 B or 128 B).
    """

    SIZE = 24

    @action
    def lookup(self, env, key, future):
        """Compare this node's key; recurse to the next node if needed.

        Returning a value fills ``future`` (the runtime translates
        ``return`` into ``send``); recursing passes the same future
        along in continuation-passing style (Fig. 17 line 13) and
        returns None so this hop fills nothing.
        """
        yield Load(self.addr, self.SIZE)
        yield Compute(VISIT_INSTRUCTIONS)
        record = env.machine.mem[self.addr]
        if record["key"] == key:
            return record["value"]
        nxt = record["next"]
        if nxt is None:
            return -1
        yield Invoke(
            nxt,
            "lookup",
            (key, future),
            location=Location.DYNAMIC,
            future=future,
            args_bytes=16,
        )
        return None


class _Table:
    """The hash table: bucket chains of allocated nodes."""

    def __init__(self, machine, runtime, params, padding=True, llc_mapping=True):
        p = dict(DEFAULT_PARAMS)
        p.update(params or {})
        self.params = p
        self.machine = machine
        size = p["object_size"]

        node_cls = type("Node%dB" % size, (Node,), {"SIZE": size})
        self.node_cls = node_cls
        n_nodes = p["n_buckets"] * p["nodes_per_bucket"]
        if runtime is not None:
            self.allocator = runtime.allocator(
                size,
                capacity=n_nodes,
                padding=padding,
                llc_mapping=llc_mapping,
                actor_cls=node_cls,
            )
        else:
            self.allocator = None

        # Allocate every node, then deal them to buckets in shuffled
        # order: chains are scattered through memory, as in a real hash
        # table built by interleaved insertions.
        rng = np.random.default_rng(p["seed"])
        nodes = [self._make_node(size) for _ in range(n_nodes)]
        order = rng.permutation(n_nodes)
        self.buckets = []
        cursor = 0
        for b in range(p["n_buckets"]):
            chain = [nodes[order[cursor + i]] for i in range(p["nodes_per_bucket"])]
            cursor += p["nodes_per_bucket"]
            for i, node in enumerate(chain):
                nxt = chain[i + 1] if i + 1 < len(chain) else None
                machine.mem[node.addr] = {
                    "key": self._key_of(b, i),
                    "value": self._key_of(b, i) * 7,
                    "next": nxt,
                }
            self.buckets.append(chain)
        self.n_nodes = n_nodes

    def _make_node(self, size):
        if self.allocator is not None:
            return self.allocator.allocate()
        # Baseline machine (no runtime): the same power-of-two padded
        # layout, so every variant sees an identical "(padded) size"
        # table (Sec. VIII-B) and differences come from where the
        # chain-walk executes, not from layout.
        from repro.core.allocator import padded_size_of

        node = self.node_cls()
        cfg = self.machine.config
        padded = padded_size_of(size, cfg.line_size, cfg.leviathan.max_object_lines)
        node.addr = self.machine.address_space.alloc(padded, align=padded)
        return node

    def _key_of(self, bucket, depth):
        return bucket * 1000 + depth

    def bucket_of_key(self, key):
        return key // 1000

    def expected_value(self, key):
        bucket, depth = divmod(key, 1000)
        if bucket < len(self.buckets) and depth < len(self.buckets[bucket]):
            return key * 7
        return -1

    def lookup_keys(self):
        """Per-thread key sequences (uniform over present keys)."""
        p = self.params
        rng = np.random.default_rng(p["seed"] + 1)
        keys = []
        for _ in range(p["n_threads"]):
            buckets = rng.integers(0, p["n_buckets"], size=p["lookups_per_thread"])
            depths = rng.integers(0, p["nodes_per_bucket"], size=p["lookups_per_thread"])
            keys.append([self._key_of(int(b), int(d)) for b, d in zip(buckets, depths)])
        return keys


# ----------------------------------------------------------------------
# baseline: the core chases pointers itself
# ----------------------------------------------------------------------
def _baseline_thread(table, keys, results):
    mem = table.machine.mem
    for key in keys:
        node = table.buckets[table.bucket_of_key(key)][0]
        value = -1
        while node is not None:
            yield Load(node.addr, node.SIZE)
            yield Compute(VISIT_INSTRUCTIONS)
            record = mem[node.addr]
            if record["key"] == key:
                value = record["value"]
                break
            node = record["next"]
        results.append(value)


def _padded_table_bytes(p):
    from repro.core.allocator import padded_size_of

    padded = padded_size_of(p["object_size"])
    return p["n_buckets"] * p["nodes_per_bucket"] * padded


def _make_config(p, n_tiles, ideal=False, table_bytes=None, config_overrides=None):
    """Build the study config; ``table_bytes``/``config_overrides`` let
    sweeps (Figs. 24-25, the near-memory ablation) pin the hierarchy or
    flip runtime knobs through plain data, so a run is fully described
    by its keyword arguments (the experiment pool relies on this)."""
    cfg = hashtable_config(
        n_tiles=n_tiles,
        ideal=ideal,
        table_bytes=table_bytes or _padded_table_bytes(p),
    )
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    return cfg


def run_baseline(params=None, n_tiles=16, table_bytes=None, config_overrides=None):
    p = dict(DEFAULT_PARAMS)
    p.update(params or {})
    machine = Machine(
        _make_config(p, n_tiles, table_bytes=table_bytes, config_overrides=config_overrides)
    )
    profile = AccessProfile(machine)
    table = _Table(machine, None, p)
    results = []
    for t, keys in enumerate(table.lookup_keys()):
        machine.spawn(
            _baseline_thread(table, keys, results), tile=t % n_tiles, name=f"ht-base{t}"
        )
    machine.run()
    _verify(table, results)
    return finish_run(machine, "baseline", output=sum(results), profile=profile)


# ----------------------------------------------------------------------
# Leviathan: offloaded pointer chasing
# ----------------------------------------------------------------------
def _leviathan_thread(table, keys, results, tile):
    machine = table.machine
    for key in keys:
        head = table.buckets[table.bucket_of_key(key)][0]
        future = Future(machine, tile)
        yield Invoke(
            head,
            "lookup",
            (key, future),
            location=Location.DYNAMIC,
            future=future,
            args_bytes=16,
        )
        value = yield WaitFuture(future)
        results.append(value)


def _run_leviathan_variant(
    name,
    params=None,
    n_tiles=16,
    ideal=False,
    padding=True,
    llc_mapping=True,
    table_bytes=None,
    config_overrides=None,
):
    p = dict(DEFAULT_PARAMS)
    p.update(params or {})
    machine = Machine(
        _make_config(
            p, n_tiles, ideal=ideal, table_bytes=table_bytes,
            config_overrides=config_overrides,
        )
    )
    profile = AccessProfile(machine)
    runtime = Leviathan(machine)
    table = _Table(machine, runtime, p, padding=padding, llc_mapping=llc_mapping)
    results = []
    for t, keys in enumerate(table.lookup_keys()):
        machine.spawn(
            _leviathan_thread(table, keys, results, t % n_tiles),
            tile=t % n_tiles,
            name=f"ht-lev{t}",
        )
    machine.run()
    _verify(table, results)
    return finish_run(machine, name, output=sum(results), profile=profile)


def run_leviathan(
    params=None, n_tiles=16, ideal=False, table_bytes=None, config_overrides=None
):
    return _run_leviathan_variant(
        "ideal" if ideal else "leviathan",
        params,
        n_tiles=n_tiles,
        ideal=ideal,
        table_bytes=table_bytes,
        config_overrides=config_overrides,
    )


def run_no_padding(params=None, n_tiles=16):
    """Dense nodes (Livia-like): objects straddle cache lines."""
    return _run_leviathan_variant(
        "no_padding", params, n_tiles=n_tiles, padding=False
    )


def run_no_llc_mapping(params=None, n_tiles=16):
    """Padded nodes without the bank-mapping: multi-line objects span banks."""
    return _run_leviathan_variant(
        "no_llc_mapping", params, n_tiles=n_tiles, llc_mapping=False
    )


def _verify(table, results):
    keys = [k for thread_keys in table.lookup_keys() for k in thread_keys]
    expected = sorted(table.expected_value(k) for k in keys)
    if sorted(results) != expected:
        raise AssertionError("hash-table lookups returned wrong values")


def run_size_study(params=None, n_tiles=16, sizes=(24, 64, 128)):
    """Fig. 18: one StudyResult per object size."""
    studies = {}
    for size in sizes:
        p = dict(params or {})
        p["object_size"] = size
        study = StudyResult(
            study=f"Hash table {size}B (Fig. 18)", baseline="baseline", params=p
        )
        study.add(run_baseline(p, n_tiles=n_tiles))
        study.add(run_leviathan(p, n_tiles=n_tiles))
        if size == 24:
            study.add(run_no_padding(p, n_tiles=n_tiles))
        if size == 128:
            study.add(run_no_llc_mapping(p, n_tiles=n_tiles))
        studies[size] = study
    return studies


def run_all(params=None, n_tiles=16):
    """The headline (64 B) configuration with every variant."""
    study = StudyResult(
        study="Hash table (Fig. 18)", baseline="baseline", params=params or {}
    )
    study.add(run_baseline(params, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles, ideal=True))
    return study

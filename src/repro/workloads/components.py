"""Connected components: PHI with a different commutative operator.

Sec. IV argues that "given the diversity of graph applications [13], it
is essential that NDC systems support multiple paradigms". PageRank
(Fig. 5) exercises commutative *addition*; this workload exercises
commutative *minimum* -- synchronous min-label propagation for
connected components -- on exactly the same Leviathan machinery:

- phantom per-vertex label candidates (data-triggered morph, min-combining
  in cache, applied or logged on eviction);
- offloaded ``min`` RMW tasks instead of fenced atomics.

Rounds are synchronous: candidates accumulate in the morph during a
round and apply to the label array when the round's flush runs, which
gives every variant identical (oracle-checkable) semantics.
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.ops import AtomicRMW, Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.common import StudyResult, finish_run
from repro.workloads.graphs import community_graph
from repro.workloads.phi import phi_config

DEFAULT_PARAMS = dict(
    n_vertices=2048, n_edges=12288, n_threads=16, rounds=6, seed=13
)

INFINITY = 1 << 30


class _ComponentsData:
    """Undirected graph, label layout, and the synchronous oracle."""

    def __init__(self, machine, params):
        p = dict(DEFAULT_PARAMS)
        p.update(params or {})
        self.params = p
        self.machine = machine
        graph = community_graph(p["n_vertices"], p["n_edges"], seed=p["seed"])
        # Undirect: both endpoints propagate labels to each other.
        dsts = np.repeat(np.arange(graph.n_vertices), np.diff(graph.offsets))
        srcs = graph.neighbors
        self.edge_u = np.concatenate([srcs, dsts]).astype(np.int64)
        self.edge_v = np.concatenate([dsts, srcs]).astype(np.int64)
        self.n_vertices = graph.n_vertices
        self.n_edges = len(self.edge_u)
        self.n_threads = p["n_threads"]
        self.rounds = p["rounds"]

        space = machine.address_space
        self.edge_base = space.alloc(self.n_edges * 8, align=64)
        self.label_base = space.alloc(self.n_vertices * 8, align=64)
        for v in range(self.n_vertices):
            machine.mem[self.label_addr(v)] = v

        self.oracle = self._oracle_labels()

    def label_addr(self, v):
        return self.label_base + v * 8

    def _oracle_labels(self):
        labels = np.arange(self.n_vertices)
        for _ in range(self.rounds):
            candidate = np.full(self.n_vertices, INFINITY, dtype=np.int64)
            np.minimum.at(candidate, self.edge_v, labels[self.edge_u])
            labels = np.minimum(labels, candidate)
        return labels

    def edge_slices(self):
        bounds = np.linspace(0, self.n_edges, self.n_threads + 1, dtype=np.int64)
        return [(int(bounds[t]), int(bounds[t + 1])) for t in range(self.n_threads)]

    def labels(self):
        return np.array(
            [self.machine.mem[self.label_addr(v)] for v in range(self.n_vertices)]
        )

    def verify(self):
        got = self.labels()
        if not np.array_equal(got, self.oracle):
            raise AssertionError("components variant produced wrong labels")
        return int(got.sum())


def _min_to(mem, addr, value):
    def apply():
        mem[addr] = min(mem.get(addr, INFINITY), value)

    return apply


# ----------------------------------------------------------------------
# baseline: fenced atomic-min on a candidates array, synchronous rounds
# ----------------------------------------------------------------------
def _baseline_round(data, candidates_base, lo, hi, labels_snapshot):
    mem = data.machine.mem
    for k in range(lo, hi):
        yield Load(data.edge_base + k * 8, 8)
        u = int(data.edge_u[k])
        v = int(data.edge_v[k])
        yield Load(data.label_addr(u), 8)
        yield Compute(2)
        addr = candidates_base + v * 8
        yield AtomicRMW(addr, 8, fenced=True, apply=_min_to(mem, addr, int(labels_snapshot[u])))


def run_baseline(params=None, n_tiles=16):
    machine = Machine(phi_config(n_tiles=n_tiles))
    data = _ComponentsData(machine, params)
    mem = machine.mem
    candidates_base = machine.address_space.alloc(data.n_vertices * 8, align=64)
    for round_index in range(data.rounds):
        labels_snapshot = data.labels()
        for v in range(data.n_vertices):
            mem[candidates_base + v * 8] = INFINITY
        for t, (lo, hi) in enumerate(data.edge_slices()):
            machine.spawn(
                _baseline_round(data, candidates_base, lo, hi, labels_snapshot),
                tile=t % n_tiles,
                name=f"cc-base{round_index}.{t}",
            )
        machine.run()
        # Apply phase (sequential sweep on one core, measured).
        machine.spawn(
            _apply_round(data, candidates_base), tile=0, name=f"cc-apply{round_index}"
        )
        machine.run()
    checksum = data.verify()
    return finish_run(machine, "baseline", output=checksum)


def _apply_round(data, candidates_base):
    mem = data.machine.mem
    for v in range(data.n_vertices):
        yield Load(candidates_base + v * 8, 8)
        yield Compute(1)
        addr = data.label_addr(v)
        candidate = mem.get(candidates_base + v * 8, INFINITY)
        yield Store(addr, 8, apply=_min_to(mem, addr, candidate))


# ----------------------------------------------------------------------
# Leviathan: min-combining morph + offloaded min RMWs
# ----------------------------------------------------------------------
class MinMorph(Morph):
    """Phantom per-vertex min candidates (PHI with ``min`` combining)."""

    def __init__(self, runtime, data):
        self.data = data
        super().__init__(
            runtime, "llc", data.n_vertices, object_size=8, name="cc-candidates"
        )

    def construct(self, view, index):
        self.machine.mem[self.get_actor_addr(index)] = INFINITY
        yield Compute(1)

    def destruct(self, view, index, dirty):
        mem = self.machine.mem
        candidate = mem.get(self.get_actor_addr(index), INFINITY)
        if not dirty or candidate >= INFINITY:
            yield Compute(1)
            return
        addr = self.data.label_addr(index)
        yield Load(addr, 8)
        yield Compute(1)
        yield Store(addr, 8, apply=_min_to(mem, addr, candidate))
        mem[self.get_actor_addr(index)] = INFINITY


class MinActor(Actor):
    SIZE = 8

    @action
    def combine(self, env, value):
        mem = env.machine.mem
        yield Compute(1)
        yield Store(self.addr, 8, apply=_min_to(mem, self.addr, value))


def _leviathan_round(data, actors, lo, hi, labels_snapshot):
    for k in range(lo, hi):
        yield Load(data.edge_base + k * 8, 8)
        u = int(data.edge_u[k])
        v = int(data.edge_v[k])
        yield Load(data.label_addr(u), 8)
        yield Compute(2)
        yield Invoke(
            actors[v],
            "combine",
            (int(labels_snapshot[u]),),
            location=Location.REMOTE,
            args_bytes=8,
        )


def run_leviathan(params=None, n_tiles=16, ideal=False):
    machine = Machine(phi_config(n_tiles=n_tiles, ideal=ideal))
    runtime = Leviathan(machine)
    data = _ComponentsData(machine, params)
    for round_index in range(data.rounds):
        labels_snapshot = data.labels()
        morph = MinMorph(runtime, data)
        actors = []
        for v in range(data.n_vertices):
            actor = MinActor()
            actor.addr = morph.get_actor_addr(v)
            actors.append(actor)
        for t, (lo, hi) in enumerate(data.edge_slices()):
            machine.spawn(
                _leviathan_round(data, actors, lo, hi, labels_snapshot),
                tile=t % n_tiles,
                name=f"cc-lev{round_index}.{t}",
            )
        machine.run()
        # Round barrier: flush applies every surviving candidate.
        morph.unregister()
    checksum = data.verify()
    return finish_run(machine, "ideal" if ideal else "leviathan", output=checksum)


def run_all(params=None, n_tiles=16):
    study = StudyResult(
        study="Connected components (PHI generality)",
        baseline="baseline",
        params=params or {},
    )
    study.add(run_baseline(params, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles))
    return study

"""Shared result types and helpers for all workloads.

Every workload entry point -- case studies and serving zoo alike --
funnels its completed machine through :func:`finish_run` into a
:class:`RunResult`, and experiments group variant results into a
:class:`StudyResult` keyed by the baseline. Serving workloads
additionally merge :class:`~repro.sim.telemetry.requests.
RequestLatencyProbe` percentile fields into ``RunResult.stats``
(``request.<class>.p99`` etc.) before returning. The authoring
contract is documented in ``docs/workloads.md``.
"""

from dataclasses import dataclass, field


@dataclass
class RunResult:
    """Outcome of one workload variant on one machine configuration."""

    name: str
    cycles: float
    energy_pj: float
    stats: dict
    #: Workload-defined functional output (for correctness checks).
    output: object = None
    #: False when the variant cannot run at all (e.g. data-triggered
    #: actions without padding, Sec. VIII-A).
    functional: bool = True
    notes: str = ""
    #: Per-component dynamic energy ({counter_name: picojoules}).
    energy_breakdown: dict = field(default_factory=dict)
    #: Per-level access attribution ({(level, outcome): count}), filled
    #: when the run was observed by a
    #: :class:`~repro.sim.stats.AccessProfile` on the event bus.
    access_profile: dict = field(default_factory=dict)

    def speedup_over(self, baseline):
        """Speedup of *this* variant relative to ``baseline``."""
        if not self.functional:
            return 0.0
        return baseline.cycles / self.cycles

    def energy_savings_over(self, baseline):
        """Fractional energy saved relative to ``baseline`` (0.22 = 22%)."""
        if not self.functional:
            return 0.0
        return 1.0 - self.energy_pj / baseline.energy_pj

    def stat(self, name):
        return self.stats.get(name, 0)

    def accesses(self, level, outcome=None):
        """Access-path steps recorded at ``level`` (see AccessProfile)."""
        return sum(
            count
            for (lvl, out), count in self.access_profile.items()
            if lvl == level and (outcome is None or out == outcome)
        )


@dataclass
class StudyResult:
    """All variants of one case study, with the baseline identified."""

    study: str
    baseline: str
    results: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)

    def add(self, result):
        self.results[result.name] = result
        return result

    def __getitem__(self, name):
        return self.results[name]

    def __contains__(self, name):
        return name in self.results

    def speedups(self):
        base = self.results[self.baseline]
        return {name: r.speedup_over(base) for name, r in self.results.items()}

    def energy_savings(self):
        base = self.results[self.baseline]
        return {name: r.energy_savings_over(base) for name, r in self.results.items()}

    def report(self):
        base = self.results[self.baseline]
        lines = [f"== {self.study} =="]
        for name, r in self.results.items():
            if not r.functional:
                lines.append(f"{name:24s} DOES NOT WORK ({r.notes})")
                continue
            lines.append(
                f"{name:24s} speedup {r.speedup_over(base):5.2f}x   "
                f"energy {r.energy_savings_over(base) * 100:+6.1f}%   "
                f"cycles {r.cycles:12.0f}"
            )
        return "\n".join(lines)


def finish_run(machine, name, output=None, notes="", profile=None):
    """Package a completed machine run into a :class:`RunResult`.

    ``profile`` is an optional :class:`~repro.sim.stats.AccessProfile`
    that observed the run; its per-level breakdown is detached and
    recorded on the result.
    """
    access_profile = {}
    if profile is not None:
        profile.detach()
        access_profile = profile.breakdown()
    return RunResult(
        name=name,
        cycles=machine.scheduler.now,
        energy_pj=machine.energy_pj(),
        stats=machine.stats.snapshot(),
        output=output,
        notes=notes,
        energy_breakdown=machine.energy_model.breakdown_pj(machine.stats),
        access_profile=access_profile,
    )


def energy_breakdown_table(study, components=None):
    """Per-variant energy by component, as rows of percent-of-baseline.

    Mirrors how the paper presents energy: stacked components
    normalized to the baseline's total.
    """
    base_total = study.results[study.baseline].energy_pj
    if components is None:
        components = sorted(
            {
                key
                for result in study.results.values()
                for key in result.energy_breakdown
            }
        )
    rows = []
    for name, result in study.results.items():
        if not result.functional:
            continue
        row = {"variant": name}
        for component in components:
            row[component] = 100.0 * result.energy_breakdown.get(component, 0.0) / base_total
        row["total_pct"] = 100.0 * result.energy_pj / base_total
        rows.append(row)
    return rows

"""Key, index, and arrival-time distributions used by the workloads.

The paper indexes the decompression array "using a Zipfian
distribution [17] of 32 K accesses" and generates hash-table keys "from
a uniform distribution" (with similar results under Zipf). The serving
zoo (:mod:`repro.workloads.serving`) adds two more generators: a
Poisson (exponential-interarrival) open-loop arrival process and a
reuse-distance-controlled access sequence for the far-memory paging
workload.

Every generator is a pure function of its arguments -- all randomness
flows through ``numpy.random.default_rng(seed)`` -- so workloads built
on them are bit-identical across reruns and across pool worker counts.
The seed conventions are documented in ``docs/workloads.md``.
"""

import numpy as np


def zipfian_indices(n_items, n_samples, skew=0.99, seed=0):
    """``n_samples`` indices in ``[0, n_items)`` with Zipfian popularity.

    Uses the standard power-law weights ``1 / rank^skew`` over a random
    permutation of items, so popularity is not correlated with address
    order (matching real access patterns).
    """
    if n_items <= 0 or n_samples < 0:
        raise ValueError("n_items must be positive and n_samples non-negative")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    permutation = rng.permutation(n_items)
    draws = rng.choice(n_items, size=n_samples, p=weights)
    return permutation[draws]


def uniform_indices(n_items, n_samples, seed=0):
    """``n_samples`` uniformly random indices in ``[0, n_items)``."""
    if n_items <= 0 or n_samples < 0:
        raise ValueError("n_items must be positive and n_samples non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_items, size=n_samples)


def uniform_keys(n_keys, key_space, seed=0):
    """``n_keys`` uniformly random keys in ``[0, key_space)``."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, key_space, size=n_keys)


def poisson_arrivals(n_requests, mean_gap, seed=0):
    """Cumulative arrival times (cycles) of an open-loop Poisson process.

    Draws ``n_requests`` exponential interarrival gaps with mean
    ``mean_gap`` cycles and returns their cumulative sum as an int64
    array of absolute arrival timestamps (each gap is rounded to at
    least one cycle first, so two requests never share a timestamp'd
    gap of zero). Serving clients ``Sleep`` until each timestamp and
    then issue the request regardless of whether earlier responses have
    returned -- the open-loop discipline that makes tail latency
    meaningful (a closed loop would self-throttle under overload).
    """
    if n_requests < 0 or mean_gap <= 0:
        raise ValueError("n_requests must be >= 0 and mean_gap positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap, size=n_requests)
    gaps = np.maximum(1, np.rint(gaps)).astype(np.int64)
    return np.cumsum(gaps)


def reuse_distance_indices(n_items, n_samples, reuse_distance, seed=0, reuse_frac=0.9):
    """An access sequence whose temporal locality is a tunable knob.

    The classic warm LRU-stack-distance model: all ``n_items`` start on
    an LRU stack in seeded random order, and each access draws a *stack
    distance* -- with probability ``reuse_frac`` uniform over
    ``[0, reuse_distance)``, otherwise uniform over the whole stack --
    then touches the item at that depth and moves it to the front.

    Stack distance is exactly what caches see: an LRU cache of capacity
    ``C`` hits an access iff its distance is below ``C``. So
    ``reuse_distance`` below the fast-tier capacity means the reuse
    window fits (only the ``1 - reuse_frac`` far tail misses), while
    ``reuse_distance`` above it thrashes -- larger values are strictly
    worse locality. ``reuse_distance=0`` degenerates to uniform random
    over all items. Used by the KV-cache paging workload to sweep hit
    rate against resident-set size. Returns an int64 array of
    ``n_samples`` indices.
    """
    if n_items <= 0 or n_samples < 0 or reuse_distance < 0:
        raise ValueError(
            "n_items must be positive, n_samples and reuse_distance non-negative"
        )
    if not 0.0 <= reuse_frac <= 1.0:
        raise ValueError("reuse_frac must be in [0, 1]")
    rng = np.random.default_rng(seed)
    window = min(max(1, reuse_distance), n_items)
    near_draw = rng.random(n_samples) < (reuse_frac if reuse_distance else 0.0)
    near = rng.integers(0, window, size=n_samples)
    far = rng.integers(0, n_items, size=n_samples)
    stack = list(rng.permutation(n_items))  # most-recent first
    out = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        depth = int(near[i]) if near_draw[i] else int(far[i])
        idx = stack.pop(depth)
        stack.insert(0, idx)
        out[i] = idx
    return out

"""Key/index distributions used by the case studies.

The paper indexes the decompression array "using a Zipfian
distribution [17] of 32 K accesses" and generates hash-table keys "from
a uniform distribution" (with similar results under Zipf). Both
generators are deterministic under a seed.
"""

import numpy as np


def zipfian_indices(n_items, n_samples, skew=0.99, seed=0):
    """``n_samples`` indices in ``[0, n_items)`` with Zipfian popularity.

    Uses the standard power-law weights ``1 / rank^skew`` over a random
    permutation of items, so popularity is not correlated with address
    order (matching real access patterns).
    """
    if n_items <= 0 or n_samples < 0:
        raise ValueError("n_items must be positive and n_samples non-negative")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    permutation = rng.permutation(n_items)
    draws = rng.choice(n_items, size=n_samples, p=weights)
    return permutation[draws]


def uniform_indices(n_items, n_samples, seed=0):
    """``n_samples`` uniformly random indices in ``[0, n_items)``."""
    if n_items <= 0 or n_samples < 0:
        raise ValueError("n_items must be positive and n_samples non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_items, size=n_samples)


def uniform_keys(n_keys, key_space, seed=0):
    """``n_keys`` uniformly random keys in ``[0, key_space)``."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, key_space, size=n_keys)

"""Serving zoo: JSONL trace format + replay driver for the KV server.

External access traces feed the simulator through a line-per-request
JSONL format. Each line is one request::

    {"t": 120, "client": 0, "op": "get", "key": 42}

- ``t``      -- absolute arrival time in cycles (int, >= 0); strictly
  increasing per client.
- ``client`` -- issuing client id (int, >= 0); clients map round-robin
  onto tiles.
- ``op``     -- ``"get"``, ``"put"``, or ``"scan"``.
- ``key``    -- the key (for scans: the range start; ``scan_len`` comes
  from the run params).

The format is deliberately ``RunSpec``-safe: a trace is plain JSON
data, so ``run_replay`` dispatches through the experiment pool with
the trace inline in the spec kwargs -- content-hashed, cacheable, and
bit-identical across reruns and worker counts like any other run.

Round-trip guarantee: replaying :func:`synthesize_trace` of some
params against those same params reproduces the direct
:func:`repro.workloads.serving.kvserve.run_leviathan` run exactly
(same cycles, stats, and output) -- ``tests/test_serving.py`` and the
worked example in ``docs/workloads.md`` both pin this.
"""

import json

from repro.workloads.serving import kvserve

#: Ops a trace line may carry.
TRACE_OPS = ("get", "put", "scan")


def synthesize_trace(params=None):
    """Flatten the synthetic schedule into trace records.

    Records are merged across clients in ``(t, client)`` order -- the
    order a shared front-end would have logged them -- and replaying
    them reconstructs each client's schedule exactly (per-client
    arrival times are strictly increasing).
    """
    records = [
        {"t": req["t"], "client": c, "op": req["op"], "key": req["key"]}
        for c, requests in enumerate(kvserve.build_schedule(params))
        for req in requests
    ]
    records.sort(key=lambda r: (r["t"], r["client"]))
    return records


def write_trace(records, path):
    """Write records as JSONL (one request per line); returns ``path``."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path


def load_trace(path):
    """Read and validate a JSONL trace file; returns the record list."""
    records = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            records.append(_validate(record, f"{path}:{lineno}"))
    return records


def _validate(record, where):
    if not isinstance(record, dict):
        raise ValueError(f"{where}: trace record must be an object")
    for field in ("t", "client", "key"):
        value = record.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"{where}: field {field!r} must be a non-negative int")
    if record.get("op") not in TRACE_OPS:
        raise ValueError(f"{where}: op must be one of {TRACE_OPS}")
    return {
        "t": int(record["t"]),
        "client": int(record["client"]),
        "op": record["op"],
        "key": int(record["key"]),
    }


def schedules_from_trace(records):
    """Group flat trace records back into per-client schedules.

    The per-client request order is the trace's own ``(t, file order)``
    -- a stable sort, so simultaneous records keep their recorded
    order. Clients with no requests (gaps in the id space) get empty
    schedules, preserving the client -> tile mapping.
    """
    records = sorted(
        enumerate(records), key=lambda pair: (pair[1]["t"], pair[0])
    )
    n_clients = 1 + max((r["client"] for _i, r in records), default=-1)
    schedules = [[] for _ in range(n_clients)]
    for _i, record in records:
        schedules[record["client"]].append(
            {"t": record["t"], "op": record["op"], "key": record["key"]}
        )
    return schedules


def run_replay(
    trace=None,
    trace_path=None,
    params=None,
    n_tiles=16,
    use_runtime=True,
    config_overrides=None,
):
    """Replay a trace through the KV server; returns the ``RunResult``.

    Pass either ``trace`` (a record list -- JSON-safe, so it can ride
    inline in ``RunSpec`` kwargs) or ``trace_path`` (a JSONL file).
    ``params`` supplies the store shape (``n_keys``, ``scan_len``,
    ...); arrival-process params are ignored -- the trace *is* the
    arrival process.
    """
    if (trace is None) == (trace_path is None):
        raise ValueError("pass exactly one of trace= or trace_path=")
    if trace_path is not None:
        records = load_trace(trace_path)
    else:
        records = [_validate(dict(r), f"trace[{i}]") for i, r in enumerate(trace)]
    p = kvserve._params(params)
    return kvserve._run_kv(
        p,
        schedules_from_trace(records),
        "replay" if use_runtime else "replay-baseline",
        use_runtime=use_runtime,
        n_tiles=n_tiles,
        config_overrides=config_overrides,
    )

"""Serving zoo: a memcached-style KV request server (task offload + streams).

Clients issue GET/PUT/SCAN requests against a bucketed key-value store
whose buckets live (mostly) in the LLC. Arrivals are an **open-loop
Poisson process** (:func:`repro.workloads.distributions.poisson_arrivals`):
each client sleeps until a request's arrival timestamp and then issues
it whether or not earlier responses have returned, so queueing shows up
as tail latency instead of self-throttling.

Variants:

- ``baseline``  -- the core serves every request itself: each GET/PUT is
  a round trip to the bucket's LLC bank, and a SCAN walks ``scan_len``
  buckets from the core.
- ``leviathan`` -- GETs are offloaded tasks that return through futures
  (collected asynchronously -- the client keeps issuing), PUTs are
  fire-and-forget invokes, and each client's SCANs are served by a
  per-client :class:`~repro.core.stream.Stream` whose producer walks
  buckets near the data and streams back only the values.

Request classes (``get``/``put``/``scan``) are declared through
:class:`~repro.sim.telemetry.requests.RequestLatencyProbe`, so every
Leviathan run reports ``request.<class>.p50/p95/p99`` in its stats and
sweeps surface them in the dashboard. The probe is attached
unconditionally (it is a pure observer; results stay bit-identical).

:mod:`repro.workloads.serving.tracereplay` replays externally recorded
schedules through the same ``_run_kv`` entry point.
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.core.stream import STREAM_END, Stream
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.ops import Compute, Load, Sleep, Store
from repro.sim.stats import AccessProfile
from repro.sim.system import Machine
from repro.sim.telemetry.requests import RequestLatencyProbe
from repro.workloads.common import finish_run
from repro.workloads.distributions import poisson_arrivals, zipfian_indices

#: The serving mix, scaled: 8 clients of open-loop Poisson traffic
#: against a 512-key store (64 buckets) that fits in the LLC.
DEFAULT_PARAMS = dict(
    n_clients=8,
    requests_per_client=48,
    n_keys=512,
    keys_per_bucket=8,
    mean_gap=60,
    get_frac=0.7,
    put_frac=0.2,
    miss_frac=0.1,
    scan_len=16,
    zipf_skew=0.9,
    stream_buffer=32,
    seed=11,
)

#: hash + key compare + record offset arithmetic per bucket touch.
KV_INSTRUCTIONS = 6
#: per-entry aggregation work after a SCAN's values arrive.
SCAN_INSTRUCTIONS = 2
#: GET of an absent key returns this sentinel.
MISSING = -1


def value_of(key, n_keys):
    """The store's fixed value for ``key`` (PUTs refresh, never change).

    Keeping values a pure function of the key makes every interleaving
    of concurrent GETs/PUTs functionally identical, which is what lets
    the oracle be exact under out-of-order completion.
    """
    return key * 7 + 1 if 0 <= key < n_keys else MISSING


def _params(params):
    p = dict(DEFAULT_PARAMS)
    p.update(params or {})
    return p


def kvserve_config(n_tiles=16, store_bytes=None, ideal=False):
    """Scaled Table V: the bucket array fits in the LLC, not the L2."""
    store_bytes = store_bytes or (64 * Bucket.SIZE)
    per_bank_kb = max(1, (store_bytes * 3) // (2 * n_tiles * 1024))
    per_bank_kb = 1 << (per_bank_kb - 1).bit_length()  # round up to pow2
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(
            size_kb=per_bank_kb, ways=8, tag_latency=3, data_latency=5, replacement="rrip"
        ),
    )
    cfg.engine.ideal = ideal
    cfg.engine.l1d_kb = 1
    return cfg


def build_schedule(params=None):
    """Per-client request schedules, a pure function of the params.

    Returns one list per client of ``{"t", "op", "key"}`` dicts ordered
    by arrival time ``t`` (cycles): ``op`` is ``get``/``put``/``scan``;
    for scans ``key`` is the range start. Keys are Zipfian; a
    ``miss_frac`` slice of GETs targets absent keys. Each client mixes
    its own substream seeds, so adding clients never reshuffles the
    traffic of existing ones.
    """
    p = _params(params)
    schedules = []
    for c in range(p["n_clients"]):
        seed = p["seed"] * 1009 + c
        arrivals = poisson_arrivals(p["requests_per_client"], p["mean_gap"], seed=seed)
        keys = zipfian_indices(
            p["n_keys"], p["requests_per_client"], skew=p["zipf_skew"], seed=seed + 104729
        )
        rng = np.random.default_rng(seed + 7919)
        kinds = rng.random(p["requests_per_client"])
        miss = rng.random(p["requests_per_client"])
        starts = rng.integers(
            0, max(1, p["n_keys"] - p["scan_len"]), size=p["requests_per_client"]
        )
        requests = []
        for i in range(p["requests_per_client"]):
            key = int(keys[i])
            if kinds[i] < p["get_frac"]:
                op = "get"
                if miss[i] < p["miss_frac"]:
                    key = p["n_keys"] + (key % 64)  # absent key
            elif kinds[i] < p["get_frac"] + p["put_frac"]:
                op = "put"
            else:
                op = "scan"
                key = int(starts[i])
            requests.append({"t": int(arrivals[i]), "op": op, "key": key})
        schedules.append(requests)
    return schedules


def expected_output(schedules, params=None):
    """The functional oracle: ``[get_sum, scan_sum, put_count]``."""
    p = _params(params)
    get_sum = scan_sum = puts = 0
    for requests in schedules:
        for req in requests:
            if req["op"] == "get":
                get_sum += value_of(req["key"], p["n_keys"])
            elif req["op"] == "put":
                puts += 1
            else:
                scan_sum += sum(
                    value_of(k, p["n_keys"])
                    for k in range(req["key"], req["key"] + p["scan_len"])
                )
    return [get_sum, scan_sum, puts]


class Bucket(Actor):
    """One 64 B bucket: a line-sized slab of ``keys_per_bucket`` records."""

    SIZE = 64

    @action
    def get(self, env, key):
        """Probe the bucket near its LLC bank; the return fills the future."""
        yield Load(self.addr, self.SIZE)
        yield Compute(KV_INSTRUCTIONS)
        return env.machine.mem[self.addr].get(key, MISSING)

    @action
    def put(self, env, key, value):
        """Refresh ``key`` in place (fire-and-forget; no future)."""
        yield Load(self.addr, self.SIZE)
        yield Compute(KV_INSTRUCTIONS)
        mem = env.machine.mem
        addr = self.addr
        yield Store(
            addr, self.SIZE, apply=lambda: mem[addr].__setitem__(key, value)
        )


class KVStore:
    """The bucketed store: ``n_keys`` records dealt into line-sized buckets."""

    def __init__(self, machine, runtime, params):
        p = _params(params)
        self.machine = machine
        self.n_keys = p["n_keys"]
        self.keys_per_bucket = p["keys_per_bucket"]
        self.scan_len = p["scan_len"]
        self.n_buckets = -(-self.n_keys // self.keys_per_bucket)
        if runtime is not None:
            allocator = runtime.allocator(
                Bucket.SIZE,
                capacity=self.n_buckets,
                padding=True,
                llc_mapping=True,
                actor_cls=Bucket,
            )
            self.buckets = [allocator.allocate() for _ in range(self.n_buckets)]
        else:
            # Baseline machine (no runtime): identical padded layout, so
            # the variants differ in where requests execute, not layout.
            from repro.core.allocator import padded_size_of

            cfg = machine.config
            padded = padded_size_of(
                Bucket.SIZE, cfg.line_size, cfg.leviathan.max_object_lines
            )
            self.buckets = []
            for _ in range(self.n_buckets):
                bucket = Bucket()
                bucket.addr = machine.address_space.alloc(padded, align=padded)
                self.buckets.append(bucket)
        for index, bucket in enumerate(self.buckets):
            lo = index * self.keys_per_bucket
            hi = min(lo + self.keys_per_bucket, self.n_keys)
            machine.mem[bucket.addr] = {
                k: value_of(k, self.n_keys) for k in range(lo, hi)
            }

    def bucket_of(self, key):
        """The bucket ``key`` hashes to (absent keys wrap like real ones)."""
        return self.buckets[(key // self.keys_per_bucket) % self.n_buckets]

    def value_of(self, key):
        return value_of(key, self.n_keys)


class ScanStream(Stream):
    """One client's SCAN responses, produced near the data.

    The producer (a long-lived engine thread) walks each scan range's
    buckets in its LLC bank and pushes only the values; the consumer
    core reads them as prefetchable phantom loads.
    """

    def __init__(self, runtime, store, scans, tile, buffer_entries, name):
        super().__init__(
            runtime,
            object_size=8,
            buffer_entries=buffer_entries,
            consumer_tile=tile,
            producer_tile=tile,
            capacity_hint=max(64, len(scans) * store.scan_len + 8),
            name=name,
        )
        self.store = store
        self.scans = scans

    def gen_stream(self, env):
        for start in self.scans:
            for key in range(start, start + self.store.scan_len):
                bucket = self.store.bucket_of(key)
                yield Load(bucket.addr, bucket.SIZE)
                yield Compute(1)
                yield from self.push(self.store.value_of(key))


def _pace(machine, arrival):
    """Open-loop pacing: sleep until ``arrival`` unless already late."""
    now = machine.sim_time()
    if arrival > now:
        yield Sleep(arrival - now)


def _client_baseline(machine, store, requests, sink):
    mem = machine.mem
    for req in requests:
        yield from _pace(machine, req["t"])
        key = req["key"]
        if req["op"] == "get":
            bucket = store.bucket_of(key)
            yield Load(bucket.addr, bucket.SIZE)
            yield Compute(KV_INSTRUCTIONS)
            sink["get"] += int(mem[bucket.addr].get(key, MISSING))
        elif req["op"] == "put":
            bucket = store.bucket_of(key)
            yield Load(bucket.addr, bucket.SIZE)
            yield Compute(KV_INSTRUCTIONS)
            addr, value = bucket.addr, store.value_of(key)
            yield Store(
                addr, bucket.SIZE, apply=lambda a=addr, k=key, v=value: mem[a].__setitem__(k, v)
            )
            sink["put"] += 1
        else:
            total = 0
            for k in range(key, key + store.scan_len):
                bucket = store.bucket_of(k)
                yield Load(bucket.addr, bucket.SIZE)
                yield Compute(1)
                total += int(mem[bucket.addr][k])
            yield Compute(SCAN_INSTRUCTIONS * store.scan_len)
            sink["scan"] += total


def _client_leviathan(machine, store, requests, scan_stream, sink):
    futures = []
    for req in requests:
        yield from _pace(machine, req["t"])
        key = req["key"]
        if req["op"] == "get":
            future = yield Invoke(
                store.bucket_of(key),
                "get",
                (key,),
                location=Location.DYNAMIC,
                with_future=True,
                args_bytes=16,
            )
            futures.append(future)
        elif req["op"] == "put":
            yield Invoke(
                store.bucket_of(key),
                "put",
                (key, store.value_of(key)),
                location=Location.DYNAMIC,
                args_bytes=24,
            )
            sink["put"] += 1
        else:
            total = 0
            for _ in range(store.scan_len):
                value = yield from scan_stream.consume()
                assert value is not STREAM_END, "scan stream underran"
                total += int(value)
            yield Compute(SCAN_INSTRUCTIONS * store.scan_len)
            sink["scan"] += total
    # Open loop: responses are collected after the issue loop, so a slow
    # GET delays nothing but its own future-wait (tail latency).
    for future in futures:
        sink["get"] += int((yield WaitFuture(future)))


def _run_kv(
    p,
    schedules,
    name,
    use_runtime,
    ideal=False,
    n_tiles=16,
    config_overrides=None,
):
    """Execute one variant over explicit per-client ``schedules``.

    Shared by the parameterized entry points below and by
    :mod:`repro.workloads.serving.tracereplay` (which feeds recorded
    schedules). Every run verifies the functional oracle.
    """
    store_bytes = Bucket.SIZE * -(-p["n_keys"] // p["keys_per_bucket"])
    cfg = kvserve_config(n_tiles=n_tiles, store_bytes=store_bytes, ideal=ideal)
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    profile = AccessProfile(machine)
    sinks = [{"get": 0, "put": 0, "scan": 0} for _ in schedules]
    probe = None
    if use_runtime:
        runtime = Leviathan(machine)
        store = KVStore(machine, runtime, p)
        classes = {"get": "get", "put": "put"}
        streams = {}
        for c, requests in enumerate(schedules):
            scans = [r["key"] for r in requests if r["op"] == "scan"]
            if scans:
                streams[c] = ScanStream(
                    runtime,
                    store,
                    scans,
                    tile=c % n_tiles,
                    buffer_entries=p["stream_buffer"],
                    name=f"kv-scan{c}",
                )
                classes[f"kv-scan{c}"] = "scan"
        # Attached unconditionally: pure observer, and keeping the bus
        # active makes correlation-id draws identical across configs.
        probe = RequestLatencyProbe(machine, classes)
        for c, requests in enumerate(schedules):
            if c in streams:
                streams[c].start()
            machine.spawn(
                _client_leviathan(
                    machine, store, requests, streams.get(c), sinks[c]
                ),
                tile=c % n_tiles,
                name=f"kv-client{c}",
            )
    else:
        store = KVStore(machine, None, p)
        for c, requests in enumerate(schedules):
            machine.spawn(
                _client_baseline(machine, store, requests, sinks[c]),
                tile=c % n_tiles,
                name=f"kv-client{c}",
            )
    machine.run()
    output = [
        sum(s["get"] for s in sinks),
        sum(s["scan"] for s in sinks),
        sum(s["put"] for s in sinks),
    ]
    expected = expected_output(schedules, p)
    if output != expected:
        raise AssertionError(f"kvserve {name}: output {output} != oracle {expected}")
    result = finish_run(machine, name, output=output, profile=profile)
    if probe is not None:
        probe.finalize()
        result.stats.update(probe.stat_fields())
    return result


def run_baseline(params=None, n_tiles=16, config_overrides=None):
    """The core-serves-everything variant."""
    p = _params(params)
    return _run_kv(
        p,
        build_schedule(p),
        "baseline",
        use_runtime=False,
        n_tiles=n_tiles,
        config_overrides=config_overrides,
    )


def run_leviathan(params=None, n_tiles=16, ideal=False, config_overrides=None):
    """Offloaded GET/PUT + streamed SCAN (``ideal`` zeroes engine cost)."""
    p = _params(params)
    return _run_kv(
        p,
        build_schedule(p),
        "ideal" if ideal else "leviathan",
        use_runtime=True,
        ideal=ideal,
        n_tiles=n_tiles,
        config_overrides=config_overrides,
    )

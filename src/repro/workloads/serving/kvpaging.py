"""Serving zoo: LLM KV-cache paging (long-lived actions + morph eviction).

The *Proxics* far-memory framing (PAPERS.md): an inference server's
KV-cache is larger than the fast tier, so pages shuttle between a slow
backing region ("far memory") and a small resident set. Decode walks
the cache with tunable temporal locality
(:func:`repro.workloads.distributions.reuse_distance_indices`) and
periodically dirties pages (cache-append writes).

Variants:

- ``baseline``  -- a software pager per worker on the core: the shared
  fast tier (``resident_pages``) is statically partitioned into
  per-worker quotas (the usual software answer to a shared cache),
  every access pays a page-table walk, and misses pay a fault handler
  (trap, victim pick, remap, TLB shootdown) plus an explicit evict
  (+writeback when dirty), fetch, and install copy.
- ``leviathan`` -- the page pool is a :class:`~repro.core.morph.Morph`
  at the LLC: touching a non-resident page triggers its constructor
  (fetch from backing, near the bank), capacity evictions trigger the
  destructor (writeback only when dirty), and *decode* runs as
  long-lived batched actions (``steps_per_invoke`` steps per invoke)
  on the engines. The cores never pay paging software overhead, and
  the fast tier is shared *dynamically* -- a worker in a hot phase
  borrows capacity a quiet worker is not using, which no static
  partition can.

Knobs: ``n_pages`` (working-set size), ``resident_pages`` (fast-tier
capacity -> LLC size), ``reuse_distance`` (temporal locality; larger =
worse). The request class ``decode`` surfaces per-invoke latency
percentiles via :class:`~repro.sim.telemetry.requests.RequestLatencyProbe`.
"""

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.morph import Morph
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.ops import Compute, Load, Store
from repro.sim.stats import AccessProfile
from repro.sim.system import Machine
from repro.sim.telemetry.requests import RequestLatencyProbe
from repro.workloads.common import finish_run
from repro.workloads.distributions import reuse_distance_indices

#: Scaled defaults: a 256-page cache (16 KB) over a resident set of 64
#: pages (the LLC), walked by 4 decode workers. The default reuse
#: distance (128) exceeds the resident set -- the far-memory regime the
#: workload models, where paging overhead dominates.
DEFAULT_PARAMS = dict(
    n_pages=256,
    page_bytes=64,
    resident_pages=64,
    n_workers=4,
    decode_steps=96,
    steps_per_invoke=16,
    reuse_distance=128,
    seed=29,
)

#: software page-table walk + LRU bookkeeping per access (baseline only).
PTW_INSTRUCTIONS = 4
#: page-fault handling per baseline miss: trap, pick a victim, remap,
#: TLB shootdown. Conservative next to real fault paths (microseconds);
#: the morph's data-triggered page-in pays none of it.
FAULT_INSTRUCTIONS = 120
#: attention-style work per decode step, either variant.
ATTEND_INSTRUCTIONS = 6
#: every 4th decode step appends to the page (dirties it).
DIRTY_EVERY = 4


def page_value(index):
    """The fixed payload of page ``index`` (writes re-append the same
    value, so eviction/writeback order cannot change functional
    results)."""
    return index * 13 + 7


def _params(params):
    p = dict(DEFAULT_PARAMS)
    p.update(params or {})
    return p


def paging_config(n_tiles=4, resident_bytes=None, ideal=False):
    """Scaled Table V: the LLC *is* the fast tier (resident set)."""
    resident_bytes = resident_bytes or (64 * 64)
    per_bank_kb = max(1, resident_bytes // (n_tiles * 1024))
    per_bank_kb = 1 << (per_bank_kb - 1).bit_length()  # round up to pow2
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(
            size_kb=per_bank_kb, ways=8, tag_latency=3, data_latency=5, replacement="rrip"
        ),
    )
    cfg.engine.ideal = ideal
    cfg.engine.l1d_kb = 1
    return cfg


def access_sequences(p):
    """One reuse-distance-controlled page sequence per worker."""
    return [
        reuse_distance_indices(
            p["n_pages"], p["decode_steps"], p["reuse_distance"], seed=p["seed"] * 31 + w
        )
        for w in range(p["n_workers"])
    ]


def expected_output(p):
    """Oracle: each step reads its page's fixed value; sum everything."""
    return int(
        sum(sum(page_value(int(i)) for i in seq) for seq in access_sequences(p))
    )


class PageMorph(Morph):
    """The KV-cache page pool, materialized in the LLC on demand.

    Constructor = page-in (fetch from the backing region near the
    bank); destructor = page-out (writeback only when the page was
    dirtied). This is the morph-managed replacement for the baseline's
    software pager.
    """

    def __init__(self, runtime, n_pages, page_bytes, backing_base):
        super().__init__(
            runtime, level="llc", n_actors=n_pages, object_size=page_bytes, name="kv-pages"
        )
        self.backing_base = backing_base
        self.page_bytes = page_bytes

    def construct(self, view, index):
        backing = self.backing_base + index * self.page_bytes
        yield Load(backing, self.page_bytes)
        yield Compute(2)
        self.machine.mem[self.get_actor_addr(index)] = self.machine.mem[backing]

    def destruct(self, view, index, dirty):
        if dirty:
            yield Store(self.backing_base + index * self.page_bytes, self.page_bytes)


class DecodeWorker(Actor):
    """A decode head: walks its access sequence in long-lived batches."""

    SIZE = 8

    def __init__(self, morph, sequence):
        super().__init__()
        self.morph = morph
        self.sequence = sequence

    @action
    def decode(self, env, start, count):
        """Decode ``count`` steps from ``start``; returns the value sum.

        Each step loads its page's phantom line (page-in happens in the
        morph constructor on a miss) and every ``DIRTY_EVERY``-th step
        appends, dirtying the line so capacity evictions pay writeback.
        """
        mem = env.machine.mem
        box = []
        total = 0
        for i in range(start, start + count):
            index = int(self.sequence[i])
            addr = self.morph.get_actor_addr(index)
            box.clear()
            yield Load(addr, 8, apply=lambda a=addr: box.append(mem[a]))
            yield Compute(ATTEND_INSTRUCTIONS)
            if i % DIRTY_EVERY == 0:
                yield Store(addr, 8)  # append: same value, dirties the page
            total += int(box[0])
        return total


def _decode_driver(machine, worker, n_steps, steps_per_invoke, sink):
    done = 0
    while done < n_steps:
        count = min(steps_per_invoke, n_steps - done)
        future = yield Invoke(
            worker,
            "decode",
            (done, count),
            location=Location.DYNAMIC,
            with_future=True,
            args_bytes=24,
        )
        sink["decoded"] += int((yield WaitFuture(future)))
        done += count


def _baseline_pager(machine, backing_base, buffer_base, quota, p, sequence, sink):
    """Software paging on the core: PTW + LRU + explicit copies.

    ``quota`` is this worker's static share of the fast tier
    (``resident_pages // n_workers``) -- software partitions the shared
    capacity up front, where the morph shares it demand-driven.
    """
    mem = machine.mem
    page = p["page_bytes"]
    resident = {}  # page index -> buffer slot
    lru = []  # least-recent first
    dirty = set()
    free = list(range(quota))
    for i, raw in enumerate(sequence):
        index = int(raw)
        yield Compute(PTW_INSTRUCTIONS)
        if index in resident:
            lru.remove(index)
        else:
            yield Compute(FAULT_INSTRUCTIONS)
            if free:
                slot = free.pop()
            else:
                victim = lru.pop(0)
                slot = resident.pop(victim)
                if victim in dirty:
                    dirty.discard(victim)
                    yield Store(backing_base + victim * page, page)
            yield Load(backing_base + index * page, page)
            yield Store(buffer_base + slot * page, page)
            resident[index] = slot
        lru.append(index)
        slot = resident[index]
        yield Load(buffer_base + slot * page, 8)
        yield Compute(ATTEND_INSTRUCTIONS)
        if i % DIRTY_EVERY == 0:
            yield Store(buffer_base + slot * page, 8)
            dirty.add(index)
        sink["decoded"] += int(mem[backing_base + index * page])


def _alloc_backing(machine, p):
    base = machine.address_space.alloc(
        p["n_pages"] * p["page_bytes"], align=machine.config.line_size
    )
    for i in range(p["n_pages"]):
        machine.mem[base + i * p["page_bytes"]] = page_value(i)
    return base


def run_baseline(params=None, n_tiles=4, config_overrides=None):
    """Software paging on the cores."""
    p = _params(params)
    cfg = paging_config(
        n_tiles=n_tiles, resident_bytes=p["resident_pages"] * p["page_bytes"]
    )
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    profile = AccessProfile(machine)
    backing = _alloc_backing(machine, p)
    quota = max(1, p["resident_pages"] // p["n_workers"])
    sinks = [{"decoded": 0} for _ in range(p["n_workers"])]
    for w, sequence in enumerate(access_sequences(p)):
        buffer_base = machine.address_space.alloc(
            quota * p["page_bytes"], align=machine.config.line_size
        )
        machine.spawn(
            _baseline_pager(machine, backing, buffer_base, quota, p, sequence, sinks[w]),
            tile=w % n_tiles,
            name=f"pager{w}",
        )
    machine.run()
    output = sum(s["decoded"] for s in sinks)
    if output != expected_output(p):
        raise AssertionError("kvpaging baseline: output != oracle")
    return finish_run(machine, "baseline", output=output, profile=profile)


def run_leviathan(params=None, n_tiles=4, ideal=False, config_overrides=None):
    """Morph-managed paging + long-lived decode actions."""
    p = _params(params)
    cfg = paging_config(
        n_tiles=n_tiles,
        resident_bytes=p["resident_pages"] * p["page_bytes"],
        ideal=ideal,
    )
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    profile = AccessProfile(machine)
    runtime = Leviathan(machine)
    backing = _alloc_backing(machine, p)
    morph = PageMorph(runtime, p["n_pages"], p["page_bytes"], backing)
    allocator = runtime.allocator(DecodeWorker.SIZE, capacity=p["n_workers"])
    probe = RequestLatencyProbe(machine, {"decode": "decode"})
    sinks = [{"decoded": 0} for _ in range(p["n_workers"])]
    for w, sequence in enumerate(access_sequences(p)):
        worker = DecodeWorker(morph, sequence)
        worker.addr = allocator.allocate()
        machine.spawn(
            _decode_driver(
                machine, worker, p["decode_steps"], p["steps_per_invoke"], sinks[w]
            ),
            tile=w % n_tiles,
            name=f"decode{w}",
        )
    machine.run()
    output = sum(s["decoded"] for s in sinks)
    if output != expected_output(p):
        raise AssertionError("kvpaging leviathan: output != oracle")
    result = finish_run(
        machine, "ideal" if ideal else "leviathan", output=output, profile=profile
    )
    probe.finalize()
    result.stats.update(probe.stat_fields())
    return result

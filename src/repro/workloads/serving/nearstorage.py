"""Serving zoo: near-storage scan/filter/join via pushdown offload.

The *Conduit* shape (PAPERS.md): a processor next to storage scans a
fact table, filters it, joins survivors against a broadcast dimension
table, and ships only aggregates to the host. Here the "storage tier"
is a DRAM-backed fact table far larger than the LLC, carved into
power-of-two *chunks* whose lines the LLC object mapping pins to a
single bank -- so a ``DYNAMIC`` invoke executes each chunk's scan on
the engine **at the chunk's bank**, next to the data.

Variants:

- ``baseline``  -- each scanner core reads every fact row across the
  NoC (DRAM round trips through its private caches), filters, and
  probes the dimension table per match: the whole table crosses the
  chip to the cores.
- ``leviathan`` -- per-chunk ``scan`` tasks fan out over all banks'
  engines (the drivers pipeline invokes and collect futures later),
  each filtering and joining in place against the broadcast dimension
  (a pure-compute weight, Conduit's replicated-dimension trick); only
  an 8 B aggregate per 256 B chunk returns. Bank-level parallelism and
  no row movement are exactly the pushdown win.

Per-chunk scan latency surfaces as request class ``storage_scan``
(p50/p95/p99 in the dashboard).
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.ops import Compute, Load
from repro.sim.stats import AccessProfile
from repro.sim.system import Machine
from repro.sim.telemetry.requests import RequestLatencyProbe
from repro.workloads.common import finish_run

#: Scaled defaults: a 64 KB fact table (8x the LLC) in 256 B chunks
#: (the hardware's largest mappable object), driven by 4 scanner
#: cores, joined against a 64-entry dimension.
DEFAULT_PARAMS = dict(
    n_rows=2048,
    row_bytes=32,
    chunk_rows=8,
    n_dims=64,
    n_scanners=4,
    value_range=100,
    filter_mod=4,
    seed=41,
)

#: predicate evaluation per row scanned.
FILTER_INSTRUCTIONS = 3
#: hash + probe + accumulate per surviving row.
JOIN_INSTRUCTIONS = 4


def _params(params):
    p = dict(DEFAULT_PARAMS)
    p.update(params or {})
    return p


def nearstorage_config(n_tiles=8, ideal=False):
    """Scaled Table V: the fact table dwarfs the LLC (storage-resident)."""
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=2, ways=4, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(size_kb=1, ways=8, tag_latency=3, data_latency=5, replacement="rrip"),
    )
    cfg.engine.ideal = ideal
    cfg.engine.l1d_kb = 1
    return cfg


def make_table(p):
    """The fact table's ``(dim_key, value)`` columns, seeded."""
    rng = np.random.default_rng(p["seed"])
    dim_keys = rng.integers(0, p["n_dims"], size=p["n_rows"])
    values = rng.integers(0, p["value_range"], size=p["n_rows"])
    return dim_keys, values


def dim_weight(key):
    """The dimension table's fixed per-key weight (broadcast join)."""
    return key * 3 + 1


def expected_output(p):
    """Oracle: ``[sum(value * weight) over matches, match_count]``."""
    dim_keys, values = make_table(p)
    mask = values % p["filter_mod"] == 0
    joined = int(np.sum(values[mask] * (dim_keys[mask] * 3 + 1)))
    return [joined, int(np.count_nonzero(mask))]


class FactChunk(Actor):
    """A power-of-two slab of fact rows, bank-mapped as one object.

    ``SIZE`` is set per run (``chunk_rows * row_bytes``) so the LLC
    object mapping keeps every line of the chunk in one bank and
    ``DYNAMIC`` placement sends :meth:`scan` to that bank's engine.
    """

    SIZE = 256

    def __init__(self, n_rows, row_bytes, filter_mod):
        super().__init__()
        self.n_rows = n_rows
        self.row_bytes = row_bytes
        self.filter_mod = filter_mod

    @action
    def scan(self, env):
        """Filter + join this chunk in place; returns ``(joined, matched)``."""
        mem = env.machine.mem
        joined = matched = 0
        for i in range(self.n_rows):
            addr = self.addr + i * self.row_bytes
            yield Load(addr, self.row_bytes)
            yield Compute(FILTER_INSTRUCTIONS)
            dim_key, value = mem[addr]
            if value % self.filter_mod == 0:
                yield Compute(JOIN_INSTRUCTIONS)
                joined += int(value) * dim_weight(int(dim_key))
                matched += 1
        return (joined, matched)


def _build_chunks(machine, runtime, p):
    """Deal the fact table into chunks (identical padded layout in both
    variants; the baseline just never invokes on them)."""
    dim_keys, values = make_table(p)
    chunk_bytes = p["chunk_rows"] * p["row_bytes"]
    chunk_cls = type("FactChunk%dB" % chunk_bytes, (FactChunk,), {"SIZE": chunk_bytes})
    n_chunks = -(-p["n_rows"] // p["chunk_rows"])
    if runtime is not None:
        allocator = runtime.allocator(
            chunk_bytes, capacity=n_chunks, padding=True, llc_mapping=True
        )
        alloc = allocator.allocate
    else:
        from repro.core.allocator import padded_size_of

        cfg = machine.config
        padded = padded_size_of(chunk_bytes, cfg.line_size, cfg.leviathan.max_object_lines)
        alloc = lambda: machine.address_space.alloc(padded, align=padded)
    chunks = []
    for c in range(n_chunks):
        lo = c * p["chunk_rows"]
        rows = min(p["chunk_rows"], p["n_rows"] - lo)
        chunk = chunk_cls(rows, p["row_bytes"], p["filter_mod"])
        chunk.addr = alloc()
        for i in range(rows):
            machine.mem[chunk.addr + i * p["row_bytes"]] = (
                int(dim_keys[lo + i]),
                int(values[lo + i]),
            )
        chunks.append(chunk)
    return chunks


def _build_dim(machine, p):
    dim_base = machine.address_space.alloc(
        p["n_dims"] * 8, align=machine.config.line_size
    )
    for k in range(p["n_dims"]):
        machine.mem[dim_base + k * 8] = dim_weight(k)
    return dim_base


def _deal(chunks, n_scanners):
    """Contiguous chunk ranges, one per scanner."""
    step = -(-len(chunks) // n_scanners)
    return [chunks[lo : lo + step] for lo in range(0, len(chunks), step)][:n_scanners]


def _scan_baseline(machine, chunks, dim_base, sink):
    """Host-side scan: every row crosses the NoC to the core."""
    mem = machine.mem
    for chunk in chunks:
        for i in range(chunk.n_rows):
            addr = chunk.addr + i * chunk.row_bytes
            yield Load(addr, chunk.row_bytes)
            yield Compute(FILTER_INSTRUCTIONS)
            dim_key, value = mem[addr]
            if value % chunk.filter_mod == 0:
                yield Load(dim_base + dim_key * 8, 8)
                yield Compute(JOIN_INSTRUCTIONS)
                sink["joined"] += int(value) * int(mem[dim_base + dim_key * 8])
                sink["matched"] += 1


def _pushdown_driver(machine, chunks, sink):
    """Fan chunk scans out across the banks, then reduce the futures.

    Invokes pipeline (the engine NACK/buffer backpressure is the only
    throttle), so chunks in different banks scan concurrently.
    """
    futures = []
    for chunk in chunks:
        future = yield Invoke(
            chunk, "scan", (), location=Location.DYNAMIC, with_future=True, args_bytes=8
        )
        futures.append(future)
    for future in futures:
        joined, matched = yield WaitFuture(future)
        yield Compute(2)  # accumulate the partial aggregate
        sink["joined"] += int(joined)
        sink["matched"] += int(matched)


def _collect(machine, p, sinks, name, profile, probe=None):
    output = [
        sum(s["joined"] for s in sinks),
        sum(s["matched"] for s in sinks),
    ]
    if output != expected_output(p):
        raise AssertionError(f"nearstorage {name}: output != oracle")
    result = finish_run(machine, name, output=output, profile=profile)
    if probe is not None:
        probe.finalize()
        result.stats.update(probe.stat_fields())
    return result


def run_baseline(params=None, n_tiles=8, config_overrides=None):
    """Cores scan, filter, and join everything themselves."""
    p = _params(params)
    cfg = nearstorage_config(n_tiles=n_tiles)
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    profile = AccessProfile(machine)
    chunks = _build_chunks(machine, None, p)
    dim_base = _build_dim(machine, p)
    sinks = [{"joined": 0, "matched": 0} for _ in range(p["n_scanners"])]
    for s, share in enumerate(_deal(chunks, p["n_scanners"])):
        machine.spawn(
            _scan_baseline(machine, share, dim_base, sinks[s]),
            tile=s % n_tiles,
            name=f"scan{s}",
        )
    machine.run()
    return _collect(machine, p, sinks, "baseline", profile)


def run_leviathan(params=None, n_tiles=8, ideal=False, config_overrides=None):
    """Chunk scans execute at their banks; cores reduce aggregates."""
    p = _params(params)
    cfg = nearstorage_config(n_tiles=n_tiles, ideal=ideal)
    if config_overrides:
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    profile = AccessProfile(machine)
    runtime = Leviathan(machine)
    chunks = _build_chunks(machine, runtime, p)
    _build_dim(machine, p)  # same layout; the pushdown join never loads it
    probe = RequestLatencyProbe(machine, {"scan": "storage_scan"})
    sinks = [{"joined": 0, "matched": 0} for _ in range(p["n_scanners"])]
    for s, share in enumerate(_deal(chunks, p["n_scanners"])):
        machine.spawn(
            _pushdown_driver(machine, share, sinks[s]),
            tile=s % n_tiles,
            name=f"scan{s}",
        )
    machine.run()
    return _collect(
        machine, p, sinks, "ideal" if ideal else "leviathan", profile, probe
    )

"""The serving zoo: request-serving and storage-shaped scenarios.

Where the four case studies (:mod:`repro.workloads`) reproduce the
paper's figures, this package maps *modern serving traffic* onto the
same four NDC paradigms -- the generality claim of Sec. V, exercised
on workload shapes the paper does not sweep itself:

- :mod:`repro.workloads.serving.kvserve` -- a memcached-style KV
  request server: seeded open-loop Poisson arrivals, GET/PUT via task
  offload, range scans via streaming, per-class tail latency
  (p50/p95/p99) from the telemetry span tracker.
- :mod:`repro.workloads.serving.kvpaging` -- LLM-inference KV-cache
  paging in the far-memory framing of *Proxics* (PAPERS.md): a morph
  keeps hot cache pages materialized in the LLC with data-triggered
  eviction writeback, long-lived decode actions walk them, and
  working-set size / reuse distance are knobs.
- :mod:`repro.workloads.serving.nearstorage` -- a scan/filter/join
  pushdown in the near-storage shape of *Conduit* (PAPERS.md):
  bank-mapped fact-table chunks are scanned by per-chunk tasks on the
  engines at their banks, and only aggregates return to the cores.
- :mod:`repro.workloads.serving.tracereplay` -- a ``RunSpec``-safe
  JSONL trace format plus replay driver, so externally recorded access
  traces feed the KV server bit-identically.

Every module follows the conventions of ``docs/workloads.md``: pure
``run_*(params, ...)`` entry points (pool-dispatchable, seeded,
bit-identical across reruns and worker counts), a ``DEFAULT_PARAMS``
dict, a scaled config builder, and a functional oracle checked on
every run.
"""

from repro.workloads.serving import kvpaging, kvserve, nearstorage, tracereplay

__all__ = ["kvserve", "kvpaging", "nearstorage", "tracereplay"]

"""Case study: decoupled graph traversal / HATS (Sec. VIII-C, Figs. 20-21).

HATS [51] improves graph-processing locality by traversing edges in
bounded depth-first (BDFS) order, which follows community structure
instead of memory layout. The traversal itself runs poorly on cores
(unpredictable branches), so HATS decouples it onto a near-data engine
that streams edges to the core.

Variants (Fig. 20's bars), all computing one PageRank iteration over a
community-structured graph (the stand-in for uk-2002):

- ``baseline``  -- PageRank in CSR (layout) order: poor locality on the
  contribution array.
- ``sw_bdfs``   -- BDFS on the core: better locality, but the traversal
  branches mispredict and its instructions compete with processing.
- ``tako``      -- tākō's pseudo-streaming: data-triggered constructors
  generate the next cache line of edges on each consumer miss. No
  run-ahead (generation is demand-triggered), and every line re-incurs
  the BDFS stack reinitialization the paper calls out.
- ``leviathan`` -- a Leviathan Stream: the producer runs BDFS
  continuously on the engine and pushes edges ahead of the consumer;
  the consumer's loads are sequential and prefetchable.
- ``ideal``     -- Leviathan with the idealized engine.

Fig. 21's breakdown (per-phase DRAM accesses, branch mispredictions per
edge, engine instructions per edge) falls out of the stats counters.
"""

import numpy as np

from repro.core.morph import Morph
from repro.core.runtime import Leviathan
from repro.core.stream import Stream, STREAM_END
from repro.sim.config import SystemConfig, CacheConfig
from repro.sim.ops import Branch, Compute, Load, Store
from repro.sim.system import Machine
from repro.workloads.common import StudyResult, finish_run
from repro.workloads.graphs import community_graph

#: uk-2002 scaled to simulator speed; strong communities, shuffled ids.
DEFAULT_PARAMS = dict(
    n_vertices=4096,
    n_edges=65536,
    n_communities=64,
    bdfs_depth=8,
    intra_fraction=0.95,
    stream_buffer=64,
    n_threads=1,
    seed=31,
)

#: Traversal work per edge (degree/active checks, stack arithmetic).
TRAVERSAL_INSTRUCTIONS = 4
#: tākō's per-line BDFS stack reinitialization (Sec. VIII-C).
TAKO_REINIT_INSTRUCTIONS = 48
#: Edge-processing work on the consumer (accumulate, loop bookkeeping).
PROCESS_INSTRUCTIONS = 3


def _traversal_mispredicts(src, dst):
    """Deterministic stand-in for BDFS's data-dependent branches.

    The push/skip decision depends on the active bit and stack depth,
    which a core's predictor cannot learn; roughly a third of edges
    mispredict.
    """
    return ((src * 2654435761 ^ dst) >> 3) % 8 < 3


def hats_config(n_tiles=16, ideal=False):
    """Scaled Table V: vertex data is ~2x the LLC, communities fit L1/L2."""
    cfg = SystemConfig(
        n_tiles=n_tiles,
        l1=CacheConfig(size_kb=2, ways=4, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=8, ways=8, tag_latency=2, data_latency=4, replacement="rrip"),
        llc=CacheConfig(size_kb=1, ways=8, tag_latency=3, data_latency=5, replacement="rrip"),
    )
    cfg.engine.ideal = ideal
    cfg.engine.l1d_kb = 2  # scaled with the rest of the hierarchy
    return cfg


class _HatsData:
    """Graph, layouts, the BDFS edge order, and the PageRank oracle."""

    def __init__(self, machine, params):
        p = dict(DEFAULT_PARAMS)
        p.update(params or {})
        self.params = p
        self.machine = machine
        graph = community_graph(
            p["n_vertices"],
            p["n_edges"],
            n_communities=p.get("n_communities"),
            intra_fraction=p["intra_fraction"],
            seed=p["seed"],
        )
        self.graph = graph
        n = graph.n_vertices

        space = machine.address_space
        self.rank_base = space.alloc(n * 8, align=64)
        self.contrib_base = space.alloc(n * 8, align=64)
        self.new_rank_base = space.alloc(n * 8, align=64)
        self.neighbors_base = space.alloc(graph.n_edges * 4, align=64)
        self.offsets_base = space.alloc((n + 1) * 8, align=64)
        self.active_base = space.alloc(max(64, n // 8), align=64)

        rng = np.random.default_rng(p["seed"] + 5)
        self.ranks = rng.random(n)
        self.contrib_values = self.ranks / np.maximum(graph.out_degree, 1)
        for v in range(n):
            machine.mem[self.new_rank_base + v * 8] = 0.0

        oracle = np.zeros(n)
        dsts = np.repeat(np.arange(n), np.diff(graph.offsets))
        np.add.at(oracle, dsts, self.contrib_values[graph.neighbors])
        self.oracle = oracle

        self._bdfs_cache = None
        self._bdfs_range_cache = {}
        self.n_threads = p.get("n_threads", 1)

    def vertex_slices(self):
        """Per-thread destination-vertex ranges (static partition).

        Each thread owns the in-edges of its vertex range, so parallel
        BDFS traversals cover every edge exactly once without shared
        traversal state -- the parallelization HATS hardware uses
        per-tile traversal engines for.
        """
        n = self.graph.n_vertices
        bounds = np.linspace(0, n, self.n_threads + 1, dtype=np.int64)
        return [(int(bounds[t]), int(bounds[t + 1])) for t in range(self.n_threads)]

    # ------------------------------------------------------------------
    # traversal orders
    # ------------------------------------------------------------------
    def csr_edges(self, vertex_range=None):
        """(src, dst, edge_index, last_of_dst) in CSR layout order."""
        graph = self.graph
        lo, hi = vertex_range or (0, graph.n_vertices)
        for dst in range(lo, hi):
            k = int(graph.offsets[dst])
            neighbors = graph.in_neighbors(dst)
            for i, src in enumerate(neighbors):
                yield int(src), dst, k + i, i == len(neighbors) - 1

    def bdfs_edges(self):
        """The bounded-DFS edge order of Fig. 19 (computed once).

        Returns ``(src, dst, root_scan_steps)`` triples:
        ``root_scan_steps`` counts the inactive vertices
        ``getNextRootVertex`` skipped before this burst began -- work
        the traversal performs while emitting nothing (the producer's
        bursty silence that stream buffering rides through).
        """
        if self._bdfs_cache is not None:
            return self._bdfs_cache
        order = self.bdfs_edges_for(0, self.graph.n_vertices)
        if len(order) != self.graph.n_edges:
            raise AssertionError("BDFS did not cover every edge")
        self._bdfs_cache = order
        return order

    def bdfs_edges_for(self, lo, hi):
        """BDFS edge order restricted to destination range ``[lo, hi)``.

        The traversal only claims vertices it owns, so per-thread
        traversals are independent and jointly cover every edge once.
        """
        key = (lo, hi)
        if key in self._bdfs_range_cache:
            return self._bdfs_range_cache[key]
        graph = self.graph
        depth = self.params["bdfs_depth"]
        active = np.zeros(graph.n_vertices, dtype=bool)
        active[lo:hi] = True
        order = []
        pending_scan = 0
        for root in range(lo, hi):
            if not active[root]:
                pending_scan += 1
                continue
            active[root] = False
            stack = [root]
            while stack:
                dst = stack.pop()
                for src in graph.in_neighbors(dst):
                    src = int(src)
                    order.append((src, dst, pending_scan))
                    pending_scan = 0
                    if len(stack) < depth and active[src]:
                        active[src] = False
                        stack.append(src)
        self._bdfs_range_cache[key] = order
        return order

    def root_scan_ops(self, steps, base_yield):
        """Ops for skipping ``steps`` inactive root candidates."""
        ops = []
        for word in range(0, steps, 8):
            ops.append(Load(self.active_base + (word // 8), 1))
        if steps:
            ops.append(Compute(2 * steps))
        return ops

    # ------------------------------------------------------------------
    # shared per-phase programs
    # ------------------------------------------------------------------
    def process_edge(self, src, dst, accum):
        """Consumer-side work for one edge: rank_new[dst] += contrib[src].

        ``accum`` tracks the current destination so the running sum is
        written once per dst group (BDFS and CSR both group by dst).
        """
        yield Load(self.contrib_base + src * 8, 8)
        yield Compute(PROCESS_INSTRUCTIONS)
        if accum["dst"] != dst:
            yield from self.flush_accum(accum)
            accum["dst"] = dst
        accum["sum"] += float(self.contrib_values[src])

    def flush_accum(self, accum):
        if accum["dst"] is None:
            return
        addr = self.new_rank_base + accum["dst"] * 8
        amount = accum["sum"]
        mem = self.machine.mem

        def apply(addr=addr, amount=amount):
            mem[addr] = mem.get(addr, 0.0) + amount

        yield Store(addr, 8, apply=apply)
        accum["dst"] = None
        accum["sum"] = 0.0

    def verify(self):
        got = np.array(
            [self.machine.mem[self.new_rank_base + v * 8] for v in range(self.graph.n_vertices)]
        )
        if not np.allclose(got, self.oracle):
            raise AssertionError("HATS variant produced wrong ranks")
        return float(got.sum())


# ----------------------------------------------------------------------
# shared phase scaffolding (1..N threads; paper runs 16)
# ----------------------------------------------------------------------
def _vertex_program(data, lo, hi):
    """contrib[v] = rank[v] / out_degree[v] over the owned range."""
    for v in range(lo, hi):
        yield Load(data.rank_base + v * 8, 8)
        yield Compute(2)
        yield Store(data.contrib_base + v * 8, 8)


def _run_phases(machine, data, edge_program_factory, name):
    """Vertex phase, barrier, then per-thread edge-phase programs.

    ``edge_program_factory(thread, lo, hi)`` builds thread ``thread``'s
    edge-phase program for its owned destination range.
    """
    n_tiles = machine.config.n_tiles
    machine.stats.set_phase("vertex")
    for t, (lo, hi) in enumerate(data.vertex_slices()):
        machine.spawn(_vertex_program(data, lo, hi), tile=t % n_tiles, name=f"{name}-v{t}")
    machine.run()
    machine.stats.set_phase("edge")
    for t, (lo, hi) in enumerate(data.vertex_slices()):
        machine.spawn(edge_program_factory(t, lo, hi), tile=t % n_tiles, name=f"{name}-e{t}")
    machine.run()
    machine.stats.set_phase(None)


# ----------------------------------------------------------------------
# baseline: CSR order on the core(s)
# ----------------------------------------------------------------------
def _baseline_edges(data, lo, hi):
    accum = {"dst": None, "sum": 0.0}
    for src, dst, k, last in data.csr_edges((lo, hi)):
        yield Load(data.neighbors_base + k * 4, 4)
        # Inner-loop exit mispredicts once per destination vertex.
        yield Branch(mispredicted=last)
        yield from data.process_edge(src, dst, accum)
    yield from data.flush_accum(accum)


def run_baseline(params=None, n_tiles=16):
    machine = Machine(hats_config(n_tiles=n_tiles))
    data = _HatsData(machine, params)
    _run_phases(
        machine, data, lambda t, lo, hi: _baseline_edges(data, lo, hi), "hats-base"
    )
    return finish_run(machine, "baseline", output=data.verify())


# ----------------------------------------------------------------------
# software BDFS: traversal and processing share the core(s)
# ----------------------------------------------------------------------
def _sw_bdfs_edges(data, lo, hi):
    accum = {"dst": None, "sum": 0.0}
    base_k = int(data.graph.offsets[lo])
    for k, (src, dst, scan) in enumerate(data.bdfs_edges_for(lo, hi)):
        # Traversal on the core: root scanning, neighbor fetch,
        # active-bit check, stack work -- with data-dependent branches.
        for op in data.root_scan_ops(scan, None):
            yield op
        yield Load(data.neighbors_base + (base_k + k) * 4, 4)
        yield Load(data.active_base + src // 8, 1)
        yield Compute(TRAVERSAL_INSTRUCTIONS)
        yield Branch(mispredicted=_traversal_mispredicts(src, dst))
        yield from data.process_edge(src, dst, accum)
    yield from data.flush_accum(accum)


def run_sw_bdfs(params=None, n_tiles=16):
    machine = Machine(hats_config(n_tiles=n_tiles))
    data = _HatsData(machine, params)
    _run_phases(
        machine, data, lambda t, lo, hi: _sw_bdfs_edges(data, lo, hi), "hats-swbdfs"
    )
    return finish_run(machine, "sw_bdfs", output=data.verify())


# ----------------------------------------------------------------------
# tākō: demand-triggered pseudo-streaming
# ----------------------------------------------------------------------
class TakoEdgeMorph(Morph):
    """Edges materialize line-by-line on consumer misses (no run-ahead).

    Each line's constructor resumes the BDFS traversal on the engine and
    must re-initialize the traversal stack (the "unintuitive corner
    case" cost of Sec. VIII-C); the hardware prefetcher cannot run ahead
    because generation is implicitly load-triggered. Each thread's
    destination range gets its own morph (its own pseudo-stream).
    """

    def __init__(self, runtime, data, vertex_range=None, name="tako-edges"):
        self.data = data
        lo, hi = vertex_range or (0, data.graph.n_vertices)
        self.edges = data.bdfs_edges_for(lo, hi)
        self.base_k = int(data.graph.offsets[lo])
        super().__init__(
            runtime,
            level="l2",
            n_actors=max(1, len(self.edges)),
            object_size=8,
            name=name,
        )
        self._entries_per_line = runtime.machine.config.line_size // self.padded_size

    def construct(self, view, index):
        if index >= len(self.edges):
            return
        if index % self._entries_per_line == 0:
            # Resuming the traversal: re-initialize the BDFS stack.
            yield Compute(TAKO_REINIT_INSTRUCTIONS)
        src, dst, scan = self.edges[index]
        for op in self.data.root_scan_ops(scan, None):
            yield op
        yield Load(self.data.neighbors_base + (self.base_k + index) * 4, 4)
        yield Load(self.data.active_base + src // 8, 1)
        yield Compute(TRAVERSAL_INSTRUCTIONS)
        self.machine.mem[self.get_actor_addr(index)] = (src, dst)

    def allow_prefetch(self, index):
        # Generation is demand-triggered; it cannot run ahead of loads.
        return False


def _tako_edges(data, morph):
    accum = {"dst": None, "sum": 0.0}
    mem = data.machine.mem
    for k in range(len(morph.edges)):
        box = []
        addr = morph.get_actor_addr(k)
        yield Load(addr, 8, apply=lambda a=addr, b=box: b.append(mem[a]))
        src, dst = box[0]
        yield from data.process_edge(src, dst, accum)
    yield from data.flush_accum(accum)


def run_tako(params=None, n_tiles=16):
    machine = Machine(hats_config(n_tiles=n_tiles))
    runtime = Leviathan(machine)
    data = _HatsData(machine, params)
    morphs = [
        TakoEdgeMorph(runtime, data, vertex_range=(lo, hi), name=f"tako-edges{t}")
        for t, (lo, hi) in enumerate(data.vertex_slices())
    ]
    _run_phases(
        machine, data, lambda t, lo, hi: _tako_edges(data, morphs[t]), "hats-tako"
    )
    return finish_run(machine, "tako", output=data.verify())


# ----------------------------------------------------------------------
# Leviathan: real decoupled streams (one per thread)
# ----------------------------------------------------------------------
class HatsStream(Stream):
    """Fig. 19: ``gen_stream`` runs BDFS and pushes edges continuously."""

    def __init__(self, runtime, data, consumer_tile, vertex_range=None, name="hats-stream"):
        self.data = data
        lo, hi = vertex_range or (0, data.graph.n_vertices)
        self.vertex_range = (lo, hi)
        self.base_k = int(data.graph.offsets[lo])
        super().__init__(
            runtime,
            object_size=8,
            buffer_entries=data.params["stream_buffer"],
            consumer_tile=consumer_tile,
            producer_tile=consumer_tile,
            capacity_hint=max(1, len(data.bdfs_edges_for(lo, hi))),
            name=name,
        )

    def gen_stream(self, env):
        data = self.data
        lo, hi = self.vertex_range
        for k, (src, dst, scan) in enumerate(data.bdfs_edges_for(lo, hi)):
            for op in data.root_scan_ops(scan, None):
                yield op
            yield Load(data.neighbors_base + (self.base_k + k) * 4, 4)
            yield Load(data.active_base + src // 8, 1)
            yield Compute(TRAVERSAL_INSTRUCTIONS)
            yield from self.push((src, dst))


def _leviathan_edges(data, stream):
    accum = {"dst": None, "sum": 0.0}
    while True:
        edge = yield from stream.consume()
        if edge is STREAM_END:
            break
        src, dst = edge
        yield from data.process_edge(src, dst, accum)
    yield from data.flush_accum(accum)


def run_leviathan(params=None, ideal=False, n_tiles=16, config_overrides=None):
    cfg = hats_config(n_tiles=n_tiles, ideal=ideal)
    if config_overrides:
        # Dotted-key overrides (e.g. a mid-sized LLC for the Fig. 23
        # stream-buffer sweep) so sweeps describe configs as plain data.
        cfg = cfg.scaled(**config_overrides)
    machine = Machine(cfg)
    runtime = Leviathan(machine)
    data = _HatsData(machine, params)
    streams = []
    for t, (lo, hi) in enumerate(data.vertex_slices()):
        stream = HatsStream(
            runtime,
            data,
            consumer_tile=t % n_tiles,
            vertex_range=(lo, hi),
            name=f"hats-stream{t}",
        )
        streams.append(stream)

    def edge_factory(t, lo, hi):
        streams[t].start()
        return _leviathan_edges(data, streams[t])

    _run_phases(machine, data, edge_factory, "hats-lev")
    return finish_run(machine, "ideal" if ideal else "leviathan", output=data.verify())


def run_all(params=None, n_tiles=16, include_ideal=True):
    study = StudyResult(
        study="HATS (Figs. 20-21)", baseline="baseline", params=params or {}
    )
    study.add(run_baseline(params, n_tiles=n_tiles))
    study.add(run_sw_bdfs(params, n_tiles=n_tiles))
    study.add(run_tako(params, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles))
    if include_ideal:
        study.add(run_leviathan(params, ideal=True, n_tiles=n_tiles))
    return study


def breakdown(study):
    """Fig. 21's three panels from a completed study."""
    n_edges = None
    rows = {}
    for name, result in study.results.items():
        edges = result.stat("edge/dram.accesses")
        vertex = result.stat("vertex/dram.accesses")
        mispredicts = result.stat("core.branch_mispredictions")
        engine_instr = result.stat("edge/engine.instructions")
        rows[name] = {
            "dram_vertex": vertex,
            "dram_edge": edges,
            "mispredicts_per_edge": mispredicts,
            "engine_instr_per_edge": engine_instr,
        }
    return rows

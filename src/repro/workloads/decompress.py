"""Case study: near-cache data transformation (Sec. VIII-A, Fig. 16).

An application averages a Zipfian-indexed array of 16 K lossy-compressed
6 B pixels (base + delta per channel, Fig. 15). The variants match
Fig. 16's bars:

- ``baseline``    -- software decompression on *every* access: the core
  loads the bases/deltas and redoes the arithmetic each time.
- ``offload``     -- the "OL" bar: decompression offloaded to the local
  engine per access. Worse than the baseline: the work is not reduced,
  and every access now pays an invoke/future round trip while losing
  L1 locality.
- ``no_padding``  -- Leviathan's data-triggered actions *without* the
  allocator's padding: 6 B objects straddle 64 B lines, constructors
  cannot initialize partial objects, and the configuration does not
  work at all (the tākō [66] outcome).
- ``leviathan``   -- a Morph decompresses pixels as lines enter the L2;
  the core then reuses decompressed data from its private caches.
- ``ideal``       -- Leviathan with the idealized engine.
"""

import numpy as np

from repro.core.actor import Actor, action
from repro.core.future import WaitFuture
from repro.core.morph import Morph, MorphLayoutError
from repro.core.offload import Invoke, Location
from repro.core.runtime import Leviathan
from repro.sim.config import SystemConfig
from repro.sim.ops import Compute, Load
from repro.sim.system import Machine
from repro.workloads.common import RunResult, StudyResult, finish_run
from repro.workloads.distributions import zipfian_indices

#: Fig. 16's workload: 16 K pixels, 32 K Zipfian accesses (one core;
#: phantom data at the L2 is tile-private, so the study is per-core).
DEFAULT_PARAMS = dict(
    n_pixels=16384, n_accesses=32768, n_threads=1, skew=0.99, seed=11
)

PIXEL_BYTES = 6  # 3 x uint16 colors
CHANNELS = 3
PIXELS_PER_BASE = 8
#: Decompression arithmetic per pixel (load-combine, mask, shift, add,
#: and pack per channel, plus loop overhead).
DECOMPRESS_INSTRUCTIONS = 20


def decompress_config(n_tiles=16, ideal=False):
    """Table V at full size: the 16 K-pixel working set is small enough
    (compressed ~60 KB, decompressed 128 KB) that -- exactly as in the
    paper -- the decompressed data contends for the L1/L2 while the
    compressed form is comfortably cache-resident."""
    cfg = SystemConfig(n_tiles=n_tiles)
    cfg.engine.ideal = ideal
    return cfg


class _CompressedImage:
    """Compressed pixel data plus the decompression oracle (Fig. 15)."""

    def __init__(self, machine, params):
        p = dict(DEFAULT_PARAMS)
        p.update(params or {})
        self.params = p
        self.machine = machine
        n = p["n_pixels"]
        rng = np.random.default_rng(p["seed"])
        self.bases = rng.integers(0, 1 << 12, size=(CHANNELS, n // PIXELS_PER_BASE + 1))
        self.deltas = rng.integers(0, 256, size=(CHANNELS, n))
        self.n_pixels = n

        space = machine.address_space
        self.base_addrs = [
            space.alloc(self.bases.shape[1] * 2, align=64) for _ in range(CHANNELS)
        ]
        self.delta_addrs = [space.alloc(n, align=64) for _ in range(CHANNELS)]
        self.indices = zipfian_indices(
            n, p["n_accesses"], skew=p["skew"], seed=p["seed"] + 1
        )
        self.n_threads = p["n_threads"]

    def pixel_value(self, idx):
        """The decompressed channel-sum of pixel ``idx`` (the oracle)."""
        total = 0
        for c in range(CHANNELS):
            base = int(self.bases[c][idx >> 3])
            delta = int(self.deltas[c][idx])
            mantissa = delta & 0b1111
            exponent = delta >> 4
            total += base + (mantissa << exponent)
        return total

    def oracle_sum(self):
        return sum(self.pixel_value(int(i)) for i in self.indices)

    def access_slices(self):
        n = len(self.indices)
        bounds = np.linspace(0, n, self.n_threads + 1, dtype=np.int64)
        return [(int(bounds[t]), int(bounds[t + 1])) for t in range(self.n_threads)]

    def compressed_load_ops(self, idx):
        """The loads one decompression performs (bases + deltas)."""
        ops = []
        for c in range(CHANNELS):
            ops.append(Load(self.base_addrs[c] + (idx >> 3) * 2, 2))
            ops.append(Load(self.delta_addrs[c] + idx, 1))
        return ops


class _Totals:
    """Mutable accumulator shared by worker threads."""

    def __init__(self):
        self.value = 0

    def add(self, amount):
        self.value += amount


# ----------------------------------------------------------------------
# baseline: decompress in software on every access
# ----------------------------------------------------------------------
def _baseline_thread(image, lo, hi, totals):
    for k in range(lo, hi):
        idx = int(image.indices[k])
        for op in image.compressed_load_ops(idx):
            yield op
        yield Compute(DECOMPRESS_INSTRUCTIONS)
        totals.add(image.pixel_value(idx))


def run_baseline(params=None, n_tiles=16):
    machine = Machine(decompress_config(n_tiles=n_tiles))
    image = _CompressedImage(machine, params)
    totals = _Totals()
    for t, (lo, hi) in enumerate(image.access_slices()):
        machine.spawn(
            _baseline_thread(image, lo, hi, totals), tile=t % n_tiles, name=f"dc-base{t}"
        )
    machine.run()
    assert totals.value == image.oracle_sum(), "baseline decompression wrong"
    return finish_run(machine, "baseline", output=totals.value)


# ----------------------------------------------------------------------
# OL: task offload of each decompression to the local engine
# ----------------------------------------------------------------------
class DecompressorActor(Actor):
    """Offloadable decompression of one pixel (the OL variant)."""

    SIZE = 8

    def __init__(self, image):
        super().__init__()
        self.image = image

    @action
    def decompress(self, env, idx):
        for op in self.image.compressed_load_ops(idx):
            yield op
        yield Compute(DECOMPRESS_INSTRUCTIONS)
        return self.image.pixel_value(idx)


def _offload_thread(image, actor, lo, hi, totals):
    for k in range(lo, hi):
        idx = int(image.indices[k])
        future = yield Invoke(
            actor, "decompress", (idx,), location=Location.LOCAL, with_future=True
        )
        value = yield WaitFuture(future)
        totals.add(value)


def run_offload(params=None, n_tiles=16):
    machine = Machine(decompress_config(n_tiles=n_tiles))
    runtime = Leviathan(machine)
    image = _CompressedImage(machine, params)
    alloc = runtime.allocator(8, capacity=16)
    totals = _Totals()
    for t, (lo, hi) in enumerate(image.access_slices()):
        actor = DecompressorActor(image)
        actor.addr = alloc.allocate()
        machine.spawn(
            _offload_thread(image, actor, lo, hi, totals),
            tile=t % n_tiles,
            name=f"dc-ol{t}",
        )
    machine.run()
    assert totals.value == image.oracle_sum(), "offload decompression wrong"
    return finish_run(machine, "offload", output=totals.value)


# ----------------------------------------------------------------------
# Leviathan: data-triggered decompression at the L2
# ----------------------------------------------------------------------
class PixelMorph(Morph):
    """Fig. 15's Decompressor: pixels decompress as lines enter the L2."""

    def __init__(self, runtime, image, padding=True):
        self.image = image
        super().__init__(
            runtime,
            level="l2",
            n_actors=image.n_pixels,
            object_size=PIXEL_BYTES,
            name="pixel-decompressor",
            padding=padding,
        )

    def construct(self, view, index):
        for op in self.image.compressed_load_ops(index):
            yield op
        yield Compute(DECOMPRESS_INSTRUCTIONS)
        self.machine.mem[self.get_actor_addr(index)] = self.image.pixel_value(index)

    def destruct(self, view, index, dirty):
        # Decompressed pixels are a read-only view; eviction is free.
        return
        yield  # pragma: no cover


def _leviathan_thread(image, morph, lo, hi, totals):
    mem = image.machine.mem
    for k in range(lo, hi):
        idx = int(image.indices[k])
        addr = morph.get_actor_addr(idx)
        value_box = []
        yield Load(addr, PIXEL_BYTES, apply=lambda a=addr: value_box.append(mem[a]))
        yield Compute(2)
        totals.add(value_box[0])


def run_leviathan(params=None, ideal=False, n_tiles=16):
    machine = Machine(decompress_config(n_tiles=n_tiles, ideal=ideal))
    runtime = Leviathan(machine)
    image = _CompressedImage(machine, params)
    morph = PixelMorph(runtime, image)
    totals = _Totals()
    for t, (lo, hi) in enumerate(image.access_slices()):
        machine.spawn(
            _leviathan_thread(image, morph, lo, hi, totals),
            tile=t % n_tiles,
            name=f"dc-lev{t}",
        )
    machine.run()
    assert totals.value == image.oracle_sum(), "Leviathan decompression wrong"
    return finish_run(machine, "ideal" if ideal else "leviathan", output=totals.value)


def run_no_padding(params=None, n_tiles=16):
    """Leviathan without the allocator's padding: does not work.

    6 B pixels do not divide 64 B lines, so lines contain partial
    objects and constructors cannot run -- the outcome prior work such
    as tākō [66] leaves the programmer to discover.
    """
    machine = Machine(decompress_config(n_tiles=n_tiles))
    runtime = Leviathan(machine)
    image = _CompressedImage(machine, params)
    try:
        PixelMorph(runtime, image, padding=False)
    except MorphLayoutError as error:
        return RunResult(
            name="no_padding",
            cycles=float("inf"),
            energy_pj=float("inf"),
            stats={},
            functional=False,
            notes=str(error),
        )
    raise AssertionError("unpadded 6B morph unexpectedly registered")


def run_all(params=None, n_tiles=16, include_ideal=True):
    study = StudyResult(
        study="Decompression (Fig. 16)", baseline="baseline", params=params or {}
    )
    study.add(run_baseline(params, n_tiles=n_tiles))
    study.add(run_offload(params, n_tiles=n_tiles))
    study.add(run_no_padding(params, n_tiles=n_tiles))
    study.add(run_leviathan(params, n_tiles=n_tiles))
    if include_ideal:
        study.add(run_leviathan(params, ideal=True, n_tiles=n_tiles))
    return study

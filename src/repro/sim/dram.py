"""Memory controllers and DRAM.

DRAM is modeled as a fixed access latency plus per-access accounting
(the evaluation's "DRAM accesses" and DRAM energy are event counts).
Each controller carries the small FIFO cache from Sec. VI-A3: because
Leviathan packs objects densely in DRAM, consecutive *cache* lines often
map to the same *DRAM* line, and the FIFO cache absorbs the repeats
("can reduce DRAM accesses by up to ~3x").
"""

from collections import OrderedDict

from repro.sim.events import DramAccess, EventBus


class FifoCache:
    """A small FIFO cache of DRAM lines at one memory controller."""

    def __init__(self, n_lines):
        self.n_lines = n_lines
        self._fifo = OrderedDict()

    def probe(self, dram_line):
        """True if ``dram_line`` is resident (FIFO order is not updated)."""
        return dram_line in self._fifo

    def insert(self, dram_line):
        if dram_line in self._fifo:
            return
        if self.n_lines <= 0:
            return
        while len(self._fifo) >= self.n_lines:
            self._fifo.popitem(last=False)
        self._fifo[dram_line] = True

    def invalidate(self, dram_line):
        self._fifo.pop(dram_line, None)

    def __len__(self):
        return len(self._fifo)


class MemoryController:
    """One memory controller: FIFO cache in front of bandwidth-limited DRAM.

    Bandwidth is modeled as controller occupancy: each DRAM-line
    transfer holds the controller for ``service_cycles`` and accesses
    queue behind each other, so scatter-heavy workloads saturate and
    become bandwidth-bound (the regime PHI's write-combining attacks).
    """

    #: Latency of a hit in the FIFO cache (SRAM probe, far below DRAM).
    FIFO_HIT_LATENCY = 6

    def __init__(self, index, config, stats, line_bytes=64, bus=None):
        self.index = index
        self.config = config.memory
        self.stats = stats
        self.bus = bus if bus is not None else EventBus()
        self.fifo = FifoCache(self.config.fifo_lines)
        self.line_bytes = line_bytes
        self._busy_until = 0.0
        # Static config resolved once per controller, not per access.
        self._service = self.config.service_cycles(line_bytes)
        self._latency = self.config.latency
        #: Fault hook (:mod:`repro.sim.faults`): set by a controller with
        #: DRAM-error rules; ``None`` (default) adds no per-access work.
        self.faults = None
        #: DramAccess emit flag, kept coherent with the bus registry.
        self._emit_dram_access = False
        self.bus.on_change(self._refresh_emit_flags)

    def _refresh_emit_flags(self, bus):
        self._emit_dram_access = bus.wants(DramAccess)

    def _queue_for_service(self, now):
        """Occupy the controller; returns the queueing + service delay."""
        start = now if now > self._busy_until else self._busy_until
        service = self._service
        self._busy_until = start + service
        queueing = start - now
        stats = self.stats
        if stats._phase is None:
            stats.counters["dram.queue_cycles"] += queueing
        else:
            stats.add("dram.queue_cycles", queueing)
        return queueing + service

    def access(self, dram_line, is_write=False, now=0.0):
        """Access one DRAM line through the FIFO cache; returns latency."""
        stats = self.stats
        phased = stats._phase is not None
        counters = stats.counters
        if phased:
            stats.add("mc_cache.accesses")
        else:
            counters["mc_cache.accesses"] += 1
        if self.fifo.probe(dram_line):
            if phased:
                stats.add("mc_cache.hits")
            else:
                counters["mc_cache.hits"] += 1
            if is_write:
                # Write hits still drain to DRAM; the FIFO is a read
                # combiner for compacted objects, not a write-back cache.
                if phased:
                    stats.add("dram.accesses")
                    stats.add("dram.writes")
                else:
                    counters["dram.accesses"] += 1
                    counters["dram.writes"] += 1
                if self._emit_dram_access:
                    self.bus.emit(DramAccess(self.index, dram_line, True, True, True))
                latency = self._queue_for_service(now) + self._latency
                if self.faults is not None:
                    latency += self.faults.on_dram_access(self.index, dram_line, True)
                return latency
            if self._emit_dram_access:
                self.bus.emit(DramAccess(self.index, dram_line, False, True, False))
            return self.FIFO_HIT_LATENCY
        if phased:
            stats.add("dram.accesses")
            stats.add("dram.writes" if is_write else "dram.reads")
        else:
            counters["dram.accesses"] += 1
            counters["dram.writes" if is_write else "dram.reads"] += 1
        if self._emit_dram_access:
            self.bus.emit(DramAccess(self.index, dram_line, is_write, False, True))
        if not is_write:
            self.fifo.insert(dram_line)
        latency = self._queue_for_service(now) + self._latency
        if self.faults is not None:
            latency += self.faults.on_dram_access(self.index, dram_line, is_write)
        return latency


class MemorySystem:
    """All memory controllers; lines are interleaved across controllers."""

    def __init__(self, config, stats, noc, bus=None):
        self.config = config
        self.stats = stats
        self.noc = noc
        bus = bus if bus is not None else EventBus()
        self.bus = bus
        self.controllers = [
            MemoryController(i, config, stats, line_bytes=config.line_size, bus=bus)
            for i in range(config.memory.controllers)
        ]
        # Controllers sit at evenly spaced tiles (edge attachment).
        step = config.n_tiles // config.memory.controllers
        self.controller_tiles = [i * step for i in range(config.memory.controllers)]

    def controller_of(self, dram_line):
        return self.controllers[dram_line % len(self.controllers)]

    def controller_tile(self, dram_line):
        return self.controller_tiles[dram_line % len(self.controllers)]

    def access(self, from_tile, dram_lines, is_write, payload_bytes, now=0.0):
        """Access a set of DRAM lines on behalf of tile ``from_tile``.

        Returns the latency of the slowest line (lines proceed in
        parallel at distinct controllers, queueing within each).
        NoC transfer to/from the controller is included.
        """
        worst = 0
        for dram_line in dram_lines:
            mc = self.controller_of(dram_line)
            mc_tile = self.controller_tile(dram_line)
            if is_write:
                transfer = self.noc.send(from_tile, mc_tile, payload_bytes)
            else:
                transfer = self.noc.round_trip(from_tile, mc_tile, 8, payload_bytes)
            worst = max(worst, transfer + mc.access(dram_line, is_write, now=now))
        return worst

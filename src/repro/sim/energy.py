"""Event-count dynamic-energy model.

The paper reports *dynamic execution energy* with core/cache/memory/NoC
parameters from Jenga [75] and engine parameters from the triggered PE
work [60]. We reproduce the model's structure: energy is a weighted sum
of event counts. Parameters below are in picojoules per event; they are
representative 45-22 nm-class numbers chosen so the relative costs match
the sources (DRAM >> LLC > L2 > L1 > core op > engine op, NoC per
flit-hop in between).

Absolute joules are not meaningful for the reproduction -- every figure
in the paper normalizes energy to the baseline -- but the ratios are.

:class:`EnergyModel` computes energy post-hoc from the counters;
:class:`EnergyMeter` is the event-bus subscriber that accumulates the
memory-side terms *live* (per cache access, DRAM cycle, and flit-hop as
they happen), which lets experiments attribute energy to execution
windows instead of whole runs.
"""

from dataclasses import dataclass, field

from repro.sim.events import CacheAccess, DramAccess, FlitHop


@dataclass
class EnergyParams:
    """Per-event dynamic energy in picojoules."""

    core_instruction: float = 70.0
    core_fence: float = 250.0
    branch_misprediction: float = 300.0
    l1_access: float = 15.0
    l2_access: float = 40.0
    llc_access: float = 120.0
    mc_cache_access: float = 30.0
    dram_access: float = 2500.0
    noc_flit_hop: float = 8.0
    #: Engine PEs are far simpler than an OOO core (single-issue,
    #: no speculation), hence much cheaper per instruction [60].
    engine_instruction: float = 10.0
    engine_l1_access: float = 10.0

    #: Counter name -> parameter attribute.
    counter_map: dict = field(
        default_factory=lambda: {
            "core.instructions": "core_instruction",
            "core.fences": "core_fence",
            "core.branch_mispredictions": "branch_misprediction",
            "l1.accesses": "l1_access",
            "l2.accesses": "l2_access",
            "llc.accesses": "llc_access",
            "mc_cache.accesses": "mc_cache_access",
            "dram.accesses": "dram_access",
            "noc.flit_hops": "noc_flit_hop",
            "engine.instructions": "engine_instruction",
            "engine_l1.accesses": "engine_l1_access",
        }
    )


class EnergyModel:
    """Computes dynamic energy from a :class:`~repro.sim.stats.Stats` bag."""

    def __init__(self, params=None, ideal_engine=False):
        self.params = params or EnergyParams()
        #: The paper's idealized engine has energy-free PEs.
        self.ideal_engine = ideal_engine

    def energy_pj(self, stats):
        """Total dynamic energy in picojoules for the counters in ``stats``."""
        total = 0.0
        for counter, attr in self.params.counter_map.items():
            if self.ideal_engine and counter.startswith("engine"):
                continue
            total += stats.get(counter) * getattr(self.params, attr)
        return total

    def breakdown_pj(self, stats):
        """Per-component energy, as ``{counter_name: picojoules}``."""
        out = {}
        for counter, attr in self.params.counter_map.items():
            if self.ideal_engine and counter.startswith("engine"):
                continue
            value = stats.get(counter) * getattr(self.params, attr)
            if value:
                out[counter] = value
        return out


#: CacheAccess.level -> EnergyParams attribute.
_CACHE_LEVEL_PARAMS = {
    "l1": "l1_access",
    "l2": "l2_access",
    "llc": "llc_access",
    "engine_l1": "engine_l1_access",
}


class EnergyMeter:
    """Live memory-side energy accumulation from the event bus.

    Each :class:`~repro.sim.events.CacheAccess`,
    :class:`~repro.sim.events.DramAccess`, and
    :class:`~repro.sim.events.FlitHop` event adds its per-event cost, so
    the meter's totals for those terms match :class:`EnergyModel` applied
    to the same run's counters -- but can be read (or reset) at any
    point during execution.

    ::

        meter = EnergyMeter(machine)
        ... run region of interest ...
        print(meter.total_pj, meter.breakdown_pj())
        meter.detach()
    """

    def __init__(self, machine=None, params=None):
        self.params = params or EnergyParams()
        self.total_pj = 0.0
        #: Per-term picojoules: cache levels, 'dram', 'mc_cache', 'noc'.
        self.terms = {}
        self._bus = None
        if machine is not None:
            self.attach(machine)

    def attach(self, machine):
        self._bus = machine.events
        self._bus.subscribe(CacheAccess, self._on_cache)
        self._bus.subscribe(DramAccess, self._on_dram)
        self._bus.subscribe(FlitHop, self._on_flit)
        return self

    def detach(self):
        if self._bus is not None:
            self._bus.unsubscribe(CacheAccess, self._on_cache)
            self._bus.unsubscribe(DramAccess, self._on_dram)
            self._bus.unsubscribe(FlitHop, self._on_flit)
        return self

    def reset(self):
        """Zero the accumulators (e.g. after warmup)."""
        self.total_pj = 0.0
        self.terms = {}

    def _add(self, term, pj):
        self.total_pj += pj
        self.terms[term] = self.terms.get(term, 0.0) + pj

    def _on_cache(self, event):
        pj = getattr(self.params, _CACHE_LEVEL_PARAMS[event.level])
        self._add(event.level, pj)

    def _on_dram(self, event):
        # Every controller access probes the FIFO cache; only accesses
        # that cycle DRAM (misses, and write hits draining through) pay
        # the DRAM term -- mirroring the 'dram.accesses' counter.
        self._add("mc_cache", self.params.mc_cache_access)
        if event.dram_cycled:
            self._add("dram", self.params.dram_access)

    def _on_flit(self, event):
        self._add("noc", event.flits * event.hops * self.params.noc_flit_hop)

    def breakdown_pj(self):
        """Per-term picojoules accumulated so far."""
        return dict(self.terms)

    def __repr__(self):
        return f"EnergyMeter({self.total_pj:.0f} pJ)"

"""Event-count dynamic-energy model.

The paper reports *dynamic execution energy* with core/cache/memory/NoC
parameters from Jenga [75] and engine parameters from the triggered PE
work [60]. We reproduce the model's structure: energy is a weighted sum
of event counts. Parameters below are in picojoules per event; they are
representative 45-22 nm-class numbers chosen so the relative costs match
the sources (DRAM >> LLC > L2 > L1 > core op > engine op, NoC per
flit-hop in between).

Absolute joules are not meaningful for the reproduction -- every figure
in the paper normalizes energy to the baseline -- but the ratios are.
"""

from dataclasses import dataclass, field


@dataclass
class EnergyParams:
    """Per-event dynamic energy in picojoules."""

    core_instruction: float = 70.0
    core_fence: float = 250.0
    branch_misprediction: float = 300.0
    l1_access: float = 15.0
    l2_access: float = 40.0
    llc_access: float = 120.0
    mc_cache_access: float = 30.0
    dram_access: float = 2500.0
    noc_flit_hop: float = 8.0
    #: Engine PEs are far simpler than an OOO core (single-issue,
    #: no speculation), hence much cheaper per instruction [60].
    engine_instruction: float = 10.0
    engine_l1_access: float = 10.0

    #: Counter name -> parameter attribute.
    counter_map: dict = field(
        default_factory=lambda: {
            "core.instructions": "core_instruction",
            "core.fences": "core_fence",
            "core.branch_mispredictions": "branch_misprediction",
            "l1.accesses": "l1_access",
            "l2.accesses": "l2_access",
            "llc.accesses": "llc_access",
            "mc_cache.accesses": "mc_cache_access",
            "dram.accesses": "dram_access",
            "noc.flit_hops": "noc_flit_hop",
            "engine.instructions": "engine_instruction",
            "engine_l1.accesses": "engine_l1_access",
        }
    )


class EnergyModel:
    """Computes dynamic energy from a :class:`~repro.sim.stats.Stats` bag."""

    def __init__(self, params=None, ideal_engine=False):
        self.params = params or EnergyParams()
        #: The paper's idealized engine has energy-free PEs.
        self.ideal_engine = ideal_engine

    def energy_pj(self, stats):
        """Total dynamic energy in picojoules for the counters in ``stats``."""
        total = 0.0
        for counter, attr in self.params.counter_map.items():
            if self.ideal_engine and counter.startswith("engine"):
                continue
            total += stats.get(counter) * getattr(self.params, attr)
        return total

    def breakdown_pj(self, stats):
        """Per-component energy, as ``{counter_name: picojoules}``."""
        out = {}
        for counter, attr in self.params.counter_map.items():
            if self.ideal_engine and counter.startswith("engine"):
                continue
            value = stats.get(counter) * getattr(self.params, attr)
            if value:
                out[counter] = value
        return out

"""System configuration (Table V of the paper).

:class:`SystemConfig` collects every knob of the simulated machine and of
the Leviathan runtime. Defaults reproduce Table V scaled to simulator
speed; the experiment harness overrides individual fields per study.
"""

import dataclasses
import math
from dataclasses import dataclass, field


def _is_power_of_two(value):
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CoreConfig:
    """Timing model of one out-of-order core (modeled after Skylake).

    The simulator does not model the pipeline; instead, ``Compute(n)``
    operations advance time by ``n / ipc`` cycles, and each branch
    misprediction adds ``branch_miss_penalty`` cycles. Fenced atomics
    serialize the core for ``fence_penalty`` cycles, which is the effect
    the PHI case study (Sec. IV) leans on.
    """

    freq_ghz: float = 2.4
    ipc: float = 3.0
    branch_miss_penalty: int = 14
    fence_penalty: int = 90
    #: Entries in the invoke buffer used to backpressure task offload
    #: (Sec. VI-B1, Fig. 22).
    invoke_buffer_entries: int = 4
    #: Cycles to retry an invoke after an engine NACK (spill-and-retry).
    invoke_retry_delay: int = 20
    #: Bounded NACK retry: maximum re-sends of one invoke before the
    #: simulation raises :class:`~repro.core.offload.InvokeTimeout`.
    #: ``None`` keeps the paper's unbounded behavior (NACKed tasks wait
    #: in the engine's spill queue until a context frees).
    invoke_max_retries: int = None
    #: Exponential-backoff multiplier applied to ``invoke_retry_delay``
    #: after each failed retry (bounded-retry mode only).
    invoke_retry_backoff: float = 2.0

    def __post_init__(self):
        self.validate()

    def validate(self):
        """Reject nonsensical retry knobs at construction, not mid-run.

        Re-invoked by :meth:`SystemConfig.__post_init__` so overrides
        applied through :meth:`SystemConfig.scaled` are caught too.
        """
        if self.invoke_buffer_entries < 1:
            raise ValueError(
                f"core.invoke_buffer_entries must be >= 1, "
                f"got {self.invoke_buffer_entries!r}"
            )
        if self.invoke_retry_delay < 0:
            raise ValueError(
                f"core.invoke_retry_delay must be >= 0 cycles, "
                f"got {self.invoke_retry_delay!r}"
            )
        if self.invoke_max_retries is not None and self.invoke_max_retries < 1:
            raise ValueError(
                f"core.invoke_max_retries must be None (unbounded) or >= 1, "
                f"got {self.invoke_max_retries!r}"
            )
        if self.invoke_retry_backoff < 1.0:
            raise ValueError(
                f"core.invoke_retry_backoff must be >= 1.0 "
                f"(delays may never shrink), got {self.invoke_retry_backoff!r}"
            )


@dataclass
class EngineConfig:
    """Timing model of one near-data engine (Sec. VI-A1).

    The paper evaluates a 5x5 dataflow fabric: 15 integer FUs and 10
    memory FUs with 1-cycle PEs. We model the fabric as a single-issue
    processor (the paper evaluates all NDC systems with single-issue PEs
    for iso-compute comparisons) with ``task_contexts`` hardware thread
    contexts to overlap memory latency.
    """

    int_fus: int = 15
    mem_fus: int = 10
    pe_latency: int = 1
    #: Sustained instruction-level parallelism of the dataflow fabric:
    #: with 25 PEs firing whenever inputs are ready, short actions
    #: average ~2 instructions/cycle.
    issue_width: float = 2.0
    l1d_kb: int = 8
    l1d_ways: int = 4
    rtlb_entries: int = 256
    task_contexts: int = 32
    #: When True the engine is the paper's *idealized* engine: unlimited,
    #: zero-latency, energy-free PEs (memory latency still applies).
    ideal: bool = False

    @property
    def offload_contexts(self):
        """Contexts reserved for offloaded tasks.

        The paper evenly splits contexts between offloaded and
        data-triggered actions to prevent deadlock (Sec. VI-A1).
        """
        return self.task_contexts // 2

    @property
    def triggered_contexts(self):
        """Contexts reserved for data-triggered actions."""
        return self.task_contexts - self.task_contexts // 2


@dataclass
class CacheConfig:
    """Geometry and timing of one cache."""

    size_kb: int
    ways: int
    tag_latency: int
    data_latency: int
    replacement: str = "lru"  # "lru" or "rrip"

    def lines(self, line_size):
        return (self.size_kb * 1024) // line_size

    def sets(self, line_size):
        return self.lines(line_size) // self.ways

    @property
    def hit_latency(self):
        return self.tag_latency + self.data_latency


@dataclass
class NocConfig:
    """Mesh on-chip network (128-bit flits and links)."""

    flit_bits: int = 128
    router_delay: int = 2
    link_delay: int = 1

    @property
    def flit_bytes(self):
        return self.flit_bits // 8

    def flits(self, payload_bytes):
        """Number of flits for a message with ``payload_bytes`` of payload.

        Every message carries one head flit of routing/command metadata.
        """
        return 1 + math.ceil(payload_bytes / self.flit_bytes)

    def hop_latency(self, hops):
        """Latency of the head flit traversing ``hops`` routers and links.

        A local (same-tile) message bypasses the network and costs one
        cycle of interface arbitration.
        """
        if hops == 0:
            return 1
        return (hops + 1) * self.router_delay + hops * self.link_delay

    def message_latency(self, hops, payload_bytes):
        """Head-flit latency plus tail-flit serialization.

        Wormhole routing: the message completes when its last flit
        arrives, so large (data) messages cost more than small
        (control) packets -- the asymmetry task offload exploits.
        """
        serialization = self.flits(payload_bytes) - 1 if hops > 0 else 0
        return self.hop_latency(hops) + serialization


@dataclass
class MemoryConfig:
    """Memory controllers and DRAM."""

    controllers: int = 4
    latency: int = 100
    #: Sustained bandwidth per controller (Table V: 11.8 GB/s at
    #: 2.4 GHz ~= 4.9 bytes/cycle). Accesses queue behind each other at
    #: a controller; this is what makes scatter-heavy workloads
    #: bandwidth-bound, the effect PHI attacks.
    bandwidth_bytes_per_cycle: float = 4.9
    #: FIFO cache at each memory controller (Sec. VI-A3), in DRAM lines.
    fifo_lines: int = 32

    def service_cycles(self, line_bytes):
        """Controller occupancy for one DRAM-line transfer."""
        return line_bytes / self.bandwidth_bytes_per_cycle


@dataclass
class LeviathanConfig:
    """Knobs of the Leviathan runtime itself."""

    #: Largest object supported by the hardware paths, in cache lines
    #: (Sec. VI-C; the evaluation supports four lines = 256 B).
    max_object_lines: int = 4
    #: Probability denominator for DYNAMIC-task migration: one in
    #: ``migration_period`` remote tasks executes locally instead to pull
    #: hot data up the hierarchy (Sec. VI-B1).
    migration_period: int = 32
    #: Entries in the per-bank LLC translation buffer (Table IV).
    translation_buffer_entries: int = 8
    #: Objects buffered for pending data-triggered actions (Table IV).
    data_triggered_buffer_objects: int = 16
    #: The paper's future-work extension (Sec. IX): engines at the
    #: memory controllers, so DYNAMIC tasks on uncached actors execute
    #: near memory instead of at an LLC bank far from the data.
    near_memory_engines: bool = False


@dataclass
class SystemConfig:
    """Full machine description (Table V), plus Leviathan knobs."""

    n_tiles: int = 16
    line_size: int = 64
    page_size: int = 4096

    core: CoreConfig = field(default_factory=CoreConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_kb=32, ways=8, tag_latency=1, data_latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_kb=128, ways=8, tag_latency=2, data_latency=4, replacement="rrip"
        )
    )
    #: Per-tile LLC bank; total LLC is ``n_tiles * llc.size_kb``.
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_kb=512, ways=16, tag_latency=3, data_latency=5, replacement="rrip"
        )
    )
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    leviathan: LeviathanConfig = field(default_factory=LeviathanConfig)

    #: Enable the L2 strided prefetcher from Table V.
    l2_prefetcher: bool = True
    #: Random seed for any stochastic machinery (kept deterministic).
    seed: int = 42
    #: Scheduler watchdog: after this many consecutive operations execute
    #: without simulated time advancing, ``machine.run()`` raises
    #: :class:`~repro.sim.scheduler.DeadlockError` with a diagnostic dump
    #: instead of spinning forever. 0 disables the watchdog.
    watchdog_steps: int = 250_000
    #: Scheduler implementation: "runlist" (the calendar-queue run-list
    #: loop, the default) or "heap" (the original per-op binary heap,
    #: kept as the reference for determinism tests). Both produce
    #: bit-identical schedules; "runlist" is severalfold faster.
    scheduler_mode: str = "runlist"

    def __post_init__(self):
        self.core.validate()
        if not _is_power_of_two(self.n_tiles):
            raise ValueError(f"n_tiles must be a power of two, got {self.n_tiles}")
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.memory.controllers > self.n_tiles:
            raise ValueError("more memory controllers than tiles")
        if self.scheduler_mode not in ("runlist", "heap"):
            raise ValueError(
                f"scheduler_mode must be 'runlist' or 'heap', got {self.scheduler_mode!r}"
            )

    @property
    def mesh_width(self):
        """Width of the (as-square-as-possible) mesh."""
        return _mesh_width(self.n_tiles)

    @property
    def llc_total_kb(self):
        return self.llc.size_kb * self.n_tiles

    def scaled(self, **overrides):
        """Return a copy of this config with ``overrides`` applied.

        Nested fields use dotted keys, e.g. ``scaled(**{"core.invoke_buffer_entries": 8})``
        or plain top-level names, e.g. ``scaled(n_tiles=4)``.
        """
        cfg = dataclasses.replace(self)
        # Deep-copy nested dataclasses so overrides do not alias defaults.
        for name in ("core", "engine", "l1", "l2", "llc", "noc", "memory", "leviathan"):
            setattr(cfg, name, dataclasses.replace(getattr(self, name)))
        for key, value in overrides.items():
            if "." in key:
                obj_name, attr = key.split(".", 1)
                obj = getattr(cfg, obj_name)
                if not hasattr(obj, attr):
                    raise AttributeError(f"unknown config field {key!r}")
                setattr(obj, attr, value)
            else:
                if not hasattr(cfg, key):
                    raise AttributeError(f"unknown config field {key!r}")
                setattr(cfg, key, value)
        cfg.__post_init__()
        return cfg


def _mesh_width(n_tiles):
    """Width of a mesh holding ``n_tiles`` tiles (power of two).

    Perfect squares give square meshes; otherwise the mesh is 2:1
    (e.g. 8 tiles -> 4x2).
    """
    width = 1
    while width * width < n_tiles:
        width *= 2
    if width * width == n_tiles:
        return width
    return width  # n_tiles = width * (width/2); width is the long side


def small_config(**overrides):
    """A small machine for unit tests: 4 tiles, tiny caches.

    Keeping caches tiny makes evictions and capacity effects reachable
    with short unit-test workloads.
    """
    cfg = SystemConfig(
        n_tiles=4,
        core=CoreConfig(invoke_buffer_entries=4),
        engine=EngineConfig(task_contexts=8),
        l1=CacheConfig(size_kb=1, ways=2, tag_latency=1, data_latency=2),
        l2=CacheConfig(size_kb=4, ways=4, tag_latency=2, data_latency=4),
        llc=CacheConfig(size_kb=16, ways=8, tag_latency=3, data_latency=5),
        memory=MemoryConfig(controllers=2),
    )
    return cfg.scaled(**overrides) if overrides else cfg


DEFAULT_CONFIG = SystemConfig()

"""Simulated execution contexts.

A :class:`Context` wraps a generator program with a local clock and a
placement (tile, core-or-engine). Core threads, long-lived engine
actions, and stream producers are all contexts; they differ only in
their timing parameters and energy accounting.

:class:`InlineContext` is the degenerate context used when the hierarchy
runs a short data-triggered action synchronously inside a cache fill.
"""

import itertools

_ids = itertools.count()


class Context:
    """One schedulable program."""

    inline = False

    __slots__ = (
        "ctid",
        "name",
        "program",
        "time",
        "tile",
        "is_engine",
        "engine",
        "done",
        "result",
        "on_done",
        "parked_on",
        "near_memory",
        "cid",
        "send_value",
        "retry_op",
        "send",
    )

    def __init__(self, program, tile, name=None, is_engine=False, engine=None, at_time=0.0):
        self.ctid = next(_ids)
        self.name = name or f"ctx{self.ctid}"
        self.program = program
        self.time = float(at_time)
        self.tile = tile
        self.is_engine = is_engine
        #: The Engine this context occupies a task context of (if any).
        self.engine = engine
        self.done = False
        self.result = None
        #: Callbacks fired at completion: ``fn(machine, ctx)``.
        self.on_done = []
        #: The Condition this context is parked on (for deadlock reports).
        self.parked_on = None
        #: Near-memory task (Sec. IX extension): uncached accesses go
        #: straight to DRAM instead of through a distant LLC bank.
        self.near_memory = False
        #: Correlation id of the invoke this context executes (None for
        #: core threads). Set by the engine at accept time; read only by
        #: telemetry to attribute memory latency to the invoke's span.
        self.cid = None
        #: Scheduler resume state. A context sits in at most one run
        #: list (or heap entry) at a time, so the value to send into the
        #: generator -- and the operation to re-execute after a
        #: retry-park -- live on the context itself instead of a
        #: per-enqueue wrapper object.
        self.send_value = None
        self.retry_op = None
        #: The generator's bound ``send``, resolved once: the scheduler
        #: resumes the program through this on every dispatch.
        self.send = program.send

    def __repr__(self):
        state = "done" if self.done else ("parked" if self.parked_on else "runnable")
        kind = "engine" if self.is_engine else "core"
        return f"Context({self.name}, {kind}@tile{self.tile}, t={self.time:.0f}, {state})"


class InlineContext:
    """Context stand-in for synchronously executed data-triggered actions."""

    inline = True

    __slots__ = ("tile", "is_engine", "engine", "name", "time", "near_memory", "cid")

    def __init__(self, tile, is_engine=True, name="inline-action"):
        self.tile = tile
        self.is_engine = is_engine
        self.engine = None
        self.name = name
        self.time = 0.0
        self.near_memory = False
        self.cid = None

"""The memory hierarchy: L1s, L2s, banked inclusive LLC, DRAM.

This module implements the access path every load/store takes, including
directory coherence (upgrade, invalidation, ping-pong costs), the mesh
NoC transfers between tiles, banks and memory controllers, the L2
strided prefetcher, and -- crucially for Leviathan -- the *hook points*
where the runtime interposes:

- ``hooks.bank_shift(line)``: how many low line-index bits the LLC
  bank-index function ignores (LLC object mapping, Sec. VI-A3);
- ``hooks.translate(line)``: cache-line -> DRAM-line translation (DRAM
  object compaction, Sec. VI-A3);
- ``hooks.on_miss(level, tile, line)``: data-triggered constructors
  (phantom fills, Sec. V-B2);
- ``hooks.on_evict(level, tile, line, dirty)``: data-triggered
  destructors;
- ``hooks.allow_prefetch(level, tile, line)``: stream flow control for
  hardware prefetches (Sec. VI-B3).

The default hooks make the hierarchy a plain multicore -- the baseline
every case study compares against.
"""

from repro.sim.cache import SetAssocCache
from repro.sim.coherence import Directory
from repro.sim.dram import MemorySystem
from repro.sim.noc import MeshNoc
from repro.sim.prefetch import StridePrefetcher

#: Payload sizes (bytes) for NoC accounting.
CTRL_BYTES = 8
DATA_BYTES = 64

#: Safety bound on hook recursion (constructor -> access -> constructor).
MAX_HOOK_DEPTH = 8

#: Sentinel: the prefetcher was NACKed by a morph (e.g. a stream tail).
_PREFETCH_DENIED = object()


class ConstructResult:
    """Returned by ``hooks.on_miss`` when a morph handles a fill."""

    __slots__ = ("latency", "lines", "dirty")

    def __init__(self, latency, lines, dirty=False):
        self.latency = latency
        #: All cache lines of the constructed object (multi-line objects
        #: are inserted or evicted as a unit, Sec. VI-B2).
        self.lines = lines
        self.dirty = dirty


class HierarchyHooks:
    """Default (baseline multicore) hook implementations."""

    def bank_shift(self, line):
        """Low line-index bits ignored by the LLC bank-index function."""
        return 0

    def translate(self, line):
        """DRAM lines backing cache line ``line`` (identity by default)."""
        return (line,)

    def on_miss(self, level, tile, line):
        """Return a :class:`ConstructResult` to handle the fill, or None."""
        return None

    def on_evict(self, level, tile, line, dirty):
        """Return True if a destructor consumed the eviction."""
        return False

    def morph_level(self, line):
        """The level ('l2'/'llc') at which ``line`` is morph-registered."""
        return None

    def allow_prefetch(self, level, tile, line):
        """May the hardware prefetcher fill ``line`` at ``level``?"""
        return True


class Hierarchy:
    """All caches plus the access path connecting them."""

    def __init__(self, machine):
        self.machine = machine
        cfg = machine.config
        self.config = cfg
        self.stats = machine.stats
        self.line_size = cfg.line_size
        self.noc = MeshNoc(cfg, self.stats)
        self.mem = MemorySystem(cfg, self.stats, self.noc)
        self.dir = Directory(self.stats)
        self.hooks = HierarchyHooks()

        def build(cache_cfg, name, tile, index_shift=0):
            return SetAssocCache(
                cache_cfg.sets(cfg.line_size),
                cache_cfg.ways,
                policy=cache_cfg.replacement,
                name=f"{name}{tile}",
                index_shift=index_shift,
            )

        n = cfg.n_tiles
        bank_bits = (n - 1).bit_length()
        self.l1 = [build(cfg.l1, "l1.", t) for t in range(n)]
        self.l2 = [build(cfg.l2, "l2.", t) for t in range(n)]
        # LLC banks index sets above the bank-select bits (which would
        # otherwise alias onto one set per bank).
        self.llc = [build(cfg.llc, "llc.", t, index_shift=bank_bits) for t in range(n)]
        engine_l1_cfg = _engine_l1_config(cfg)
        self.engine_l1 = [build(engine_l1_cfg, "el1.", t) for t in range(n)]
        self.prefetchers = [StridePrefetcher(t, cfg.line_size) for t in range(n)]
        self._hook_depth = 0
        #: Pending data-triggered destructors (the paper's per-engine
        #: "data-triggered buffer", Table IV): destructors execute off
        #: the critical path after the access that evicted them, which
        #: also breaks destructor->store->eviction->destructor recursion.
        self._pending_destructors = []

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def line_of(self, addr):
        return addr // self.line_size

    def bank_of(self, line):
        """LLC bank for ``line``, honoring Leviathan's LSB-ignore mapping."""
        shift = self.hooks.bank_shift(line)
        return (line >> shift) % self.config.n_tiles

    # ------------------------------------------------------------------
    # probes (no state change; used by DYNAMIC invoke placement)
    # ------------------------------------------------------------------
    def tile_has_private(self, tile, line):
        return (
            self.l1[tile].contains(line)
            or self.l2[tile].contains(line)
            or self.engine_l1[tile].contains(line)
        )

    def llc_has(self, line):
        return self.llc[self.bank_of(line)].contains(line)

    def owner_of(self, line):
        return self.dir.owner_of(line)

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, tile, addr, size, is_write, engine=False, apply=None, near_memory=False):
        """Perform an access; returns its latency in cycles.

        Multi-line accesses are overlapped: the latency is that of the
        slowest line, but every line's events are accounted.

        ``apply`` (a zero-argument callable) is the access's functional
        side effect. It runs after the cache access but *before* queued
        destructors drain, so a destructor for this very line (evicted
        by the access's own fills) observes the applied value.
        """
        first = self.line_of(addr)
        last = self.line_of(addr + max(size, 1) - 1)
        latency = 0
        for line in range(first, last + 1):
            latency = max(
                latency,
                self._access_line(tile, line, is_write, engine, near_memory),
            )
        if apply is not None:
            apply()
        if self._hook_depth == 0:
            self._drain_destructors()
        return latency

    def _access_line(self, tile, line, is_write, engine, near_memory=False):
        if engine:
            return self._engine_access_line(tile, line, is_write, near_memory)
        self.stats.add("l1.accesses")
        entry = self.l1[tile].lookup(line)
        if entry is not None:
            latency = self.config.l1.hit_latency
            if is_write:
                entry.dirty = True
                latency += self._ensure_ownership(tile, line)
            return latency

        latency = self.config.l1.tag_latency

        self.stats.add("l2.accesses")
        l2 = self.l2[tile]
        l2_entry = l2.lookup(line)
        if l2_entry is not None:
            latency += self.config.l2.hit_latency
            if is_write:
                latency += self._ensure_ownership(tile, line)
            self._fill_private(tile, line, is_write, False, morph=l2_entry.morph)
            return latency
        latency += self.config.l2.tag_latency

        # L2-level morph: phantom fill constructed by this tile's engine.
        result = self._run_on_miss("l2", tile, line)
        if result is not None:
            latency += result.latency
            for obj_line in result.lines:
                self._insert_l2(tile, obj_line, dirty=result.dirty, morph=True)
            self._fill_private(tile, line, is_write, False, morph=True)
            self.stats.add("morph.l2_constructions")
            return latency

        latency += self._llc_access(tile, line, is_write)
        self._insert_l2(tile, line, dirty=False, morph=False)
        self._fill_private(tile, line, is_write, False, morph=False)
        self.dir.record_fill(line, tile, exclusive=is_write)
        # Prefetches issue after the demand miss resolves (issuing them
        # first could evict the demanded line between its directory and
        # data lookups).
        if self.config.l2_prefetcher:
            self._train_prefetcher(tile, line)
        return latency

    def _engine_access_line(self, tile, line, is_write, near_memory=False):
        """An engine-side access (Sec. VI-A1's clustered coherence).

        The engine L1d and the tile's L2 snoop each other but are
        separate caches: an engine miss snoops the L2 (without filling
        it) and otherwise goes straight to the LLC, so engine traffic
        does not displace the core's working set.

        ``near_memory`` tasks (the Sec. IX extension) read uncached
        lines directly from their memory controller, bypassing the LLC
        entirely -- the engine sits at the controller, so the transfer
        crosses no NoC links.
        """
        if self.hooks.morph_level(line) == "llc":
            # Near-data actions operate on LLC-resident phantom objects
            # *in the LLC bank* (PHI's RMW tasks update the cached
            # deltas directly, Sec. IV-B); bypassing the engine L1d
            # keeps the reuse visible to the LLC's replacement policy.
            return 1 + self._llc_access(tile, line, is_write)
        self.stats.add("engine_l1.accesses")
        entry = self.engine_l1[tile].lookup(line)
        if entry is not None:
            latency = 2  # small, near-engine SRAM
            if is_write:
                entry.dirty = True
                latency += self._ensure_ownership(tile, line)
            return latency

        latency = 1
        # Snoop the on-tile L2 (no fill -- the caches stay distinct).
        self.stats.add("l2.accesses")
        l2_entry = self.l2[tile].lookup(line)
        if l2_entry is not None:
            latency += self.config.l2.hit_latency
            if is_write:
                latency += self._ensure_ownership(tile, line)
            self._fill_private(tile, line, is_write, True, morph=l2_entry.morph)
            return latency

        if near_memory and not self.llc_has(line) and self.dir.peek(line) is None:
            # Direct DRAM read at the controller; the line is cached
            # only in the near-memory engine's L1d, never in the LLC.
            dram_lines = self.hooks.translate(line)
            latency += self.mem.access(
                tile,
                dram_lines,
                is_write=False,
                payload_bytes=DATA_BYTES,
                now=self.machine.scheduler.now,
            )
            self.stats.add("near_memory.direct_accesses")
            self._fill_private(tile, line, is_write, True, morph=False)
            return latency

        latency += self._llc_access(tile, line, is_write)
        self._fill_private(tile, line, is_write, True, morph=False)
        self.dir.record_fill(line, tile, exclusive=is_write)
        return latency

    def _llc_access(self, requester_tile, line, is_write):
        """Access ``line`` at its LLC bank on behalf of ``requester_tile``."""
        bank = self.bank_of(line)
        latency = self.noc.send(requester_tile, bank, CTRL_BYTES)
        self.stats.add("llc.accesses")
        latency += self._resolve_coherence(bank, requester_tile, line, is_write)

        llc = self.llc[bank]
        entry = llc.lookup(line)
        if entry is not None:
            self.stats.add("llc.hits")
            latency += self.config.llc.hit_latency
            if is_write:
                entry.dirty = True
            latency += self.noc.send(bank, requester_tile, DATA_BYTES)
            return latency

        self.stats.add("llc.misses")
        latency += self.config.llc.tag_latency

        result = self._run_on_miss("llc", bank, line)
        if result is not None:
            latency += result.latency
            for obj_line in result.lines:
                self._insert_llc(bank, obj_line, dirty=result.dirty or is_write, morph=True)
            self.stats.add("morph.llc_constructions")
        else:
            dram_lines = self.hooks.translate(line)
            latency += self.mem.access(
                bank,
                dram_lines,
                is_write=False,
                payload_bytes=DATA_BYTES,
                now=self.machine.scheduler.now,
            )
            self._insert_llc(bank, line, dirty=is_write, morph=False)

        latency += self.noc.send(bank, requester_tile, DATA_BYTES)
        return latency

    # ------------------------------------------------------------------
    # coherence
    # ------------------------------------------------------------------
    def _ensure_ownership(self, tile, line):
        """Charge an upgrade if ``tile`` writes a line it does not own."""
        if self.dir.owner_of(line) == tile:
            return 0
        ent = self.dir.peek(line)
        if ent is None:
            # Phantom (L2-morph) lines are tile-private; no directory state.
            return 0
        bank = self.bank_of(line)
        latency = self.noc.round_trip(tile, bank, CTRL_BYTES, CTRL_BYTES)
        self.stats.add("coherence.upgrades")
        latency += self._invalidate_sharers(bank, line, keep_tile=tile)
        self.dir.record_fill(line, tile, exclusive=True)
        return latency

    def _resolve_coherence(self, bank, requester_tile, line, is_write):
        """Directory actions before the LLC satisfies a fill request."""
        ent = self.dir.peek(line)
        if ent is None:
            return 0
        latency = 0
        owner = ent.owner
        if owner is not None and owner != requester_tile:
            # Another tile holds the line modified: fetch and write back.
            self.stats.add("coherence.ping_pongs")
            latency += self.noc.send(bank, owner, CTRL_BYTES)
            latency += self.noc.send(owner, bank, DATA_BYTES)
            self._drop_private(owner, line)
            self.dir.record_private_eviction(line, owner)
            llc_entry = self.llc[bank].lookup(line, touch=False)
            if llc_entry is not None:
                llc_entry.dirty = True
        if is_write:
            latency += self._invalidate_sharers(bank, line, keep_tile=requester_tile)
        return latency

    def _invalidate_sharers(self, bank, line, keep_tile):
        latency = 0
        for sharer in sorted(self.dir.sharers_of(line)):
            if sharer == keep_tile:
                continue
            self.stats.add("coherence.invalidations")
            latency = max(
                latency, self.noc.round_trip(bank, sharer, CTRL_BYTES, CTRL_BYTES)
            )
            self._drop_private(sharer, line)
            self.dir.record_private_eviction(line, sharer)
        return latency

    def _drop_private(self, tile, line):
        """Remove ``line`` from every private cache on ``tile``."""
        for cache in (self.l1[tile], self.l2[tile], self.engine_l1[tile]):
            cache.invalidate(line)

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------
    def _fill_private(self, tile, line, is_write, engine, morph):
        private = self.engine_l1[tile] if engine else self.l1[tile]
        victim = private.insert(line, dirty=is_write, morph=morph)
        if victim is not None:
            if engine:
                self._evict_engine_l1(tile, victim)
            else:
                self._evict_private_l1(tile, victim)
        if is_write and not morph:
            self.dir.record_fill(line, tile, exclusive=True)
        elif not morph:
            self.dir.record_fill(line, tile, exclusive=False)

    def _evict_private_l1(self, tile, victim):
        if victim.dirty:
            # Write back into the L2 (which may cascade).
            self._insert_l2(tile, victim.line, dirty=True, morph=victim.morph)
        self._maybe_release_sharer(tile, victim.line)

    def _evict_engine_l1(self, tile, victim):
        """Engine L1d victims write back to the LLC, not the core's L2."""
        line = victim.line
        if victim.morph:
            # A phantom (L2-morph) line cached by the engine: destruct.
            self._pending_destructors.append(("l2", tile, line, victim.dirty))
            self.stats.add("morph.l2_destructions")
            self._maybe_release_sharer(tile, line)
            return
        if victim.dirty:
            bank = self.bank_of(line)
            self.noc.send(tile, bank, DATA_BYTES)
            self.stats.add("llc.accesses")
            llc_entry = self.llc[bank].lookup(line, touch=False)
            if llc_entry is not None:
                llc_entry.dirty = True
            else:
                self._insert_llc(bank, line, dirty=True, morph=False)
        self._maybe_release_sharer(tile, line)

    def _insert_l2(self, tile, line, dirty, morph):
        l2 = self.l2[tile]
        existing = l2.lookup(line, touch=False)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.morph = existing.morph or morph
            return
        victim = l2.insert(line, dirty=dirty, morph=morph)
        if victim is not None:
            self._evict_l2(tile, victim)

    def _evict_l2(self, tile, victim):
        line = victim.line
        # Enforce L1 (and engine L1d) inclusion within the tile.
        l1_entry = self.l1[tile].invalidate(line)
        e1_entry = self.engine_l1[tile].invalidate(line)
        dirty = victim.dirty or bool(l1_entry and l1_entry.dirty) or bool(
            e1_entry and e1_entry.dirty
        )
        if victim.morph:
            # Phantom line registered at the L2: queue its destructor on
            # this tile's engine; nothing is written down the hierarchy.
            self._pending_destructors.append(("l2", tile, line, dirty))
            self.stats.add("morph.l2_destructions")
            return
        if dirty:
            bank = self.bank_of(line)
            self.noc.send(tile, bank, DATA_BYTES)
            self.stats.add("llc.accesses")
            llc_entry = self.llc[bank].lookup(line, touch=False)
            if llc_entry is not None:
                llc_entry.dirty = True
            else:
                self._insert_llc(bank, line, dirty=True, morph=False)
        self._maybe_release_sharer(tile, line)

    def _maybe_release_sharer(self, tile, line):
        if not self.tile_has_private(tile, line):
            self.dir.record_private_eviction(line, tile)

    def _insert_llc(self, bank, line, dirty, morph):
        llc = self.llc[bank]
        existing = llc.lookup(line, touch=False)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.morph = existing.morph or morph
            return
        victim = llc.insert(line, dirty=dirty, morph=morph)
        if victim is not None:
            self._evict_llc(bank, victim)

    def _evict_llc(self, bank, victim):
        line = victim.line
        # Inclusive LLC: recall private copies everywhere.
        dirty = victim.dirty
        for sharer in sorted(self.dir.sharers_of(line)):
            self.stats.add("coherence.recalls")
            self.noc.round_trip(bank, sharer, CTRL_BYTES, CTRL_BYTES)
            for cache in (self.l1[sharer], self.l2[sharer], self.engine_l1[sharer]):
                dropped = cache.invalidate(line)
                if dropped is not None and dropped.dirty:
                    dirty = True
        self.dir.drop(line)
        if victim.morph:
            # Destructor (off the critical path; its engine work is
            # accounted, its latency absorbed by the actor buffer).
            self._pending_destructors.append(("llc", bank, line, dirty))
            self.stats.add("morph.llc_destructions")
            return
        if dirty:
            dram_lines = self.hooks.translate(line)
            self.mem.access(
                bank,
                dram_lines,
                is_write=True,
                payload_bytes=DATA_BYTES,
                now=self.machine.scheduler.now,
            )
            self.stats.add("llc.writebacks")

    # ------------------------------------------------------------------
    # hooks with recursion guard
    # ------------------------------------------------------------------
    def _run_on_miss(self, level, tile, line):
        # A constructor must never run while the destructor of an
        # earlier eviction of the same line is still queued (it would
        # reset state the destructor has yet to persist) -- drain first.
        if self._hook_depth == 0 and self._pending_destructors:
            self._drain_destructors()
        if self._hook_depth >= MAX_HOOK_DEPTH:
            raise RuntimeError(
                f"morph hook recursion exceeded {MAX_HOOK_DEPTH} at line {line:#x}"
            )
        self._hook_depth += 1
        try:
            return self.hooks.on_miss(level, tile, line)
        finally:
            self._hook_depth -= 1

    def _drain_destructors(self):
        """Run queued destructors until none remain.

        Destructors may themselves store (evicting further morph lines);
        those re-queue rather than recurse, mirroring the hardware's
        pending-actor buffer.
        """
        while self._pending_destructors:
            level, tile, line, dirty = self._pending_destructors.pop(0)
            self._run_on_evict(level, tile, line, dirty)

    def _run_on_evict(self, level, tile, line, dirty):
        if self._hook_depth >= MAX_HOOK_DEPTH:
            raise RuntimeError(
                f"morph hook recursion exceeded {MAX_HOOK_DEPTH} at line {line:#x}"
            )
        self._hook_depth += 1
        try:
            return self.hooks.on_evict(level, tile, line, dirty)
        finally:
            self._hook_depth -= 1

    # ------------------------------------------------------------------
    # prefetch
    # ------------------------------------------------------------------
    def _train_prefetcher(self, tile, line):
        for pf_line in self.prefetchers[tile].train(line):
            if self.l2[tile].contains(pf_line):
                continue
            self._prefetch_fill(tile, pf_line)

    def _prefetch_fill(self, tile, line):
        """Fill ``line`` into the L2 in the background (no demand latency)."""
        result = self._run_on_miss_if_allowed(tile, line)
        if result is _PREFETCH_DENIED:
            return
        self.stats.add("prefetch.issued")
        if result is not None:
            for obj_line in result.lines:
                self._insert_l2(tile, obj_line, dirty=result.dirty, morph=True)
            self.stats.add("morph.l2_constructions")
            self.stats.add("prefetch.morph_fills")
            return
        self._llc_access(tile, line, is_write=False)
        self._insert_l2(tile, line, dirty=False, morph=False)
        self.dir.record_fill(line, tile, exclusive=False)

    def _run_on_miss_if_allowed(self, tile, line):
        if not self.hooks.allow_prefetch("l2", tile, line):
            self.stats.add("prefetch.nacked")
            return _PREFETCH_DENIED
        return self._run_on_miss("l2", tile, line)

    # ------------------------------------------------------------------
    # explicit flush (Leviathan's flush instruction, Sec. VI-B2)
    # ------------------------------------------------------------------
    def flush_range(self, region):
        """Flush every resident line of ``region`` from all caches.

        Used when a Morph is unregistered; destructors fire for morph
        lines, dirty ordinary lines are written back.
        """
        line_lo = region.base // self.line_size
        line_hi = (region.end + self.line_size - 1) // self.line_size
        for tile in range(self.config.n_tiles):
            for line in self.l2[tile].resident_in(line_lo, line_hi):
                victim = self.l2[tile].invalidate(line)
                if victim is not None:
                    self._evict_l2(tile, victim)
            for cache in (self.l1[tile], self.engine_l1[tile]):
                for line in cache.resident_in(line_lo, line_hi):
                    victim = cache.invalidate(line)
                    if victim is not None and victim.dirty and not victim.morph:
                        self._insert_l2(tile, line, dirty=True, morph=False)
                    self._maybe_release_sharer(tile, line)
        for bank in range(self.config.n_tiles):
            for line in self.llc[bank].resident_in(line_lo, line_hi):
                victim = self.llc[bank].invalidate(line)
                if victim is not None:
                    self._evict_llc(bank, victim)
        self._drain_destructors()
        self.stats.add("morph.flushes")


def _engine_l1_config(cfg):
    """Cache geometry for the engine's small coherent L1d."""
    from repro.sim.config import CacheConfig

    return CacheConfig(
        size_kb=cfg.engine.l1d_kb,
        ways=cfg.engine.l1d_ways,
        tag_latency=1,
        data_latency=1,
    )

"""The memory hierarchy: a layered access-path pipeline.

An access enters :meth:`Hierarchy.access` as a
:class:`~repro.sim.access.MemoryRequest` per cache line and walks three
focused components, each owning one slice of the path:

- :class:`PrivateCachePath`: per-tile L1s, L2s, the engines' small
  coherent L1ds, and the L2 strided prefetchers;
- :class:`SharedCachePath`: the banked inclusive LLC with its
  in-directory coherence (upgrades, invalidations, ping-pong costs);
- the DRAM/MC path (:class:`~repro.sim.dram.MemorySystem`): memory
  controllers with their FIFO caches, reached over the mesh NoC;
- :class:`FillEngine`: the fill/evict seam where the Leviathan runtime
  interposes -- data-triggered constructors on misses (phantom fills,
  Sec. V-B2), destructors on evictions (queued on the pending-actor
  buffer and drained off the critical path), and prefetch flow control.

Each component records a per-level outcome on the request and
accumulates latency; :meth:`Hierarchy.access` folds the per-line
requests into an :class:`~repro.sim.access.AccessResult`. All
components emit typed events on the machine's
:class:`~repro.sim.events.EventBus` (guard-checked: free with no
subscribers), which is how tracing, access profiles, and live energy
metering observe the pipeline without touching it.

The runtime interposes through ``hierarchy.hooks``
(:class:`HierarchyHooks`):

- ``hooks.bank_shift(line)``: how many low line-index bits the LLC
  bank-index function ignores (LLC object mapping, Sec. VI-A3);
- ``hooks.translate(line)``: cache-line -> DRAM-line translation (DRAM
  object compaction, Sec. VI-A3);
- ``hooks.on_miss(level, tile, line)``: data-triggered constructors;
- ``hooks.on_evict(level, tile, line, dirty)``: data-triggered
  destructors;
- ``hooks.allow_prefetch(level, tile, line)``: stream flow control for
  hardware prefetches (Sec. VI-B3).

The default hooks make the hierarchy a plain multicore -- the baseline
every case study compares against.
"""

from repro.sim.access import MemoryRequest, AccessResult
from repro.sim.cache import SetAssocCache
from repro.sim.coherence import Directory
from repro.sim.dram import MemorySystem
from repro.sim.events import (
    CacheAccess,
    CoherenceAction,
    Eviction,
    MemoryAccess,
    MorphConstruct,
    MorphDestruct,
)
from repro.sim.noc import MeshNoc
from repro.sim.prefetch import StridePrefetcher

#: Payload sizes (bytes) for NoC accounting.
CTRL_BYTES = 8
DATA_BYTES = 64

#: Safety bound on hook recursion (constructor -> access -> constructor).
MAX_HOOK_DEPTH = 8

#: Sentinel: the prefetcher was NACKed by a morph (e.g. a stream tail).
_PREFETCH_DENIED = object()


class ConstructResult:
    """Returned by ``hooks.on_miss`` when a morph handles a fill."""

    __slots__ = ("latency", "lines", "dirty")

    def __init__(self, latency, lines, dirty=False):
        self.latency = latency
        #: All cache lines of the constructed object (multi-line objects
        #: are inserted or evicted as a unit, Sec. VI-B2).
        self.lines = lines
        self.dirty = dirty


class HierarchyHooks:
    """Default (baseline multicore) hook implementations."""

    def bank_shift(self, line):
        """Low line-index bits ignored by the LLC bank-index function."""
        return 0

    def translate(self, line):
        """DRAM lines backing cache line ``line`` (identity by default)."""
        return (line,)

    def on_miss(self, level, tile, line):
        """Return a :class:`ConstructResult` to handle the fill, or None."""
        return None

    def on_evict(self, level, tile, line, dirty):
        """Return True if a destructor consumed the eviction."""
        return False

    def morph_level(self, line):
        """The level ('l2'/'llc') at which ``line`` is morph-registered."""
        return None

    def allow_prefetch(self, level, tile, line):
        """May the hardware prefetcher fill ``line`` at ``level``?"""
        return True


class FillEngine:
    """The fill/evict seam: morph hooks and the pending-actor buffer.

    Constructors run inline (their latency is on the fill's critical
    path); destructors queue here and drain off the critical path after
    the access that evicted them, which also breaks
    destructor->store->eviction->destructor recursion -- the paper's
    per-engine "data-triggered buffer" (Table IV).
    """

    def __init__(self, hierarchy):
        self.h = hierarchy
        self.stats = hierarchy.stats
        self.bus = hierarchy.bus
        self.hooks = HierarchyHooks()
        self._hook_depth = 0
        self._pending_destructors = []
        #: Per-event-type emit flag, kept coherent with the bus registry
        #: by :meth:`Hierarchy._refresh_emit_flags`.
        self.emit_morph_destruct = False

    # ------------------------------------------------------------------
    # hooks with recursion guard
    # ------------------------------------------------------------------
    def run_on_miss(self, level, tile, line):
        # A constructor must never run while the destructor of an
        # earlier eviction of the same line is still queued (it would
        # reset state the destructor has yet to persist) -- drain first.
        if self._hook_depth == 0 and self._pending_destructors:
            self.drain_destructors()
        if self._hook_depth >= MAX_HOOK_DEPTH:
            raise RuntimeError(
                f"morph hook recursion exceeded {MAX_HOOK_DEPTH} at line {line:#x}"
            )
        self._hook_depth += 1
        try:
            return self.hooks.on_miss(level, tile, line)
        finally:
            self._hook_depth -= 1

    def run_on_miss_if_allowed(self, tile, line):
        if not self.hooks.allow_prefetch("l2", tile, line):
            self.stats.add("prefetch.nacked")
            return _PREFETCH_DENIED
        return self.run_on_miss("l2", tile, line)

    def queue_destructor(self, level, tile, line, dirty):
        """Queue a data-triggered destructor on the pending-actor buffer."""
        self._pending_destructors.append((level, tile, line, dirty))
        self.stats.add(f"morph.{level}_destructions")
        if self.emit_morph_destruct:
            self.bus.emit(MorphDestruct(level, tile, line, dirty))

    def drain_destructors(self):
        """Run queued destructors until none remain.

        Destructors may themselves store (evicting further morph lines);
        those re-queue rather than recurse, mirroring the hardware's
        pending-actor buffer.
        """
        while self._pending_destructors:
            level, tile, line, dirty = self._pending_destructors.pop(0)
            self._run_on_evict(level, tile, line, dirty)

    def _run_on_evict(self, level, tile, line, dirty):
        if self._hook_depth >= MAX_HOOK_DEPTH:
            raise RuntimeError(
                f"morph hook recursion exceeded {MAX_HOOK_DEPTH} at line {line:#x}"
            )
        self._hook_depth += 1
        try:
            return self.hooks.on_evict(level, tile, line, dirty)
        finally:
            self._hook_depth -= 1


class PrivateCachePath:
    """Per-tile private caches: L1s, L2s, engine L1ds, L2 prefetchers."""

    def __init__(self, hierarchy):
        self.h = hierarchy
        cfg = hierarchy.config
        self.config = cfg
        self.stats = hierarchy.stats
        self.bus = hierarchy.bus
        n = cfg.n_tiles
        self.l1 = [hierarchy.build_cache(cfg.l1, "l1.", t) for t in range(n)]
        self.l2 = [hierarchy.build_cache(cfg.l2, "l2.", t) for t in range(n)]
        engine_l1_cfg = _engine_l1_config(cfg)
        self.engine_l1 = [
            hierarchy.build_cache(engine_l1_cfg, "el1.", t) for t in range(n)
        ]
        self.prefetchers = [StridePrefetcher(t, cfg.line_size) for t in range(n)]
        # Hit/tag latencies resolved once: ``CacheConfig.hit_latency`` is
        # a property (tag + data) and was being recomputed per access.
        self._l1_hit = cfg.l1.hit_latency
        self._l1_tag = cfg.l1.tag_latency
        self._l2_hit = cfg.l2.hit_latency
        self._l2_tag = cfg.l2.tag_latency
        # Per-event-type emit flags (see Hierarchy._refresh_emit_flags).
        self.emit_cache_access = False
        self.emit_eviction = False
        self.emit_morph_construct = False

    def link(self, shared, fill_engine):
        """Wire the cross-component references (called once by the facade)."""
        self.shared = shared
        self.fill = fill_engine

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def tile_has_private(self, tile, line):
        return (
            self.l1[tile].contains(line)
            or self.l2[tile].contains(line)
            or self.engine_l1[tile].contains(line)
        )

    # ------------------------------------------------------------------
    # the core demand path
    # ------------------------------------------------------------------
    def access_line(self, req):
        """Walk a core access through L1 -> L2 -> (morph | shared path)."""
        stats = self.stats
        counters = stats.counters
        phased = stats._phase is not None
        tile, line, is_write = req.tile, req.line, req.is_write

        if phased:
            stats.add("l1.accesses")
        else:
            counters["l1.accesses"] += 1
        entry = self.l1[tile].lookup(line)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("l1", tile, line, entry is not None, is_write, False)
            )
        if entry is not None:
            req.outcomes.append(("l1", "hit"))
            req.latency += self._l1_hit
            if is_write:
                entry.dirty = True
                req.latency += self.shared.ensure_ownership(tile, line)
            return
        req.outcomes.append(("l1", "miss"))
        req.latency += self._l1_tag

        if phased:
            stats.add("l2.accesses")
        else:
            counters["l2.accesses"] += 1
        l2_entry = self.l2[tile].lookup(line)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("l2", tile, line, l2_entry is not None, is_write, False)
            )
        if l2_entry is not None:
            req.outcomes.append(("l2", "hit"))
            req.latency += self._l2_hit
            if is_write:
                req.latency += self.shared.ensure_ownership(tile, line)
            self.fill_private(tile, line, is_write, False, morph=l2_entry.morph)
            return
        req.outcomes.append(("l2", "miss"))
        req.latency += self._l2_tag

        # L2-level morph: phantom fill constructed by this tile's engine.
        result = self.fill.run_on_miss("l2", tile, line)
        if result is not None:
            req.record("l2", "construct")
            req.latency += result.latency
            for obj_line in result.lines:
                self.insert_l2(tile, obj_line, dirty=result.dirty, morph=True)
            self.fill_private(tile, line, is_write, False, morph=True)
            stats.add("morph.l2_constructions")
            if self.emit_morph_construct:
                self.bus.emit(MorphConstruct("l2", tile, line))
            return

        self.shared.access_line(req)
        self.insert_l2(tile, line, dirty=False, morph=False)
        self.fill_private(tile, line, is_write, False, morph=False)
        self.shared.dir.record_fill(line, tile, exclusive=is_write)
        # Prefetches issue after the demand miss resolves (issuing them
        # first could evict the demanded line between its directory and
        # data lookups).
        if self.config.l2_prefetcher:
            self.train_prefetcher(tile, line)

    # ------------------------------------------------------------------
    # the engine demand path (Sec. VI-A1's clustered coherence)
    # ------------------------------------------------------------------
    def engine_access_line(self, req):
        """An engine-side access.

        The engine L1d and the tile's L2 snoop each other but are
        separate caches: an engine miss snoops the L2 (without filling
        it) and otherwise goes straight to the LLC, so engine traffic
        does not displace the core's working set.

        ``near_memory`` tasks (the Sec. IX extension) read uncached
        lines directly from their memory controller, bypassing the LLC
        entirely -- the engine sits at the controller, so the transfer
        crosses no NoC links.
        """
        h = self.h
        stats = self.stats
        counters = stats.counters
        phased = stats._phase is not None
        tile, line, is_write = req.tile, req.line, req.is_write

        if self.fill.hooks.morph_level(line) == "llc":
            # Near-data actions operate on LLC-resident phantom objects
            # *in the LLC bank* (PHI's RMW tasks update the cached
            # deltas directly, Sec. IV-B); bypassing the engine L1d
            # keeps the reuse visible to the LLC's replacement policy.
            req.outcomes.append(("engine_l1", "bypass"))
            req.latency += 1
            self.shared.access_line(req)
            return

        if phased:
            stats.add("engine_l1.accesses")
        else:
            counters["engine_l1.accesses"] += 1
        entry = self.engine_l1[tile].lookup(line)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("engine_l1", tile, line, entry is not None, is_write, True)
            )
        if entry is not None:
            req.outcomes.append(("engine_l1", "hit"))
            req.latency += 2  # small, near-engine SRAM
            if is_write:
                entry.dirty = True
                req.latency += self.shared.ensure_ownership(tile, line)
            return
        req.outcomes.append(("engine_l1", "miss"))
        req.latency += 1

        # Snoop the on-tile L2 (no fill -- the caches stay distinct).
        if phased:
            stats.add("l2.accesses")
        else:
            counters["l2.accesses"] += 1
        l2_entry = self.l2[tile].lookup(line)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("l2", tile, line, l2_entry is not None, is_write, True)
            )
        if l2_entry is not None:
            req.outcomes.append(("l2", "snoop_hit"))
            req.latency += self._l2_hit
            if is_write:
                req.latency += self.shared.ensure_ownership(tile, line)
            self.fill_private(tile, line, is_write, True, morph=l2_entry.morph)
            return
        req.outcomes.append(("l2", "snoop_miss"))

        if (
            req.near_memory
            and not self.shared.llc_has(line)
            and self.shared.dir.peek(line) is None
        ):
            # Direct DRAM read at the controller; the line is cached
            # only in the near-memory engine's L1d, never in the LLC.
            dram_lines = self.fill.hooks.translate(line)
            req.latency += h.mem.access(
                tile,
                dram_lines,
                is_write=False,
                payload_bytes=DATA_BYTES,
                now=h.machine.scheduler.now,
            )
            stats.add("near_memory.direct_accesses")
            req.record("dram", "direct")
            self.fill_private(tile, line, is_write, True, morph=False)
            return

        self.shared.access_line(req)
        self.fill_private(tile, line, is_write, True, morph=False)
        self.shared.dir.record_fill(line, tile, exclusive=is_write)

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------
    def fill_private(self, tile, line, is_write, engine, morph):
        private = self.engine_l1[tile] if engine else self.l1[tile]
        victim = private.insert(line, dirty=is_write, morph=morph)
        if victim is not None:
            if engine:
                self.evict_engine_l1(tile, victim)
            else:
                self.evict_private_l1(tile, victim)
        if is_write and not morph:
            self.shared.dir.record_fill(line, tile, exclusive=True)
        elif not morph:
            self.shared.dir.record_fill(line, tile, exclusive=False)

    def evict_private_l1(self, tile, victim):
        if self.emit_eviction:
            self.bus.emit(Eviction("l1", tile, victim.line, victim.dirty, victim.morph))
        if victim.dirty:
            # Write back into the L2 (which may cascade).
            self.insert_l2(tile, victim.line, dirty=True, morph=victim.morph)
        self.shared.maybe_release_sharer(tile, victim.line)

    def evict_engine_l1(self, tile, victim):
        """Engine L1d victims write back to the LLC, not the core's L2."""
        line = victim.line
        if self.emit_eviction:
            self.bus.emit(Eviction("engine_l1", tile, line, victim.dirty, victim.morph))
        if victim.morph:
            # A phantom (L2-morph) line cached by the engine: destruct.
            self.fill.queue_destructor("l2", tile, line, victim.dirty)
            self.shared.maybe_release_sharer(tile, line)
            return
        if victim.dirty:
            self.shared.writeback(tile, line)
        self.shared.maybe_release_sharer(tile, line)

    def insert_l2(self, tile, line, dirty, morph):
        l2 = self.l2[tile]
        existing = l2.lookup(line, touch=False)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.morph = existing.morph or morph
            return
        victim = l2.insert(line, dirty=dirty, morph=morph)
        if victim is not None:
            self.evict_l2(tile, victim)

    def evict_l2(self, tile, victim):
        line = victim.line
        # Enforce L1 (and engine L1d) inclusion within the tile.
        l1_entry = self.l1[tile].invalidate(line)
        e1_entry = self.engine_l1[tile].invalidate(line)
        dirty = victim.dirty or bool(l1_entry and l1_entry.dirty) or bool(
            e1_entry and e1_entry.dirty
        )
        if self.emit_eviction:
            self.bus.emit(Eviction("l2", tile, line, dirty, victim.morph))
        if victim.morph:
            # Phantom line registered at the L2: queue its destructor on
            # this tile's engine; nothing is written down the hierarchy.
            self.fill.queue_destructor("l2", tile, line, dirty)
            return
        if dirty:
            self.shared.writeback(tile, line)
        self.shared.maybe_release_sharer(tile, line)

    def drop_private(self, tile, line):
        """Remove ``line`` from every private cache on ``tile``."""
        for cache in (self.l1[tile], self.l2[tile], self.engine_l1[tile]):
            cache.invalidate(line)

    # ------------------------------------------------------------------
    # prefetch
    # ------------------------------------------------------------------
    def train_prefetcher(self, tile, line):
        for pf_line in self.prefetchers[tile].train(line):
            if self.l2[tile].contains(pf_line):
                continue
            self.prefetch_fill(tile, pf_line)

    def prefetch_fill(self, tile, line):
        """Fill ``line`` into the L2 in the background (no demand latency)."""
        result = self.fill.run_on_miss_if_allowed(tile, line)
        if result is _PREFETCH_DENIED:
            return
        self.stats.add("prefetch.issued")
        if result is not None:
            for obj_line in result.lines:
                self.insert_l2(tile, obj_line, dirty=result.dirty, morph=True)
            self.stats.add("morph.l2_constructions")
            self.stats.add("prefetch.morph_fills")
            if self.emit_morph_construct:
                self.bus.emit(MorphConstruct("l2", tile, line))
            return
        # The prefetch walks the shared path like a demand fill, but its
        # latency is discarded (it is off the demand critical path).
        pf_req = self.h.checkout_request(tile, line, 0, False, False, False)
        self.shared.access_line(pf_req)
        self.h.checkin_request(pf_req)
        self.insert_l2(tile, line, dirty=False, morph=False)
        self.shared.dir.record_fill(line, tile, exclusive=False)


class SharedCachePath:
    """The banked inclusive LLC and its in-directory coherence."""

    def __init__(self, hierarchy):
        self.h = hierarchy
        cfg = hierarchy.config
        self.config = cfg
        self.stats = hierarchy.stats
        self.bus = hierarchy.bus
        n = cfg.n_tiles
        bank_bits = (n - 1).bit_length()
        # LLC banks index sets above the bank-select bits (which would
        # otherwise alias onto one set per bank).
        self.llc = [
            hierarchy.build_cache(cfg.llc, "llc.", t, index_shift=bank_bits)
            for t in range(n)
        ]
        self.dir = Directory(self.stats)
        #: ``n_tiles`` is a power of two (validated by SystemConfig), so
        #: the bank-index modulo reduces to this mask.
        self._bank_mask = n - 1
        self._llc_hit = cfg.llc.hit_latency
        self._llc_tag = cfg.llc.tag_latency
        # Per-event-type emit flags (see Hierarchy._refresh_emit_flags).
        self.emit_cache_access = False
        self.emit_eviction = False
        self.emit_coherence = False
        self.emit_morph_construct = False

    def link(self, private, fill_engine):
        """Wire the cross-component references (called once by the facade)."""
        self.private = private
        self.fill = fill_engine

    # ------------------------------------------------------------------
    # mapping and probes
    # ------------------------------------------------------------------
    def bank_of(self, line):
        """LLC bank for ``line``, honoring Leviathan's LSB-ignore mapping."""
        return (line >> self.fill.hooks.bank_shift(line)) & self._bank_mask

    def llc_has(self, line):
        return self.llc[self.bank_of(line)].contains(line)

    def owner_of(self, line):
        return self.dir.owner_of(line)

    # ------------------------------------------------------------------
    # the shared demand path
    # ------------------------------------------------------------------
    def access_line(self, req):
        """Access ``req.line`` at its LLC bank on behalf of the requester."""
        h = self.h
        stats = self.stats
        counters = stats.counters
        phased = stats._phase is not None
        line, is_write = req.line, req.is_write
        bank = (line >> self.fill.hooks.bank_shift(line)) & self._bank_mask
        req.latency += h.noc.send(req.tile, bank, CTRL_BYTES)
        if phased:
            stats.add("llc.accesses")
        else:
            counters["llc.accesses"] += 1
        req.latency += self.resolve_coherence(bank, req.tile, line, is_write)

        llc = self.llc[bank]
        entry = llc.lookup(line)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("llc", bank, line, entry is not None, is_write, req.engine)
            )
        if entry is not None:
            if phased:
                stats.add("llc.hits")
            else:
                counters["llc.hits"] += 1
            req.outcomes.append(("llc", "hit"))
            req.latency += self._llc_hit
            if is_write:
                entry.dirty = True
            req.latency += h.noc.send(bank, req.tile, DATA_BYTES)
            return

        if phased:
            stats.add("llc.misses")
        else:
            counters["llc.misses"] += 1
        req.outcomes.append(("llc", "miss"))
        req.latency += self._llc_tag

        result = self.fill.run_on_miss("llc", bank, line)
        if result is not None:
            req.record("llc", "construct")
            req.latency += result.latency
            for obj_line in result.lines:
                self.insert_llc(bank, obj_line, dirty=result.dirty or is_write, morph=True)
            stats.add("morph.llc_constructions")
            if self.emit_morph_construct:
                self.bus.emit(MorphConstruct("llc", bank, line))
        else:
            dram_lines = self.fill.hooks.translate(line)
            req.latency += h.mem.access(
                bank,
                dram_lines,
                is_write=False,
                payload_bytes=DATA_BYTES,
                now=h.machine.scheduler.now,
            )
            req.record("dram", "fill")
            self.insert_llc(bank, line, dirty=is_write, morph=False)

        req.latency += h.noc.send(bank, req.tile, DATA_BYTES)

    # ------------------------------------------------------------------
    # coherence
    # ------------------------------------------------------------------
    def ensure_ownership(self, tile, line):
        """Charge an upgrade if ``tile`` writes a line it does not own."""
        ent = self.dir.peek(line)
        if ent is None:
            # Phantom (L2-morph) lines are tile-private; no directory state.
            return 0
        if ent.owner == tile:
            return 0
        bank = self.bank_of(line)
        latency = self.h.noc.round_trip(tile, bank, CTRL_BYTES, CTRL_BYTES)
        self.stats.add("coherence.upgrades")
        if self.emit_coherence:
            self.bus.emit(CoherenceAction("upgrade", line, bank, tile))
        latency += self.invalidate_sharers(bank, line, keep_tile=tile)
        self.dir.record_fill(line, tile, exclusive=True)
        return latency

    def resolve_coherence(self, bank, requester_tile, line, is_write):
        """Directory actions before the LLC satisfies a fill request."""
        ent = self.dir.peek(line)
        if ent is None:
            return 0
        latency = 0
        owner = ent.owner
        if owner is not None and owner != requester_tile:
            # Another tile holds the line modified: fetch and write back.
            self.stats.add("coherence.ping_pongs")
            if self.emit_coherence:
                self.bus.emit(CoherenceAction("ping_pong", line, bank, owner))
            latency += self.h.noc.send(bank, owner, CTRL_BYTES)
            latency += self.h.noc.send(owner, bank, DATA_BYTES)
            self.private.drop_private(owner, line)
            self.dir.record_private_eviction(line, owner)
            llc_entry = self.llc[bank].lookup(line, touch=False)
            if llc_entry is not None:
                llc_entry.dirty = True
        if is_write:
            latency += self.invalidate_sharers(bank, line, keep_tile=requester_tile)
        return latency

    def invalidate_sharers(self, bank, line, keep_tile):
        latency = 0
        for sharer in sorted(self.dir.sharers_of(line)):
            if sharer == keep_tile:
                continue
            self.stats.add("coherence.invalidations")
            if self.emit_coherence:
                self.bus.emit(CoherenceAction("invalidation", line, bank, sharer))
            latency = max(
                latency, self.h.noc.round_trip(bank, sharer, CTRL_BYTES, CTRL_BYTES)
            )
            self.private.drop_private(sharer, line)
            self.dir.record_private_eviction(line, sharer)
        return latency

    def maybe_release_sharer(self, tile, line):
        if not self.private.tile_has_private(tile, line):
            self.dir.record_private_eviction(line, tile)

    # ------------------------------------------------------------------
    # fills, writebacks, evictions
    # ------------------------------------------------------------------
    def writeback(self, tile, line):
        """A dirty private victim writes back into the line's LLC bank."""
        bank = self.bank_of(line)
        self.h.noc.send(tile, bank, DATA_BYTES)
        self.stats.add("llc.accesses")
        llc_entry = self.llc[bank].lookup(line, touch=False)
        if self.emit_cache_access:
            self.bus.emit(
                CacheAccess("llc", bank, line, llc_entry is not None, True, False)
            )
        if llc_entry is not None:
            llc_entry.dirty = True
        else:
            self.insert_llc(bank, line, dirty=True, morph=False)

    def insert_llc(self, bank, line, dirty, morph):
        llc = self.llc[bank]
        existing = llc.lookup(line, touch=False)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.morph = existing.morph or morph
            return
        victim = llc.insert(line, dirty=dirty, morph=morph)
        if victim is not None:
            self.evict_llc(bank, victim)

    def evict_llc(self, bank, victim):
        line = victim.line
        # Inclusive LLC: recall private copies everywhere.
        dirty = victim.dirty
        for sharer in sorted(self.dir.sharers_of(line)):
            self.stats.add("coherence.recalls")
            if self.emit_coherence:
                self.bus.emit(CoherenceAction("recall", line, bank, sharer))
            self.h.noc.round_trip(bank, sharer, CTRL_BYTES, CTRL_BYTES)
            for cache in (
                self.private.l1[sharer],
                self.private.l2[sharer],
                self.private.engine_l1[sharer],
            ):
                dropped = cache.invalidate(line)
                if dropped is not None and dropped.dirty:
                    dirty = True
        self.dir.drop(line)
        if self.emit_eviction:
            self.bus.emit(Eviction("llc", bank, line, dirty, victim.morph))
        if victim.morph:
            # Destructor (off the critical path; its engine work is
            # accounted, its latency absorbed by the actor buffer).
            self.fill.queue_destructor("llc", bank, line, dirty)
            return
        if dirty:
            dram_lines = self.fill.hooks.translate(line)
            self.h.mem.access(
                bank,
                dram_lines,
                is_write=True,
                payload_bytes=DATA_BYTES,
                now=self.h.machine.scheduler.now,
            )
            self.stats.add("llc.writebacks")


class Hierarchy:
    """The facade: owns the pipeline components and the access entry point."""

    def __init__(self, machine):
        self.machine = machine
        cfg = machine.config
        self.config = cfg
        self.stats = machine.stats
        self.bus = machine.events
        self.line_size = cfg.line_size
        self.noc = MeshNoc(cfg, self.stats, bus=self.bus)
        self.mem = MemorySystem(cfg, self.stats, self.noc, bus=self.bus)

        self.fill_engine = FillEngine(self)
        self.private = PrivateCachePath(self)
        self.shared = SharedCachePath(self)
        self.private.link(self.shared, self.fill_engine)
        self.shared.link(self.private, self.fill_engine)

        # Component internals re-exported under their historical names:
        # the runtime, workloads, and tests address caches through the
        # facade (``hierarchy.l1[tile]`` etc.).
        self.l1 = self.private.l1
        self.l2 = self.private.l2
        self.engine_l1 = self.private.engine_l1
        self.prefetchers = self.private.prefetchers
        self.llc = self.shared.llc
        self.dir = self.shared.dir

        #: line_size is validated to be a power of two, so address ->
        #: line is a shift on the hot path.
        self._line_shift = cfg.line_size.bit_length() - 1
        #: Free list of MemoryRequest objects. An access checks one out,
        #: walks it down the path, and checks it back in; constructor
        #: recursion is safe because a nested access simply pops another
        #: entry (or allocates when the pool is dry).
        self._req_pool = []
        #: True when a MemoryAccess subscriber exists: accesses must
        #: then build full AccessResult objects (the instrumented path).
        self._want_memory_access = False
        # Keep every component's per-event-type emit flag coherent with
        # the bus registry (called immediately, then on each change).
        self.bus.on_change(self._refresh_emit_flags)

    def _refresh_emit_flags(self, bus):
        """Distribute ``bus.wants(...)`` to the path components.

        Emit sites on the access path guard on these flags instead of
        ``bus.active`` so an event type nobody subscribed to is never
        even constructed -- e.g. an AccessProfile (MemoryAccess-only)
        subscriber does not cause a CacheAccess allocation per lookup.
        """
        wants = bus.wants
        private = self.private
        shared = self.shared
        private.emit_cache_access = shared.emit_cache_access = wants(CacheAccess)
        private.emit_eviction = shared.emit_eviction = wants(Eviction)
        shared.emit_coherence = wants(CoherenceAction)
        private.emit_morph_construct = shared.emit_morph_construct = wants(
            MorphConstruct
        )
        self.fill_engine.emit_morph_destruct = wants(MorphDestruct)
        self._want_memory_access = wants(MemoryAccess)

    # ------------------------------------------------------------------
    # request pooling
    # ------------------------------------------------------------------
    def checkout_request(self, tile, line, size, is_write, engine, near_memory):
        """A reset :class:`MemoryRequest` from the free list (or new)."""
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.tile = tile
            req.line = line
            req.size = size
            req.is_write = is_write
            req.engine = engine
            req.near_memory = near_memory
            req.latency = 0.0
            return req
        return MemoryRequest(tile, line, size, is_write, engine, near_memory)

    def checkin_request(self, req):
        """Recycle ``req``; its outcome trail is discarded."""
        req.outcomes.clear()
        self._req_pool.append(req)

    def build_cache(self, cache_cfg, name, tile, index_shift=0):
        return SetAssocCache(
            cache_cfg.sets(self.config.line_size),
            cache_cfg.ways,
            policy=cache_cfg.replacement,
            name=f"{name}{tile}",
            index_shift=index_shift,
        )

    # ------------------------------------------------------------------
    # hooks (delegated to the fill engine; the runtime assigns these)
    # ------------------------------------------------------------------
    @property
    def hooks(self):
        return self.fill_engine.hooks

    @hooks.setter
    def hooks(self, hooks):
        self.fill_engine.hooks = hooks

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def line_of(self, addr):
        return addr // self.line_size

    def bank_of(self, line):
        return self.shared.bank_of(line)

    # ------------------------------------------------------------------
    # probes (no state change; used by DYNAMIC invoke placement)
    # ------------------------------------------------------------------
    def tile_has_private(self, tile, line):
        return self.private.tile_has_private(tile, line)

    def llc_has(self, line):
        return self.shared.llc_has(line)

    def owner_of(self, line):
        return self.shared.owner_of(line)

    # ------------------------------------------------------------------
    # the access entry point
    # ------------------------------------------------------------------
    def access(self, tile, addr, size, is_write, engine=False, apply=None, near_memory=False):
        """Perform an access; returns its :class:`AccessResult`.

        Multi-line accesses are overlapped: the result's latency is that
        of the slowest line, but every line's events and outcomes are
        accounted.

        ``apply`` (a zero-argument callable) is the access's functional
        side effect. It runs after the cache access but *before* queued
        destructors drain, so a destructor for this very line (evicted
        by the access's own fills) observes the applied value.
        """
        private = self.private
        shift = self._line_shift
        first = addr >> shift
        last = (addr + max(size, 1) - 1) >> shift
        if first == last:
            req = self.checkout_request(tile, first, size, is_write, engine, near_memory)
            if engine:
                private.engine_access_line(req)
            else:
                private.access_line(req)
            latency = req.latency
            # The outcome trail escapes into the AccessResult: hand the
            # recycled request a fresh list instead of copying.
            outcomes = req.outcomes
            req.outcomes = []
            self._req_pool.append(req)
        else:
            latency = 0.0
            req = self.checkout_request(tile, first, size, is_write, engine, near_memory)
            for line in range(first, last + 1):
                req.line = line
                if engine:
                    private.engine_access_line(req)
                else:
                    private.access_line(req)
                if req.latency > latency:
                    latency = req.latency
                req.latency = 0.0
            outcomes = req.outcomes
            req.outcomes = []
            self._req_pool.append(req)
        if apply is not None:
            apply()
        fill = self.fill_engine
        if fill._hook_depth == 0:
            fill.drain_destructors()
        result = AccessResult(
            tile, addr, size, is_write, engine, near_memory, latency, outcomes
        )
        if self._want_memory_access:
            self.bus.emit(
                MemoryAccess(tile, addr, size, is_write, engine, near_memory, result)
            )
        return result

    def access_latency(
        self, tile, addr, size, is_write, engine=False, apply=None, near_memory=False
    ):
        """The latency of an access -- the operation fast path.

        Equivalent to ``self.access(...).latency`` (and falls back to
        exactly that whenever a :class:`~repro.sim.events.MemoryAccess`
        subscriber needs the full result), but with no MemoryAccess
        subscriber the walk runs on pooled requests and never builds an
        :class:`~repro.sim.access.AccessResult` or outcome list copy.
        """
        if self._want_memory_access:
            return self.access(
                tile, addr, size, is_write, engine, apply, near_memory
            ).latency
        private = self.private
        shift = self._line_shift
        first = addr >> shift
        last = (addr + max(size, 1) - 1) >> shift
        req = self.checkout_request(tile, first, size, is_write, engine, near_memory)
        if engine:
            access_line = private.engine_access_line
        else:
            access_line = private.access_line
        if first == last:
            access_line(req)
            latency = req.latency
        else:
            latency = 0.0
            for line in range(first, last + 1):
                req.line = line
                access_line(req)
                if req.latency > latency:
                    latency = req.latency
                req.latency = 0.0
        req.outcomes.clear()
        self._req_pool.append(req)
        if apply is not None:
            apply()
        fill = self.fill_engine
        if fill._hook_depth == 0:
            fill.drain_destructors()
        return latency

    # ------------------------------------------------------------------
    # explicit flush (Leviathan's flush instruction, Sec. VI-B2)
    # ------------------------------------------------------------------
    def flush_range(self, region):
        """Flush every resident line of ``region`` from all caches.

        Used when a Morph is unregistered; destructors fire for morph
        lines, dirty ordinary lines are written back.
        """
        private = self.private
        shared = self.shared
        line_lo = region.base // self.line_size
        line_hi = (region.end + self.line_size - 1) // self.line_size
        for tile in range(self.config.n_tiles):
            for line in private.l2[tile].resident_in(line_lo, line_hi):
                victim = private.l2[tile].invalidate(line)
                if victim is not None:
                    private.evict_l2(tile, victim)
            for cache in (private.l1[tile], private.engine_l1[tile]):
                for line in cache.resident_in(line_lo, line_hi):
                    victim = cache.invalidate(line)
                    if victim is not None and victim.dirty and not victim.morph:
                        private.insert_l2(tile, line, dirty=True, morph=False)
                    shared.maybe_release_sharer(tile, line)
        for bank in range(self.config.n_tiles):
            for line in shared.llc[bank].resident_in(line_lo, line_hi):
                victim = shared.llc[bank].invalidate(line)
                if victim is not None:
                    shared.evict_llc(bank, victim)
        self.fill_engine.drain_destructors()
        self.stats.add("morph.flushes")

    # ------------------------------------------------------------------
    # historical entry points kept for direct component access
    # ------------------------------------------------------------------
    def _evict_llc(self, bank, victim):
        self.shared.evict_llc(bank, victim)

    def _evict_engine_l1(self, tile, victim):
        self.private.evict_engine_l1(tile, victim)

    def _drain_destructors(self):
        self.fill_engine.drain_destructors()


def _engine_l1_config(cfg):
    """Cache geometry for the engine's small coherent L1d."""
    from repro.sim.config import CacheConfig

    return CacheConfig(
        size_kb=cfg.engine.l1d_kb,
        ways=cfg.engine.l1d_ways,
        tag_latency=1,
        data_latency=1,
    )

"""The unified event bus: typed machine events and their subscribers.

Every component of the machine (hierarchy, NoC, DRAM, engines, offload,
streams) *emits* typed events on the :class:`EventBus` owned by the
machine; observability tools -- the tracer (:mod:`repro.sim.trace`),
access profiles (:class:`repro.sim.stats.AccessProfile`), live energy
metering (:class:`repro.sim.energy.EnergyMeter`) -- *subscribe* instead
of being hardwired into the hot paths.

Emission is guard-checked: components test ``bus.active`` (a plain
attribute) before constructing an event, so a machine with **zero
subscribers pays one attribute load and branch per emit point** and
never allocates an event object. Attaching any subscriber flips the
guard; events are then constructed and dispatched to the handlers
registered for their exact type.

Subscribers must not advance simulated time or mutate machine state:
the bus is an observability plane, and simulations are bit-identical
with and without subscribers attached.

Example -- count evictions per address region::

    from repro.sim.events import Eviction

    hot = range(base // 64, bound // 64)
    evictions = 0

    def on_evict(event):
        nonlocal evictions
        if event.line in hot:
            evictions += 1

    machine.events.subscribe(Eviction, on_evict)
    ... run ...
    machine.events.unsubscribe(Eviction, on_evict)
"""

from dataclasses import dataclass


class EventBus:
    """A subscriber registry dispatching typed events by exact type.

    ``active`` is True whenever at least one subscriber is registered
    (for any event type); emitters use it as the cheap guard before
    constructing an event.
    """

    __slots__ = ("_handlers", "active", "_listeners")

    def __init__(self):
        #: event type -> tuple of handlers (tuples make dispatch
        #: allocation-free and snapshot-safe against unsubscription
        #: from inside a handler).
        self._handlers = {}
        self.active = False
        #: Registry-change listeners (see :meth:`on_change`): components
        #: that cache per-event-type emit flags refresh them here.
        self._listeners = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def subscribe(self, event_type, handler):
        """Register ``handler`` to receive events of ``event_type``.

        Returns ``handler`` so callers can keep the reference needed to
        unsubscribe. Subscribing the same handler twice delivers each
        event twice.
        """
        self._handlers[event_type] = self._handlers.get(event_type, ()) + (handler,)
        self._recompute_active()
        return handler

    def unsubscribe(self, event_type, handler):
        """Remove every registration of ``handler`` for ``event_type``.

        Unsubscribing a handler that is not registered is a no-op, so
        detach paths are idempotent by construction. Comparison is by
        equality, so bound methods (a fresh object per attribute access)
        unsubscribe correctly.
        """
        remaining = tuple(
            h for h in self._handlers.get(event_type, ()) if h != handler
        )
        if remaining:
            self._handlers[event_type] = remaining
        else:
            self._handlers.pop(event_type, None)
        self._recompute_active()

    def _recompute_active(self):
        """Re-derive ``active`` from the registry across *all* event types.

        The guard must drop back to False the moment the last handler
        anywhere detaches -- otherwise every emit site keeps allocating
        events nobody receives for the rest of the machine's life. Empty
        handler tuples are never retained in ``_handlers`` (unsubscribe
        pops the key), so the truthiness of the dict is the invariant.
        """
        self.active = bool(self._handlers)
        for listener in self._listeners:
            listener(self)

    def on_change(self, listener):
        """Call ``listener(bus)`` now and after every (un)subscription.

        Hot emit sites pay one attribute load per emit when they guard on
        ``bus.active``; sites that want to skip even *constructing* events
        nobody listens for cache ``bus.wants(EventType)`` in a local flag
        and use this hook to keep the flag coherent with the registry.
        Listeners must not (un)subscribe from inside the callback.
        """
        self._listeners.append(listener)
        listener(self)
        return listener

    def wants(self, event_type):
        """True if at least one subscriber listens for ``event_type``."""
        return event_type in self._handlers

    def subscriber_count(self, event_type=None):
        """Number of registrations (for ``event_type``, or in total)."""
        if event_type is not None:
            return len(self._handlers.get(event_type, ()))
        return sum(len(handlers) for handlers in self._handlers.values())

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def emit(self, event):
        """Deliver ``event`` to the subscribers of its exact type."""
        for handler in self._handlers.get(type(event), ()):
            handler(event)

    def __repr__(self):
        return f"EventBus({self.subscriber_count()} subscribers)"


# ----------------------------------------------------------------------
# the event vocabulary
# ----------------------------------------------------------------------
@dataclass
class MemoryAccess:
    """One completed :meth:`Hierarchy.access` request (all lines).

    ``result`` is the :class:`~repro.sim.access.AccessResult` carrying
    the per-level outcome breakdown and the request's latency.
    """

    tile: int
    addr: int
    size: int
    is_write: bool
    engine: bool
    near_memory: bool
    result: object


@dataclass
class CacheAccess:
    """A lookup at one cache level (L1, L2, engine L1d, or an LLC bank).

    ``tile`` is the tile (or LLC bank) holding the cache. One event is
    emitted per ``<level>.accesses`` counter increment, so subscribers
    can reproduce the energy model's cache terms exactly.
    """

    level: str
    tile: int
    line: int
    hit: bool
    is_write: bool
    engine: bool


@dataclass
class CoherenceAction:
    """A directory action: 'upgrade', 'ping_pong', 'invalidation', 'recall'."""

    kind: str
    line: int
    bank: int
    tile: int


@dataclass
class Eviction:
    """A victim leaving a cache (capacity eviction, recall, or flush)."""

    level: str
    tile: int
    line: int
    dirty: bool
    morph: bool


@dataclass
class DramAccess:
    """One DRAM-line access at a memory controller.

    ``fifo_hit`` marks a hit in the controller's FIFO cache;
    ``dram_cycled`` is True when the DRAM itself was accessed (the
    ``dram.accesses`` counter's semantics: FIFO read hits do not cycle
    DRAM, write hits still drain to it).
    """

    controller: int
    dram_line: int
    is_write: bool
    fifo_hit: bool
    dram_cycled: bool


@dataclass
class FlitHop:
    """One NoC message; traffic cost is ``flits * hops`` flit-hops."""

    src: int
    dst: int
    payload_bytes: int
    flits: int
    hops: int


@dataclass
class MorphConstruct:
    """A data-triggered constructor handled a fill at ``level``."""

    level: str
    tile: int
    line: int


@dataclass
class MorphDestruct:
    """A data-triggered destructor was queued for an evicted morph line."""

    level: str
    tile: int
    line: int
    dirty: bool


@dataclass
class InvokeDispatched:
    """An ``invoke`` chose its executing tile (Sec. V-B1 placement).

    ``cid`` is the invoke's correlation ID, allocated once per invoke
    (stable across park/retry re-executions) and threaded through every
    event of the offload lifecycle so subscribers can stitch causal
    spans: issue -> placement -> NACK/spill/retry -> execution -> future
    fulfillment. ``owns_future`` is True when this invoke claimed the
    attached future, i.e. the eventual :class:`FutureFilled` event with
    this ``cid`` belongs to this dispatch (continuation-passing re-invokes
    carry the caller's future without owning it).
    """

    tile: int
    target: int
    action: str
    location: str
    inline: bool
    near_memory: bool
    cid: int = None
    time: float = None
    owns_future: bool = False


@dataclass
class InvokeStalled:
    """A core hit a full invoke buffer (Fig. 22's queueing effect).

    ``wait`` is the known stall in cycles when the next ACK time is
    known, or None when every slot is waiting on a NACKed engine and the
    core parks until a release wakes it (the retry re-emits
    :class:`InvokeDispatched` with the same ``cid``).
    """

    tile: int
    action: str
    cid: int = None
    time: float = None
    wait: float = None


@dataclass
class EngineTask:
    """An offloaded task arrived at an engine (accepted or NACKed).

    ``queued`` is the engine's spill-queue depth just after the arrival
    was handled (0 whenever a task context was free).
    """

    tile: int
    name: str
    accepted: bool
    cid: int = None
    time: float = None
    queued: int = 0


@dataclass
class EngineTaskStart:
    """A task acquired an engine task context and began executing.

    For NACKed tasks this is the retry acceptance, so ``time`` minus the
    NACKing :class:`EngineTask`'s ``time`` is the spill wait.
    """

    tile: int
    name: str
    cid: int = None
    time: float = None


@dataclass
class EngineTaskDone:
    """A task's action program ran to completion on its engine."""

    tile: int
    name: str
    cid: int = None
    time: float = None


@dataclass
class FutureFilled:
    """A future was filled by a near-data action (store-update sent).

    ``time`` is the store-update message's *arrival* at the waiter's
    core; ``cid`` is the correlation ID of the invoke that owns the
    future (the first invoke the future was attached to).
    """

    home_tile: int
    from_tile: int
    cid: int = None
    time: float = None


@dataclass
class StreamPush:
    """A producer pushed one entry into a stream's circular buffer.

    ``occupancy`` is the producer-visible buffer fill (entries pushed
    but not yet acknowledged by a head-pointer message) after the push.
    """

    stream: str
    index: int
    time: float = None
    occupancy: int = 0
    tile: int = None


@dataclass
class StreamPop:
    """A consumer popped one entry; ``messaged`` marks a head-pointer
    message to the producing engine (sent once per line crossed).

    ``occupancy`` is the consumer-visible buffer fill (entries produced
    but not yet popped) after the pop.
    """

    stream: str
    index: int
    messaged: bool
    time: float = None
    occupancy: int = 0
    tile: int = None


@dataclass
class StreamBlocked:
    """A stream endpoint blocked: the producer on a full circular
    buffer (``side == "producer"``) or the consumer on an empty one
    (``side == "consumer"``)."""

    stream: str
    side: str
    time: float = None


@dataclass
class FaultInjected:
    """The fault layer (:mod:`repro.sim.faults`) injected one fault.

    ``kind`` names the rule that fired (``engine-crash``,
    ``engine-stall``, ``ctx-exhaust``, ``noc-delay``, ``noc-drop``,
    ``dram-err``); ``where`` is the tile or memory controller hit.
    ``extra_cycles`` is the latency added on the victim's critical path
    (0 for pure state faults such as a crash).
    """

    kind: str
    where: int = None
    time: float = None
    extra_cycles: float = 0.0


@dataclass
class EngineFailed:
    """An engine was marked failed (fail-stop: in-flight tasks finish,
    no new work is accepted; spill-queued tasks are rerouted)."""

    tile: int
    time: float = None


@dataclass
class WatchdogFired:
    """The scheduler watchdog detected a no-progress cycle.

    Emitted just before :class:`~repro.sim.scheduler.DeadlockError` is
    raised: ``steps`` consecutive operations executed without simulated
    time advancing, with ``parked`` contexts blocked on conditions.
    """

    steps: int
    time: float = None
    parked: int = 0


@dataclass
class InvokeRetried:
    """A NACKed invoke was re-sent after its backoff (bounded-retry mode).

    ``attempt`` counts from 1 up to ``core.invoke_max_retries``;
    ``backoff`` is the wait that preceded this re-send. ``tile`` is the
    invoking core, ``target`` the engine being retried.
    """

    tile: int
    target: int
    action: str
    attempt: int
    backoff: float
    cid: int = None
    time: float = None


@dataclass
class DegradedToFallback:
    """Work fell back to a Sec. VI-C degradation path.

    ``kind`` is the path taken: ``reroute`` (DYNAMIC invoke moved to a
    healthy engine), ``on-core`` (pinned/LOCAL/REMOTE invoke executed on
    the invoking core), ``construct-on-core`` (data-triggered action run
    on the core), or ``stream-queue`` (stream collapsed to the
    message-passing thread-pair fallback). ``tile`` is the failed
    engine's tile and ``fallback`` where the work went instead.
    """

    kind: str
    tile: int = None
    fallback: int = None
    action: str = None
    cid: int = None
    time: float = None

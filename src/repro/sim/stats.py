"""Event counters and per-run statistics.

Every component of the machine increments counters on a shared
:class:`Stats` object. The energy model (:mod:`repro.sim.energy`) and the
experiment harness both read these counters; the figures in the paper are
(almost entirely) functions of them.

Two planes of observability coexist:

- the flat counters (this module's :class:`Stats`): always on, updated
  directly at the emitting site -- the fast plane;
- the event bus (:mod:`repro.sim.events`): opt-in, typed, carrying the
  per-request attribution the counters cannot express. This module's
  :class:`AccessProfile` is the bus subscriber that turns
  :class:`~repro.sim.events.MemoryAccess` events into a per-level
  outcome breakdown (how many requests terminated at the L1, how many
  were constructed by a morph, what latency each terminal level cost).
"""

from collections import Counter

from repro.sim.events import MemoryAccess


class Stats:
    """A flat bag of named counters plus a few derived views.

    Counter names follow a ``component.event`` convention, e.g.
    ``l1.hits``, ``llc.misses``, ``noc.flit_hops``, ``dram.accesses``,
    ``engine.instructions``. Components may also record *phased*
    counters (``phase/component.event``) when the workload marks
    execution phases (used by Fig. 21's per-phase DRAM breakdown).
    """

    __slots__ = ("counters", "_phase")

    def __init__(self):
        self.counters = Counter()
        self._phase = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount``.

        If a phase is active, a second, phase-qualified counter is also
        incremented so per-phase breakdowns can be reported.
        """
        self.counters[name] += amount
        if self._phase is not None:
            self.counters[f"{self._phase}/{name}"] += amount

    def set_phase(self, phase):
        """Enter a named execution phase (or ``None`` to leave)."""
        self._phase = phase

    @property
    def phase(self):
        return self._phase

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get(self, name):
        return self.counters.get(name, 0)

    def __getitem__(self, name):
        return self.counters.get(name, 0)

    def matching(self, prefix):
        """All counters whose name starts with ``prefix``, as a dict."""
        return {k: v for k, v in self.counters.items() if k.startswith(prefix)}

    def total(self, suffix):
        """Sum of all counters ending in ``.suffix`` (unphased only)."""
        return sum(
            v
            for k, v in self.counters.items()
            if "/" not in k and k.endswith("." + suffix)
        )

    # ------------------------------------------------------------------
    # convenience views used across the evaluation
    # ------------------------------------------------------------------
    @property
    def dram_accesses(self):
        return self.get("dram.accesses")

    @property
    def noc_flit_hops(self):
        return self.get("noc.flit_hops")

    @property
    def branch_mispredictions(self):
        return self.get("core.branch_mispredictions")

    @property
    def engine_instructions(self):
        return self.get("engine.instructions")

    def snapshot(self):
        """An immutable copy of the counters for later diffing."""
        return dict(self.counters)

    def diff(self, snapshot):
        """Counters accumulated since ``snapshot`` was taken."""
        out = Counter(self.counters)
        out.subtract(snapshot)
        return {k: v for k, v in out.items() if v}

    def report(self, prefixes=None):
        """A sorted, human-readable multi-line report."""
        lines = []
        for name in sorted(self.counters):
            if prefixes and not any(name.startswith(p) for p in prefixes):
                continue
            lines.append(f"{name:40s} {self.counters[name]:>14}")
        return "\n".join(lines)

    def __repr__(self):
        return f"Stats({len(self.counters)} counters)"


class AccessProfile:
    """Per-level access attribution, fed by the event bus.

    Attach to a machine before running, read the breakdown after::

        profile = AccessProfile(machine)
        ... run ...
        print(profile.summary())
        profile.detach()

    ``outcomes`` counts every ``(level, outcome)`` step across all
    requests; ``served_by`` counts requests by their *terminal* step
    (where the access was satisfied); ``latency_by_level`` sums request
    latency per terminal level, so average cost per level falls out
    directly.
    """

    def __init__(self, machine=None):
        #: Counter of (level, outcome) across every step of every request.
        self.outcomes = Counter()
        #: Counter of terminal (level, outcome) -- one per request.
        self.served_by = Counter()
        #: Requests per requesting tile.
        self.by_tile = Counter()
        #: Summed request latency keyed by terminal level.
        self.latency_by_level = Counter()
        self.requests = 0
        self._bus = None
        if machine is not None:
            self.attach(machine)

    # ------------------------------------------------------------------
    # bus wiring
    # ------------------------------------------------------------------
    def attach(self, machine):
        self._bus = machine.events
        self._bus.subscribe(MemoryAccess, self._on_access)
        return self

    def detach(self):
        if self._bus is not None:
            self._bus.unsubscribe(MemoryAccess, self._on_access)
        return self

    def _on_access(self, event):
        result = event.result
        self.requests += 1
        self.by_tile[event.tile] += 1
        self.outcomes.update(result.outcomes)
        terminal = result.served_by
        if terminal is not None:
            self.served_by[terminal] += 1
            self.latency_by_level[terminal[0]] += result.latency

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def count(self, level, outcome=None):
        """Steps recorded at ``level`` (optionally one outcome)."""
        if outcome is not None:
            return self.outcomes.get((level, outcome), 0)
        return sum(v for (lvl, _), v in self.outcomes.items() if lvl == level)

    def hit_rate(self, level):
        """hits / (hits + misses) at ``level`` (0.0 when untouched)."""
        hits = self.outcomes.get((level, "hit"), 0) + self.outcomes.get(
            (level, "snoop_hit"), 0
        )
        misses = self.outcomes.get((level, "miss"), 0) + self.outcomes.get(
            (level, "snoop_miss"), 0
        )
        total = hits + misses
        return hits / total if total else 0.0

    def mean_latency(self, level=None):
        """Mean request latency (for requests terminating at ``level``)."""
        if level is None:
            total = sum(self.latency_by_level.values())
            count = sum(self.served_by.values())
        else:
            total = self.latency_by_level.get(level, 0)
            count = sum(v for (lvl, _), v in self.served_by.items() if lvl == level)
        return total / count if count else 0.0

    def breakdown(self):
        """``{(level, outcome): count}`` over all steps, as a dict."""
        return dict(self.outcomes)

    def summary(self):
        """A sorted, human-readable per-level report."""
        lines = [f"requests {self.requests:>14}"]
        for (level, outcome), count in sorted(self.outcomes.items()):
            lines.append(f"{level + '.' + outcome:40s} {count:>14}")
        for (level, outcome), count in sorted(self.served_by.items()):
            lines.append(f"served_by {level + '.' + outcome:30s} {count:>14}")
        return "\n".join(lines)

    def __repr__(self):
        return f"AccessProfile({self.requests} requests)"

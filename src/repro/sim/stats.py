"""Event counters and per-run statistics.

Every component of the machine increments counters on a shared
:class:`Stats` object. The energy model (:mod:`repro.sim.energy`) and the
experiment harness both read these counters; the figures in the paper are
(almost entirely) functions of them.
"""

from collections import Counter


class Stats:
    """A flat bag of named counters plus a few derived views.

    Counter names follow a ``component.event`` convention, e.g.
    ``l1.hits``, ``llc.misses``, ``noc.flit_hops``, ``dram.accesses``,
    ``engine.instructions``. Components may also record *phased*
    counters (``phase/component.event``) when the workload marks
    execution phases (used by Fig. 21's per-phase DRAM breakdown).
    """

    def __init__(self):
        self.counters = Counter()
        self._phase = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount``.

        If a phase is active, a second, phase-qualified counter is also
        incremented so per-phase breakdowns can be reported.
        """
        self.counters[name] += amount
        if self._phase is not None:
            self.counters[f"{self._phase}/{name}"] += amount

    def set_phase(self, phase):
        """Enter a named execution phase (or ``None`` to leave)."""
        self._phase = phase

    @property
    def phase(self):
        return self._phase

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get(self, name):
        return self.counters.get(name, 0)

    def __getitem__(self, name):
        return self.counters.get(name, 0)

    def matching(self, prefix):
        """All counters whose name starts with ``prefix``, as a dict."""
        return {k: v for k, v in self.counters.items() if k.startswith(prefix)}

    def total(self, suffix):
        """Sum of all counters ending in ``.suffix`` (unphased only)."""
        return sum(
            v
            for k, v in self.counters.items()
            if "/" not in k and k.endswith("." + suffix)
        )

    # ------------------------------------------------------------------
    # convenience views used across the evaluation
    # ------------------------------------------------------------------
    @property
    def dram_accesses(self):
        return self.get("dram.accesses")

    @property
    def noc_flit_hops(self):
        return self.get("noc.flit_hops")

    @property
    def branch_mispredictions(self):
        return self.get("core.branch_mispredictions")

    @property
    def engine_instructions(self):
        return self.get("engine.instructions")

    def snapshot(self):
        """An immutable copy of the counters for later diffing."""
        return dict(self.counters)

    def diff(self, snapshot):
        """Counters accumulated since ``snapshot`` was taken."""
        out = Counter(self.counters)
        out.subtract(snapshot)
        return {k: v for k, v in out.items() if v}

    def report(self, prefixes=None):
        """A sorted, human-readable multi-line report."""
        lines = []
        for name in sorted(self.counters):
            if prefixes and not any(name.startswith(p) for p in prefixes):
                continue
            lines.append(f"{name:40s} {self.counters[name]:>14}")
        return "\n".join(lines)

    def __repr__(self):
        return f"Stats({len(self.counters)} counters)"

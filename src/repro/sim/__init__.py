"""Substrate: a coarse-grained, event-driven simulator of a tiled multicore.

The simulator models the machine in Table V of the paper: 16 out-of-order
cores on a mesh, private L1/L2 caches, a shared, banked, inclusive LLC with
directory coherence, four memory controllers with small FIFO caches, and a
near-data engine per tile.

Threads (and near-data actions) are Python generators that yield typed
operations (:mod:`repro.sim.ops`); the global scheduler
(:mod:`repro.sim.scheduler`) interleaves them in timestamp order and charges
latency and energy for every event.
"""

from repro.sim.config import SystemConfig
from repro.sim.system import Machine
from repro.sim.ops import (
    Load,
    Store,
    Compute,
    AtomicRMW,
    Fence,
    Branch,
)

__all__ = [
    "SystemConfig",
    "Machine",
    "Load",
    "Store",
    "Compute",
    "AtomicRMW",
    "Fence",
    "Branch",
]

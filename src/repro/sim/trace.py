"""Optional event tracing for debugging simulations.

A :class:`Tracer` wraps a machine and records a bounded log of
interesting events (memory accesses within watched ranges, morph
constructions/destructions, context switches). Tracing is strictly
opt-in and adds no cost when unused -- the hot paths never consult it.

Example::

    tracer = Tracer(machine)
    tracer.watch_range(region.base, region.end, "deltas")
    ... run ...
    print(tracer.render(limit=50))
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    detail: str

    def __str__(self):
        return f"t={self.time:12.1f}  {self.kind:<12s} {self.detail}"


class Tracer:
    """Records machine events against watched address ranges."""

    def __init__(self, machine, max_events=10_000):
        self.machine = machine
        self.max_events = max_events
        self.events = []
        self._ranges = []  # (lo, hi, label)
        self._original_access = machine.hierarchy.access
        machine.hierarchy.access = self._traced_access

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def watch_range(self, lo, hi, label):
        """Record every access whose address falls in ``[lo, hi)``."""
        self._ranges.append((lo, hi, label))
        return self

    def detach(self):
        """Stop tracing and restore the machine's access path."""
        self.machine.hierarchy.access = self._original_access

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _label_of(self, addr):
        for lo, hi, label in self._ranges:
            if lo <= addr < hi:
                return label
        return None

    def _record(self, kind, detail):
        if len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(time=self.machine.scheduler.now, kind=kind, detail=detail)
        )

    def _traced_access(
        self, tile, addr, size, is_write, engine=False, apply=None, near_memory=False
    ):
        label = self._label_of(addr)
        if label is not None:
            op = "store" if is_write else "load"
            who = "engine" if engine else "core"
            self._record(
                "access",
                f"{label}: {op} {size}B @ {addr:#x} by {who}{tile}",
            )
        return self._original_access(
            tile, addr, size, is_write, engine=engine, apply=apply, near_memory=near_memory
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.events)

    def render(self, limit=None):
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)

    def count(self, kind=None, containing=None):
        """Number of recorded events, optionally filtered."""
        total = 0
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if containing is not None and containing not in event.detail:
                continue
            total += 1
        return total

"""Optional event tracing for debugging simulations.

A :class:`Tracer` subscribes to the machine's event bus
(:class:`~repro.sim.events.EventBus`) and records a bounded log of
interesting events: memory accesses within watched address ranges and
morph constructions/destructions. Tracing is strictly opt-in and adds
no cost when unused -- with no subscriber attached the bus guard keeps
the hot paths event-free.

Because attach/detach is plain bus (un)subscription, tracers compose:
two tracers on one machine record independently, and detaching twice
(or detaching one of the two) cannot corrupt the access path -- there
is no wrapper to restore.

Example::

    tracer = Tracer(machine)
    tracer.watch_range(region.base, region.end, "deltas")
    ... run ...
    print(tracer.render(limit=50))
    tracer.detach()
"""

from dataclasses import dataclass

from repro.sim.events import MemoryAccess, MorphConstruct, MorphDestruct


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    detail: str

    def __str__(self):
        return f"t={self.time:12.1f}  {self.kind:<12s} {self.detail}"


class Tracer:
    """Records machine events against watched address ranges."""

    def __init__(self, machine, max_events=10_000):
        self.machine = machine
        self.max_events = max_events
        self.events = []
        #: Events discarded after ``max_events`` filled up. A truncated
        #: trace must say so: silently stopping reads as "nothing else
        #: happened", which is the opposite of the truth.
        self.dropped = 0
        self._ranges = []  # (lo, hi, label)
        self._bus = machine.events
        self._bus.subscribe(MemoryAccess, self._on_access)
        self._bus.subscribe(MorphConstruct, self._on_construct)
        self._bus.subscribe(MorphDestruct, self._on_destruct)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def watch_range(self, lo, hi, label):
        """Record every access whose address falls in ``[lo, hi)``."""
        self._ranges.append((lo, hi, label))
        return self

    def detach(self):
        """Stop tracing (idempotent; other subscribers are unaffected)."""
        self._bus.unsubscribe(MemoryAccess, self._on_access)
        self._bus.unsubscribe(MorphConstruct, self._on_construct)
        self._bus.unsubscribe(MorphDestruct, self._on_destruct)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _label_of(self, addr):
        for lo, hi, label in self._ranges:
            if lo <= addr < hi:
                return label
        return None

    def _record(self, kind, detail):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(time=self.machine.scheduler.now, kind=kind, detail=detail)
        )

    def _on_access(self, event):
        label = self._label_of(event.addr)
        if label is None:
            return
        op = "store" if event.is_write else "load"
        who = "engine" if event.engine else "core"
        self._record(
            "access",
            f"{label}: {op} {event.size}B @ {event.addr:#x} by {who}{event.tile}",
        )

    def _on_construct(self, event):
        addr = event.line * self.machine.config.line_size
        label = self._label_of(addr)
        if label is None:
            return
        self._record(
            "construct",
            f"{label}: {event.level} morph fill of line {event.line:#x} at tile {event.tile}",
        )

    def _on_destruct(self, event):
        addr = event.line * self.machine.config.line_size
        label = self._label_of(addr)
        if label is None:
            return
        dirty = "dirty" if event.dirty else "clean"
        self._record(
            "destruct",
            f"{label}: {event.level} morph evict of {dirty} line {event.line:#x} at tile {event.tile}",
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.events)

    def render(self, limit=None):
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more recorded)")
        if self.dropped:
            lines.append(
                f"... ({self.dropped} events dropped past max_events={self.max_events})"
            )
        return "\n".join(lines)

    def count(self, kind=None, containing=None):
        """Number of recorded events, optionally filtered."""
        total = 0
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if containing is not None and containing not in event.detail:
                continue
            total += 1
        return total

"""Addresses, address spaces, and ranges.

The simulator uses plain integer (virtual = physical) addresses. The
workloads never store real bytes at these addresses -- data values live in
ordinary Python objects -- but every address participates fully in the
timing model: cache lookups, bank mapping, coherence, DRAM-line
accounting, and Leviathan's cache<->DRAM translation all operate on them.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A contiguous address range ``[base, base + size)``."""

    base: int
    size: int

    @property
    def end(self):
        return self.base + self.size

    def contains(self, addr):
        return self.base <= addr < self.end

    def overlaps(self, other):
        return self.base < other.end and other.base < self.end

    def offset_of(self, addr):
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside region {self}")
        return addr - self.base

    def __repr__(self):
        return f"Region({self.base:#x}..{self.end:#x}, {self.size}B)"


class AddressSpace:
    """A bump allocator over a flat address space.

    The Leviathan allocator (Sec. V-A3) is pool-based and requires
    contiguous ranges in both cache-address and DRAM-address space; this
    class provides both (DRAM addresses are allocated from a disjoint
    high range so translation is observable in tests).
    """

    CACHE_BASE = 0x0001_0000
    DRAM_BASE = 0x4000_0000

    def __init__(self, line_size=64):
        self.line_size = line_size
        # Line math is on hot paths (every access computes a line); with
        # a power-of-two line size it reduces to shifts and masks.
        if line_size > 0 and (line_size & (line_size - 1)) == 0:
            self._line_shift = line_size.bit_length() - 1
            self._line_mask = line_size - 1
        else:
            self._line_shift = None
            self._line_mask = None
        self._next_cache = self.CACHE_BASE
        self._next_dram = self.DRAM_BASE

    def _bump(self, cursor, size, align):
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {align}")
        base = (cursor + align - 1) & ~(align - 1)
        return base, base + size

    def alloc(self, size, align=8):
        """Allocate ``size`` bytes of (cache-)address space."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base, self._next_cache = self._bump(self._next_cache, size, align)
        return base

    def alloc_region(self, size, align=None):
        """Allocate a line-aligned :class:`Region` of at least ``size`` bytes."""
        align = align or self.line_size
        return Region(self.alloc(size, align=align), size)

    def alloc_dram(self, size, align=8):
        """Allocate ``size`` bytes of backing-DRAM address space.

        Used by the allocator's compaction support: objects padded in the
        cache address space are packed densely in a separate DRAM range.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base, self._next_dram = self._bump(self._next_dram, size, align)
        return base

    # ------------------------------------------------------------------
    # line math
    # ------------------------------------------------------------------
    def line_of(self, addr):
        """The line number containing ``addr``."""
        if self._line_shift is not None:
            return addr >> self._line_shift
        return addr // self.line_size

    def line_base(self, addr):
        """The base address of the line containing ``addr``."""
        if self._line_mask is not None:
            return addr & ~self._line_mask
        return addr - (addr % self.line_size)

    def lines_touched(self, addr, size):
        """All line numbers touched by an access of ``size`` bytes at ``addr``."""
        first = self.line_of(addr)
        last = self.line_of(addr + max(size, 1) - 1)
        return range(first, last + 1)

"""Tile composition.

A tile bundles the per-tile components: one core, its private L1 and L2,
one bank of the shared LLC, and (when Leviathan is active) one near-data
engine. The heavy lifting lives in :mod:`repro.sim.hierarchy`; this
class provides a navigable per-tile view used by tests and diagnostics.
"""


class Tile:
    """A per-tile view over the machine's shared component arrays."""

    def __init__(self, machine, index):
        self.machine = machine
        self.index = index

    @property
    def l1(self):
        return self.machine.hierarchy.l1[self.index]

    @property
    def l2(self):
        return self.machine.hierarchy.l2[self.index]

    @property
    def llc_bank(self):
        return self.machine.hierarchy.llc[self.index]

    @property
    def engine_l1(self):
        return self.machine.hierarchy.engine_l1[self.index]

    @property
    def engine(self):
        """The Leviathan engine on this tile, or ``None`` on a baseline."""
        engines = getattr(self.machine, "engines", None)
        return engines[self.index] if engines else None

    @property
    def coords(self):
        return self.machine.hierarchy.noc.coords(self.index)

    def __repr__(self):
        return f"Tile({self.index} @ {self.coords})"

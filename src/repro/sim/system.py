"""The :class:`Machine`: one simulated multicore.

``Machine`` owns the hierarchy, the scheduler, the statistics, the
energy model, the address space, and a value store that gives workloads
*functional* memory semantics (data values keyed by address) on top of
the tag-only timing model.

A bare ``Machine`` is the paper's baseline multicore. The Leviathan
runtime (:class:`repro.core.runtime.Leviathan`) augments a machine with
engines and installs its hierarchy hooks.
"""

from repro.sim.address import AddressSpace
from repro.sim.energy import EnergyModel
from repro.sim.events import EventBus
from repro.sim.faults import notify_machine_created as notify_fault_session
from repro.sim.hierarchy import Hierarchy
from repro.sim.scheduler import make_scheduler
from repro.sim.stats import Stats
from repro.sim.telemetry.session import notify_machine_created
from repro.sim.thread import InlineContext
from repro.sim.tile import Tile

#: Generic machine-construction observers (beyond the telemetry and
#: fault sessions): each callable receives every Machine built while
#: registered. Used by the flight recorder and the heartbeat monitor;
#: the list is empty by default, so an unobserved build pays one empty
#: loop.
_machine_observers = []


def add_machine_observer(fn):
    """Call ``fn(machine)`` for every machine built from now on."""
    _machine_observers.append(fn)
    return fn


def remove_machine_observer(fn):
    """Stop observing (no-op if ``fn`` was never registered)."""
    try:
        _machine_observers.remove(fn)
    except ValueError:
        pass


class Machine:
    """One simulated tiled multicore (Table V)."""

    # Slotted: every operation's execute() loads several attributes off
    # the machine, and slot access skips the instance-dict lookup.
    __slots__ = (
        "config",
        "stats",
        "events",
        "hierarchy",
        "scheduler",
        "_core_cfg",
        "_engine_cfg",
        "address_space",
        "energy_model",
        "mem",
        "tiles",
        "engines",
        "leviathan",
        "_cid",
        "faults",
        "request_classes",
    )

    def __init__(self, config, energy_params=None):
        self.config = config
        self.stats = Stats()
        #: The unified event bus (observability plane): components emit
        #: typed events here, and tools subscribe. Created before the
        #: hierarchy so every component can cache the reference.
        self.events = EventBus()
        self.hierarchy = Hierarchy(self)
        self.scheduler = make_scheduler(self)
        # Hot-path dispatch caches: sub-config references resolved once
        # (``compute_latency`` runs once per Compute/Branch op).
        self._core_cfg = config.core
        self._engine_cfg = config.engine
        self.address_space = AddressSpace(config.line_size)
        self.energy_model = EnergyModel(
            params=energy_params, ideal_engine=config.engine.ideal
        )
        #: Functional value store: address -> Python object. Workloads
        #: and near-data actions read/write it directly; the timing model
        #: only sees the addresses.
        self.mem = {}
        self.tiles = [Tile(self, t) for t in range(config.n_tiles)]
        #: Set by the Leviathan runtime when engines are attached.
        self.engines = None
        #: The Leviathan runtime, when one is installed on this machine.
        self.leviathan = None
        #: Correlation-ID source for causal span tracing. IDs are only
        #: drawn while the event bus is active, so a subscriber-free
        #: machine pays nothing; they never influence timing, keeping
        #: runs bit-identical with and without observers.
        self._cid = 0
        #: The attached :class:`~repro.sim.faults.FaultController`, or
        #: None (the default: no fault injection, zero overhead -- emit
        #: sites guard on ``faults is None`` like ``events.active``).
        self.faults = None
        #: Request-class map for serving workloads, or None. Maps an
        #: invoke action name or stream base name to a request-class
        #: label; telemetry buckets span latencies per class under
        #: ``request.latency.<class>``. Declared via
        #: :func:`repro.sim.telemetry.requests.declare_request_classes`.
        self.request_classes = None
        # Last: hand the fully-built machine to any installed telemetry
        # or fault session (module-global checks; no-ops when inactive).
        notify_machine_created(self)
        notify_fault_session(self)
        for observer in _machine_observers:
            observer(self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def spawn(self, program, tile, name=None, is_engine=False, engine=None, at_time=None):
        """Schedule a generator program as a new context."""
        if not 0 <= tile < self.config.n_tiles:
            raise ValueError(f"tile {tile} out of range")
        return self.scheduler.spawn(
            program, tile, name=name, is_engine=is_engine, engine=engine, at_time=at_time
        )

    def run(self):
        """Run to completion; returns the final simulated time (cycles)."""
        return self.scheduler.run()

    def run_inline(self, program, tile, is_engine=True, name="inline-action"):
        """Execute a short action synchronously.

        Returns ``(latency, return_value)``. Used for data-triggered
        constructors/destructors (which execute inside a cache fill or
        eviction) and for DYNAMIC invokes that hit in the invoker's L1.
        Inline programs must not block.
        """
        ctx = InlineContext(tile, is_engine=is_engine, name=name)
        ctx.time = self.now
        latency = 0.0
        result = None
        try:
            op = next(program)
            while True:
                latency += op.execute(self, ctx)
                op = program.send(op.result)
        except StopIteration as stop:
            result = getattr(stop, "value", None)
        return latency, result

    # ------------------------------------------------------------------
    # services used by operations
    # ------------------------------------------------------------------
    @property
    def now(self):
        return self.scheduler.now

    def sim_time(self):
        """The running context's local time (falls back to global now).

        Event emitters use this for timestamps: during an operation the
        context's clock is ahead of the scheduler's global ``now``,
        which only advances when contexts are re-queued.
        """
        current = self.scheduler.current
        return current.time if current is not None else self.scheduler.now

    def next_cid(self):
        """Allocate the next correlation ID (see ``_cid`` above)."""
        self._cid += 1
        return self._cid

    def compute_latency(self, ctx, instructions):
        """Latency of ``instructions`` on the context's compute resource."""
        if instructions <= 0:
            return 0.0
        stats = self.stats
        if ctx.is_engine:
            if stats._phase is None:
                stats.counters["engine.instructions"] += instructions
            else:
                stats.add("engine.instructions", instructions)
            engine = self._engine_cfg
            if engine.ideal:
                return 0.0
            return instructions * engine.pe_latency / engine.issue_width
        if stats._phase is None:
            stats.counters["core.instructions"] += instructions
        else:
            stats.add("core.instructions", instructions)
        return instructions / self._core_cfg.ipc

    def wake_all(self, condition, value=None, at_time=None):
        return self.scheduler.wake_all(condition, value=value, at_time=at_time)

    def wake_one(self, condition, value=None, at_time=None):
        return self.scheduler.wake_one(condition, value=value, at_time=at_time)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def stall_snapshot(self, steps=None):
        """A structured (JSON-ready) dump of why the machine is stuck.

        The machine-readable twin of :meth:`describe_stall` -- the
        flight recorder embeds it in ``postmortem.json`` so a crash in a
        worker process hours ago can still be debugged field by field:
        every parked context with its awaited condition, runnable
        contexts, engine and invoke-buffer state, and (when a fault
        controller is attached) the open invoke spans.
        """
        sched = self.scheduler
        parked = sched.parked_contexts
        runnable = {}
        for ctx, time in sched.runnable_snapshot():
            if not ctx.done and ctx not in runnable:
                runnable[ctx] = time
        snapshot = {
            "t": sched.now,
            "steps_without_progress": steps,
            "running": (
                {"name": sched.current.name, "tile": sched.current.tile}
                if sched.current is not None and not sched.current.done
                else None
            ),
            "parked_total": len(parked),
            "parked": [
                {
                    "name": ctx.name,
                    "tile": ctx.tile,
                    "condition": str(ctx.parked_on),
                }
                for ctx in parked[:32]
            ],
            "runnable_total": len(runnable),
            "runnable": [
                {"name": ctx.name, "tile": ctx.tile, "t": time}
                for ctx, time in sorted(
                    runnable.items(), key=lambda item: item[0].ctid
                )[:16]
            ],
            "engines": [],
            "invoke_buffers": {},
            "open_invokes_total": 0,
            "open_invokes": [],
        }
        if self.leviathan is not None:
            snapshot["engines"] = [
                repr(engine)
                for engine in self.leviathan.engines
                if engine.busy_offload or engine.queued_tasks or engine.failed
            ]
            snapshot["invoke_buffers"] = {
                f"tile{buffer.tile}": buffer.in_flight
                for buffer in self.leviathan.invoke_buffers
                if buffer.in_flight
            }
        spans = getattr(self.faults, "spans", None)
        if spans is not None and spans.open_spans:
            open_spans = spans.open_spans
            snapshot["open_invokes_total"] = len(open_spans)
            snapshot["open_invokes"] = [repr(span) for span in open_spans[:16]]
        return snapshot

    def describe_stall(self, steps=None):
        """A human-readable dump of why the machine cannot progress.

        Used by :class:`~repro.sim.scheduler.DeadlockError`; rendered
        from the same :meth:`stall_snapshot` fields that postmortems
        persist, so the exception text and the artifact never disagree.
        """
        snap = self.stall_snapshot(steps=steps)
        header = f"at t={snap['t']:.0f}"
        if steps is not None:
            header += f" after {steps} operations without progress"
        lines = [header]

        lines.append(f"parked contexts ({snap['parked_total']}):")
        for ctx in snap["parked"]:
            lines.append(
                f"  - {ctx['name']} [tile {ctx['tile']}] waiting on {ctx['condition']}"
            )
        if snap["parked_total"] > len(snap["parked"]):
            lines.append(
                f"  ... and {snap['parked_total'] - len(snap['parked'])} more"
            )

        if snap["running"] is not None:
            lines.append(
                f"running: {snap['running']['name']} [tile {snap['running']['tile']}]"
            )
        lines.append(f"runnable contexts ({snap['runnable_total']}):")
        for ctx in snap["runnable"]:
            lines.append(f"  - {ctx['name']} [tile {ctx['tile']}] at t={ctx['t']:.0f}")

        if snap["engines"]:
            lines.append("engines: " + ", ".join(snap["engines"]))
        if snap["invoke_buffers"]:
            lines.append(
                "invoke buffers in flight: "
                + ", ".join(
                    f"{tile}={count}" for tile, count in snap["invoke_buffers"].items()
                )
            )
        if snap["open_invokes"]:
            lines.append(f"in-flight invokes ({snap['open_invokes_total']}):")
            for span in snap["open_invokes"]:
                lines.append(f"  - {span}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def energy_pj(self):
        return self.energy_model.energy_pj(self.stats)

    def seconds(self, cycles=None):
        cycles = self.scheduler.now if cycles is None else cycles
        return cycles / (self.config.core.freq_ghz * 1e9)

    def __repr__(self):
        return (
            f"Machine({self.config.n_tiles} tiles, "
            f"LLC {self.config.llc_total_kb} KB, t={self.scheduler.now:.0f})"
        )

"""Structured run logs: stdlib ``logging`` rendered as JSONL.

Every logger in the repo hangs off the ``"leviathan"`` namespace
(:func:`get_logger`), so one call to :func:`configure_run_logging`
captures the whole fleet -- pool workers, the CLI, the fault layer,
and the scheduler watchdog -- into a single append-only ``.jsonl``
file that survives worker crashes (each record is one ``write()`` of
one line, so concurrent workers appending to the same file interleave
whole records, never fragments).

Each record is one JSON object::

    {"ts": 1723190400.12, "level": "INFO", "logger": "leviathan.pool",
     "event": "run.start", "run_id": "a3f1...", "hash": "9c2e...",
     "label": "fig18/24B/leviathan", "pid": 4242}

- ``event`` is the log *message* -- a stable dotted name, grep-able
  and machine-parseable (free-text goes in extra fields);
- correlation fields (``run_id``, ``hash``, ``cid``, ...) ride along as
  ``extra={...}`` keyword fields and are merged into the record;
- a process-wide *context* (:func:`set_log_context`) injects fields
  (the sweep's ``run_id``, the worker ``pid``) into every record so
  emit sites never need to thread them through.

Nothing is written until :func:`configure_run_logging` attaches a
handler: the package logger carries a ``NullHandler``, so an
unconfigured simulation pays one disabled-logger check per (rare) log
site and produces zero output. Hot paths never log per event -- logging
is for run/fault/failure *lifecycle* records, the event bus is for
per-event observability.
"""

import json
import logging
import os
import time

ROOT_LOGGER = "leviathan"

#: The stable record-type vocabulary. Every ``event`` field written by
#: the repo comes from this set, so log consumers (dashboards, CI
#: assertions, ad-hoc ``jq`` filters) can match on exact names instead
#: of guessing. New emit sites must register their event here --
#: ``tests/test_runlog.py`` cross-checks the source tree against it.
KNOWN_EVENTS = frozenset(
    {
        # pool lifecycle (one record per run attempt)
        "run.start",
        "run.end",
        "run.error",
        # host-side supervision (PR 8)
        "run.worker_died",  # worker vanished without an outcome
        "run.retry",  # transient failure requeued with backoff
        "run.timeout",  # wall-clock deadline exceeded; worker killed
        "run.hung",  # live-phase heartbeat went stale; worker killed
        "pool.inline_unsupervised",  # jobs=1 inline path cannot enforce deadlines
        "sweep.interrupted",  # SIGINT/SIGTERM graceful drain
        "cache.quarantined",  # corrupt cache entry moved aside
        "heartbeats.swept",  # ghost heartbeat files removed
        # sweep aggregation
        "sweep.dashboard",
        # simulator-side lifecycle
        "faults.armed",
        "faults.injected",
        "flightrec.postmortem",
        "scheduler.watchdog_fired",
        "scheduler.deadlock",
    }
)

#: LogRecord attributes that are bookkeeping, not user fields. Anything
#: else found on a record (i.e. passed via ``extra=``) is exported.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)

#: Process-wide fields merged into every record (run_id etc.).
_context = {}

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name=None):
    """The logger for one subsystem: ``get_logger("pool")``."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def set_log_context(**fields):
    """Merge ``fields`` into every subsequent record (None deletes)."""
    for key, value in fields.items():
        if value is None:
            _context.pop(key, None)
        else:
            _context[key] = value
    return dict(_context)


def clear_log_context():
    _context.clear()


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class JsonlFormatter(logging.Formatter):
    """One JSON object per record; extra fields and context merged in."""

    def format(self, record):
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
            "pid": record.process,
        }
        for key, value in _context.items():
            payload.setdefault(key, _json_safe(value))
        for key, value in record.__dict__.items():
            if key not in _RESERVED and key not in payload:
                payload[key] = _json_safe(value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc_message"] = str(record.exc_info[1])
        return json.dumps(payload, sort_keys=True)


class RunLogHandle:
    """The configured handler plus enough state to tear it down."""

    def __init__(self, handler, path=None):
        self.handler = handler
        self.path = path

    def close(self):
        logger = logging.getLogger(ROOT_LOGGER)
        logger.removeHandler(self.handler)
        self.handler.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def configure_run_logging(path=None, stream=None, level=logging.INFO, run_id=None):
    """Attach a JSONL handler to the ``leviathan`` logger tree.

    ``path`` appends to a JSONL file (parent directories are created);
    ``stream`` writes to a file-like object instead (tests); ``run_id``
    is convenience for ``set_log_context(run_id=...)``. Returns a
    :class:`RunLogHandle`; call ``close()`` (or use as a context
    manager) to detach. Calling it again for the same path in the same
    process returns a fresh handle for a second handler -- callers own
    deduplication (the pool worker keeps one per process).
    """
    if path is not None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        handler = logging.FileHandler(path, encoding="utf-8", delay=True)
    else:
        handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonlFormatter())
    handler.setLevel(level)
    logger = logging.getLogger(ROOT_LOGGER)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    logger.addHandler(handler)
    if run_id is not None:
        set_log_context(run_id=run_id)
    return RunLogHandle(handler, path=path)


def ensure_run_logging(path, level=logging.INFO, run_id=None):
    """Like :func:`configure_run_logging`, but idempotent per file.

    Fork-started pool workers inherit the parent's handler (same file
    descriptor); attaching another would double every record. Returns
    None when a handler for ``path`` is already attached in this
    process.
    """
    target = os.path.abspath(path)
    for handler in logging.getLogger(ROOT_LOGGER).handlers:
        if getattr(handler, "baseFilename", None) == target:
            if run_id is not None:
                set_log_context(run_id=run_id)
            return None
    return configure_run_logging(path, level=level, run_id=run_id)


def new_run_id():
    """A short unique id correlating one sweep's records (not seeded:
    log identity is operational, never part of simulated results)."""
    return f"{int(time.time() * 1000):x}-{os.getpid():x}"

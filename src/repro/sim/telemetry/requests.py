"""Per-request-class tail-latency tracking for serving workloads.

The span tracker already times every offload (``invoke:<action>``
spans, dispatch to future fill) and every stream entry
(``<stream>[<index>]`` spans, push to pop). Serving workloads want
those same durations bucketed by *request class* -- GET vs PUT vs
SCAN -- so tail percentiles (p50/p95/p99) can be reported per class.

Two pieces:

- :func:`declare_request_classes` tags a machine with a map from span
  key (invoke action name, or stream base name) to request-class
  label. :meth:`Telemetry._span_closed
  <repro.sim.telemetry.session.Telemetry>` consults it and observes
  ``request.latency.<class>`` histograms alongside the generic ones.
- :class:`RequestLatencyProbe` is the workload-side helper: it
  declares the classes *and* attaches its own :class:`Telemetry`
  instance, so percentiles are available even when no
  ``--telemetry-out`` session is installed. Like all telemetry it is a
  pure observer -- simulated results are bit-identical with and
  without it -- but serving workloads attach it unconditionally so
  correlation-ID draws (which only happen while the bus has
  subscribers) are identical across configurations.

Usage::

    probe = RequestLatencyProbe(machine, {"get": "get", "put": "put"})
    ... build and run the machine ...
    probe.finalize()
    result.stats.update(probe.stat_fields())   # request.get.p95, ...
"""

from repro.sim.telemetry.critpath import COMPONENTS
from repro.sim.telemetry.session import Telemetry

#: Snapshot fields copied into flat per-class stats, in report order.
PERCENTILE_FIELDS = ("count", "p50", "p95", "p99", "mean", "max")

#: Per-component fields copied into flat attribution stats.
ATTRIBUTION_FIELDS = ("total", "p50", "p95", "p99")


def declare_request_classes(machine, classes):
    """Tag ``machine`` so telemetry buckets span latencies per class.

    ``classes`` maps a span key to a request-class label. Keys are
    matched against the invoke *action name* (an ``invoke:lookup``
    span matches key ``"lookup"``) and the stream *base name* (a
    ``kv-scan3[7]`` span matches key ``"kv-scan3"``). Several keys may
    share one class -- e.g. every per-client scan stream mapping to
    ``"scan"``. Returns the machine for chaining.
    """
    machine.request_classes = dict(classes)
    return machine


class RequestLatencyProbe:
    """Attach per-request-class latency histograms to one machine.

    Wraps a dedicated :class:`Telemetry` instance (probe-labelled so a
    saved artifact directory is distinguishable) and declares the
    request classes on the machine. After ``machine.run()``, call
    :meth:`finalize` once, then read :meth:`percentiles` or merge
    :meth:`stat_fields` into a ``RunResult``'s stats.
    """

    def __init__(self, machine, classes, max_spans=200_000):
        self.machine = machine
        self.classes = dict(classes)
        declare_request_classes(machine, self.classes)
        self.telemetry = Telemetry(
            machine, label="request-probe", max_spans=max_spans
        )

    def finalize(self):
        """Close out unfinished spans (call once, after the run)."""
        self.telemetry.finalize()
        return self

    def detach(self):
        """Stop observing the bus (recorded data stays readable)."""
        self.telemetry.detach()
        return self

    def percentiles(self):
        """Latency snapshot per request class.

        Returns ``{class: snapshot}`` where snapshot is the
        :class:`~repro.sim.telemetry.metrics.LogHistogram` snapshot
        dict (count/sum/min/max/mean/p50/p95/p99/buckets). Classes
        with no completed requests map to ``None``.
        """
        out = {}
        for cls in sorted(set(self.classes.values())):
            out[cls] = self.telemetry.metrics.value(f"request.latency.{cls}")
        return out

    def attribution(self):
        """The probe's latency-attribution rollup (finalize first)."""
        return self.telemetry.attribution

    def stat_fields(self):
        """Flat JSON-safe floats for ``RunResult.stats``.

        One ``request.<class>.<field>`` entry per class and percentile
        field, e.g. ``request.get.p99``, plus the latency-attribution
        waterfall: ``attribution.<class>.<component>.<field>`` for every
        taxonomy component (see
        :data:`~repro.sim.telemetry.critpath.COMPONENTS`) and
        ``attribution.<class>.{count,cycles,coverage}``. Classes that
        saw no requests report zeros, so reruns always produce the same
        key set.
        """
        fields = {}
        for cls, snap in self.percentiles().items():
            for field in PERCENTILE_FIELDS:
                value = 0.0 if snap is None else float(snap[field])
                fields[f"request.{cls}.{field}"] = value
        attribution = self.telemetry.attribution.snapshot()
        for cls in sorted(set(self.classes.values())):
            entry = attribution.get(cls)
            base = f"attribution.{cls}"
            fields[f"{base}.count"] = float(entry["count"]) if entry else 0.0
            fields[f"{base}.cycles"] = float(entry["cycles"]) if entry else 0.0
            fields[f"{base}.coverage"] = (
                float(entry["coverage"]) if entry else 1.0
            )
            for component in COMPONENTS:
                comp = entry["components"][component] if entry else None
                for field in ATTRIBUTION_FIELDS:
                    fields[f"{base}.{component}.{field}"] = (
                        float(comp[field]) if comp else 0.0
                    )
        return fields

"""Causal span tracing over the event bus.

A *span* is one causally-linked episode of machine activity with a
start and an end in simulated time, plus nested *phases*. Two families
are stitched here from the correlation-ID'd events:

- **invoke spans** (``cat == "invoke"``): the full task-offload
  lifecycle keyed by the invoke's ``cid`` --

  ===============  =====================================================
  phase            bounded by
  ===============  =====================================================
  ``buffer-wait``  :class:`InvokeStalled` -> known ACK, or the retry's
                   re-:class:`InvokeDispatched` after a park
  ``nack-wait``    NACKing :class:`EngineTask` -> :class:`EngineTaskStart`
                   (the spill/retry wait for a free task context)
  ``execute``      :class:`EngineTaskStart` -> :class:`EngineTaskDone`
  ``future-wait``  :class:`EngineTaskDone` -> :class:`FutureFilled`
                   (store-update in flight back to the waiting core)
  ===============  =====================================================

  A span owning a future closes at the fill's arrival; chained
  continuation-passing invokes close at their own ``EngineTaskDone``.

- **stream spans** (``cat == "stream"``): one span per entry from
  :class:`StreamPush` to the consumer's :class:`StreamPop`, plus
  ``stream-wait`` spans covering producer/consumer blocking episodes
  (:class:`StreamBlocked` -> the push/pop that makes progress again).

The tracker is pure observation: it never touches machine state, and
all information arrives on the bus, so attaching it cannot change
simulated results.
"""


class Span:
    """One closed-or-open interval of correlated activity."""

    __slots__ = ("name", "cat", "cid", "pid", "start", "end", "args", "phases")

    def __init__(self, name, cat, cid, pid, start, args=None):
        self.name = name
        self.cat = cat
        self.cid = cid
        #: Tile the span is anchored to (Perfetto process).
        self.pid = pid
        self.start = start
        self.end = None
        self.args = args or {}
        #: ``[name, start, end]`` triples; ``end is None`` while open.
        self.phases = []

    # ------------------------------------------------------------------
    def open_phase(self, name, start):
        self.phases.append([name, start, None])

    def close_phase(self, name, end):
        """Close the most recent open phase called ``name`` (no-op if none)."""
        for phase in reversed(self.phases):
            if phase[0] == name and phase[2] is None:
                phase[2] = max(end, phase[1])
                return phase
        return None

    def close_all_phases(self, end):
        for phase in self.phases:
            if phase[2] is None:
                phase[2] = max(end, phase[1])

    def phase_cycles(self, name):
        """Total closed-phase cycles under ``name``."""
        return sum(p[2] - p[1] for p in self.phases if p[0] == name and p[2] is not None)

    @property
    def duration(self):
        return (self.end - self.start) if self.end is not None else None

    @property
    def well_formed(self):
        """Closed, non-negative, and every phase nested within the span."""
        if self.end is None or self.end < self.start:
            return False
        for name, start, end in self.phases:
            if end is None or end < start:
                return False
            if start < self.start or end > self.end:
                return False
        return True

    def __repr__(self):
        state = f"[{self.start:.0f},{self.end:.0f}]" if self.end is not None else f"[{self.start:.0f},...)"
        return f"Span({self.cat}:{self.name} cid={self.cid} {state})"


class SpanTracker:
    """Builds spans from correlation-ID'd bus events.

    ``max_spans`` bounds memory: once the total span count reaches the
    cap, new spans are counted in ``dropped`` instead of recorded
    (mirroring the tracer's visible-truncation contract). ``on_close``
    is an optional callback fired with each span as it closes, which is
    how the metrics layer derives latency histograms without a second
    pass.
    """

    def __init__(self, max_spans=200_000, on_close=None):
        self.max_spans = max_spans
        self.on_close = on_close
        self.finished = []
        self.dropped = 0
        self.unclosed = 0
        #: Lifecycle events whose cid was *never* begun: an end without
        #: a beginning (subscriber attached mid-run, or a torn event
        #: stream). Post-close chatter for a span that did exist -- e.g.
        #: a chained invoke's FutureFilled after its own close -- is not
        #: an orphan.
        self.orphans = 0
        self._open = {}
        #: Every cid ever begun (including spans dropped at the cap, so
        #: their later lifecycle events do not read as orphans).
        self._seen = set()
        #: (stream, side) -> open stream-wait span.
        self._blocked = {}
        self._wait_seq = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _begin(self, span):
        self._seen.add(span.cid)
        if len(self.finished) + len(self._open) >= self.max_spans:
            self.dropped += 1
            return None
        self._open[span.cid] = span
        return span

    def _lookup(self, cid):
        """The open span for ``cid``, counting never-begun cids as orphans."""
        span = self._open.get(cid)
        if span is None and cid not in self._seen:
            self.orphans += 1
        return span

    def is_open(self, cid):
        return cid in self._open

    def _close(self, span, end):
        span.end = max(end, span.start)
        span.close_all_phases(span.end)
        self._open.pop(span.cid, None)
        self.finished.append(span)
        if self.on_close is not None:
            self.on_close(span)

    @property
    def open_spans(self):
        return list(self._open.values())

    def __len__(self):
        return len(self.finished)

    # ------------------------------------------------------------------
    # invoke lifecycle
    # ------------------------------------------------------------------
    def invoke_dispatched(self, ev):
        if ev.cid is None:
            return
        span = self._open.get(ev.cid)
        if span is None:
            self._begin(
                Span(
                    f"invoke:{ev.action}",
                    "invoke",
                    ev.cid,
                    ev.tile,
                    ev.time,
                    args={
                        "location": ev.location,
                        "target": ev.target,
                        "inline": ev.inline,
                        "near_memory": ev.near_memory,
                        "owns_future": ev.owns_future,
                        "nacks": 0,
                        "redispatches": 0,
                    },
                )
            )
            return
        # A park/retry re-execution of the same invoke: the buffer wait
        # ends now, and placement may have changed in the meantime.
        span.close_phase("buffer-wait", ev.time)
        span.args["redispatches"] += 1
        span.args["target"] = ev.target

    def invoke_stalled(self, ev):
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.open_phase("buffer-wait", ev.time)
        if ev.wait is not None:
            # The stall is known up front (next ACK time): close it.
            span.close_phase("buffer-wait", ev.time + ev.wait)

    def engine_task(self, ev):
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        if not ev.accepted:
            span.args["nacks"] += 1
            # Bounded-retry mode NACKs the same invoke repeatedly; keep
            # one open nack-wait phase covering the whole retry episode.
            for phase in span.phases:
                if phase[0] == "nack-wait" and phase[2] is None:
                    return
            span.open_phase("nack-wait", ev.time)

    def engine_start(self, ev):
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.close_phase("nack-wait", ev.time)
        span.open_phase("execute", ev.time)

    def engine_done(self, ev):
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.close_phase("execute", ev.time)
        fill_time = span.args.get("future_filled_at")
        if span.args.get("owns_future") and fill_time is None:
            # The store-update has not landed yet: record completion and
            # keep the span open for FutureFilled.
            span.args["done_at"] = ev.time
            return
        end = ev.time if fill_time is None else max(ev.time, fill_time)
        if fill_time is not None and fill_time > ev.time:
            span.open_phase("future-wait", ev.time)
            span.close_phase("future-wait", fill_time)
        self._close(span, end)

    def future_filled(self, ev):
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.args["future_filled_at"] = ev.time
        done_at = span.args.pop("done_at", None)
        if done_at is None:
            # Fill arrived before this invoke's own EngineTaskDone
            # (inline runs, or a chained hop filled the future): let
            # engine_done close the span at max(done, fill).
            return
        if ev.time > done_at:
            span.open_phase("future-wait", done_at)
            span.close_phase("future-wait", ev.time)
        self._close(span, max(done_at, ev.time))

    # ------------------------------------------------------------------
    # resilience lifecycle (bounded retry + Sec. VI-C degradation)
    # ------------------------------------------------------------------
    def invoke_retried(self, ev):
        """Annotate the invoke's span with its retry history."""
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.args["retries"] = ev.attempt
        span.args["last_backoff"] = ev.backoff

    def degraded(self, ev):
        """Mark the invoke's span with the degradation path it took."""
        if ev.cid is None:
            return
        span = self._lookup(ev.cid)
        if span is None:
            return
        span.args["degraded"] = ev.kind
        if ev.fallback is not None:
            span.args["fallback"] = ev.fallback

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def stream_push(self, ev):
        # Data became available: any consumer-side wait for this stream
        # ends here.
        waiting = self._blocked.pop((ev.stream, "consumer"), None)
        if waiting is not None:
            self._close(waiting, ev.time)
        cid = ("stream", ev.stream, ev.index)
        if cid not in self._open:
            self._begin(
                Span(
                    f"{ev.stream}[{ev.index}]",
                    "stream",
                    cid,
                    ev.tile,
                    ev.time,
                    args={"occupancy_at_push": ev.occupancy},
                )
            )

    def stream_pop(self, ev):
        if ev.messaged:
            # The head-pointer message frees producer space.
            waiting = self._blocked.pop((ev.stream, "producer"), None)
            if waiting is not None:
                self._close(waiting, ev.time)
        span = self._lookup(("stream", ev.stream, ev.index))
        if span is not None:
            span.args["messaged"] = ev.messaged
            self._close(span, ev.time)

    def stream_blocked(self, ev):
        key = (ev.stream, ev.side)
        span = self._blocked.get(key)
        if span is not None:
            span.args["wakeups"] += 1
            return
        self._wait_seq += 1
        span = Span(
            f"stream-wait:{ev.stream}:{ev.side}",
            "stream-wait",
            ("stream-wait", ev.stream, ev.side, self._wait_seq),
            None,
            ev.time,
            args={"side": ev.side, "wakeups": 0},
        )
        if self._begin(span) is not None:
            self._blocked[key] = span

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def finalize(self, now):
        """Close every still-open span at ``now``; returns the count.

        Spans closed here are flagged ``unclosed`` in their args -- a
        trace with any of them marks a run whose lifecycle events were
        incomplete (or a subscriber attached mid-run).
        """
        leftover = list(self._open.values())
        for span in leftover:
            span.args["unclosed"] = True
            self._close(span, now)
        self._blocked.clear()
        self.unclosed += len(leftover)
        return len(leftover)

"""The metrics registry: counters, gauges, log histograms, time series.

Four metric kinds cover what the evaluation needs:

- :class:`Counter` -- a monotonically increasing total (NACKs, flits);
- :class:`Gauge` -- a point-in-time value (final cycle count);
- :class:`LogHistogram` -- a log2-bucketed distribution (invoke
  latency: values span four orders of magnitude, so linear buckets
  would be useless);
- :class:`TimeSeries` -- windowed sampling over simulated time (queue
  depths, buffer occupancy, NoC utilization, per-bank LLC pressure).
  Samples are aggregated per fixed-width window of simulated cycles, so
  memory stays bounded no matter how many events a run emits.

Metrics are created (and found again) through a
:class:`MetricsRegistry`, keyed by name plus an optional label dict
(``registry.counter("llc.accesses", labels={"bank": 3})``), mirroring
the Prometheus data model. The registry exports a JSON snapshot
(:meth:`MetricsRegistry.snapshot`) and a Prometheus-style text dump
(:meth:`MetricsRegistry.render_prometheus`).
"""

import json
import math
import re


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value with its last-update timestamp."""

    __slots__ = ("value", "updated_at")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self.updated_at = None

    def set(self, value, t=None):
        self.value = value
        self.updated_at = t

    def inc(self, amount=1, t=None):
        self.value += amount
        self.updated_at = t

    def snapshot(self):
        return self.value


class LogHistogram:
    """A histogram with log2-scaled buckets.

    Bucket ``b`` counts observations in ``(2**(b-1), 2**b]``; values
    below 1 land in bucket 0. Percentiles are estimated as the upper
    bound of the bucket containing the requested rank -- coarse, but
    the buckets are what make the histogram O(64) no matter how skewed
    the latency distribution is.
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")
    kind = "histogram"

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    @staticmethod
    def bucket_of(value):
        if value <= 1:
            return 0
        return int(math.ceil(math.log2(value)))

    @staticmethod
    def bucket_bound(bucket):
        return float(2**bucket)

    def observe(self, value):
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        b = self.bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p):
        """Upper-bound estimate of the ``p``-th percentile (0 < p <= 100)."""
        if not self.count:
            return 0.0
        rank = math.ceil(self.count * p / 100.0)
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= rank:
                return self.bucket_bound(b)
        return self.bucket_bound(max(self.buckets))

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {str(self.bucket_bound(b)): n for b, n in sorted(self.buckets.items())},
        }


class TimeSeries:
    """Windowed time-series sampling over simulated cycles.

    ``record(t, value)`` folds the sample into the window containing
    ``t``; each window keeps count/sum/min/max/last. ``mode`` selects
    the representative value a window exports (for counter tracks in
    the Perfetto trace): ``"last"`` suits occupancy/queue-depth series,
    ``"sum"`` suits per-window traffic (NoC flit-hops, bank accesses),
    ``"mean"`` suits rates.
    """

    __slots__ = ("window", "mode", "bins")
    kind = "timeseries"

    def __init__(self, window=1024, mode="last"):
        if window <= 0:
            raise ValueError("window must be positive")
        if mode not in ("last", "sum", "mean", "max"):
            raise ValueError(f"unknown timeseries mode {mode!r}")
        self.window = window
        self.mode = mode
        #: window index -> [count, sum, min, max, last]
        self.bins = {}

    def record(self, t, value=1.0):
        idx = int(t // self.window)
        bin_ = self.bins.get(idx)
        if bin_ is None:
            self.bins[idx] = [1, value, value, value, value]
            return
        bin_[0] += 1
        bin_[1] += value
        if value < bin_[2]:
            bin_[2] = value
        if value > bin_[3]:
            bin_[3] = value
        bin_[4] = value

    def samples(self):
        """Per-window aggregates, sorted by window start time."""
        out = []
        for idx in sorted(self.bins):
            count, total, mn, mx, last = self.bins[idx]
            mean = total / count
            value = {"last": last, "sum": total, "mean": mean, "max": mx}[self.mode]
            out.append(
                {
                    "t0": idx * self.window,
                    "count": count,
                    "sum": total,
                    "mean": mean,
                    "min": mn,
                    "max": mx,
                    "last": last,
                    "value": value,
                }
            )
        return out

    def snapshot(self):
        return {"window": self.window, "mode": self.mode, "samples": self.samples()}


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": LogHistogram,
    "timeseries": TimeSeries,
}


def _label_key(labels):
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(label_key):
    if not label_key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in label_key) + "}"


def _escape_label_value(value):
    """Escape one label value per the Prometheus exposition format:
    backslash, double quote, and newline must be ``\\\\``, ``\\"``, and
    ``\\n`` -- otherwise a value like ``link="a\"b"`` tears the line."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text):
    """HELP text allows any UTF-8 but must escape backslash and newline."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_label_name(name):
    """Sanitize one label *name* per the exposition format.

    Label names must match ``[a-zA-Z_][a-zA-Z0-9_]*`` -- unlike label
    values they cannot be escaped, only rewritten.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_suffix(label_key):
    """Like :func:`_label_suffix`, but exposition-format escaped.

    JSON snapshot keys keep the raw names and values (they live inside
    JSON strings, which have their own escaping); only the text
    exposition needs sanitized label names and escaped values."""
    if not label_key:
        return ""
    return (
        "{"
        + ",".join(
            f'{_prom_label_name(k)}="{_escape_label_value(v)}"'
            for k, v in label_key
        )
        + "}"
    )


def _prom_name(name, kind=None):
    """The exposition-format metric name for ``name``.

    Invalid characters are rewritten to ``_``; counters get the
    conventional ``_total`` suffix exactly once (a metric already named
    ``*_total`` -- possibly only after sanitization -- is not
    double-suffixed).
    """
    prom = "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if kind == "counter" and not prom.endswith("_total"):
        prom += "_total"
    return prom


class MetricsRegistry:
    """Name + labels -> metric instance, with get-or-create semantics.

    Asking for an existing metric with a different kind raises; asking
    with the same kind returns the existing instance, so emit sites
    never need to pre-declare what they increment.
    """

    def __init__(self, default_window=1024):
        self.default_window = default_window
        #: name -> {"kind": str, "help": str, "series": {label_key: metric}}
        self._families = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def _get(self, kind, name, labels, help="", **kwargs):
        family = self._families.get(name)
        if family is None:
            family = {"kind": kind, "help": help, "series": {}}
            self._families[name] = family
        elif family["kind"] != kind:
            raise TypeError(
                f"metric {name!r} already registered as {family['kind']}, "
                f"requested as {kind}"
            )
        key = _label_key(labels)
        metric = family["series"].get(key)
        if metric is None:
            metric = family["series"][key] = _KINDS[kind](**kwargs)
        return metric

    def counter(self, name, labels=None, help=""):
        return self._get("counter", name, labels, help)

    def gauge(self, name, labels=None, help=""):
        return self._get("gauge", name, labels, help)

    def histogram(self, name, labels=None, help=""):
        return self._get("histogram", name, labels, help)

    def timeseries(self, name, labels=None, help="", window=None, mode="last"):
        return self._get(
            "timeseries",
            name,
            labels,
            help,
            window=window or self.default_window,
            mode=mode,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def names(self):
        return sorted(self._families)

    def kind_of(self, name):
        return self._families[name]["kind"]

    def series(self, name):
        """``{label_key: metric}`` for one family (empty if unknown)."""
        family = self._families.get(name)
        return dict(family["series"]) if family else {}

    def value(self, name, labels=None):
        """Convenience: the snapshot of one metric (None if absent)."""
        family = self._families.get(name)
        if family is None:
            return None
        metric = family["series"].get(_label_key(labels))
        return metric.snapshot() if metric is not None else None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self, meta=None):
        """A JSON-serializable snapshot of every metric, by kind."""
        out = {"meta": dict(meta or {}), "counters": {}, "gauges": {},
               "histograms": {}, "timeseries": {}}
        section = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "timeseries": "timeseries",
        }
        for name in sorted(self._families):
            family = self._families[name]
            bucket = out[section[family["kind"]]]
            for key in sorted(family["series"]):
                bucket[name + _label_suffix(key)] = family["series"][key].snapshot()
        return out

    def to_json(self, meta=None, indent=2):
        return json.dumps(self.snapshot(meta=meta), indent=indent, sort_keys=True)

    def render_prometheus(self, meta=None):
        """A Prometheus-style text exposition of the registry.

        Counters render as ``_total``, histograms as cumulative
        ``_bucket{le=...}`` series plus ``_sum``/``_count``; time series
        render their final window's representative value as a gauge
        (Prometheus has no native history type).
        """
        lines = []
        for name in sorted(self._families):
            family = self._families[name]
            kind = family["kind"]
            # The HELP/TYPE lines must carry the same name the samples
            # use, so the counter suffix is applied before either.
            prom = _prom_name(name, kind)
            if family["help"]:
                lines.append(f"# HELP {prom} {_escape_help(family['help'])}")
            if kind == "counter":
                lines.append(f"# TYPE {prom} counter")
                for key in sorted(family["series"]):
                    value = family["series"][key].value
                    lines.append(f"{prom}{_prom_suffix(key)} {value}")
            elif kind == "gauge":
                lines.append(f"# TYPE {prom} gauge")
                for key in sorted(family["series"]):
                    value = family["series"][key].value
                    lines.append(f"{prom}{_prom_suffix(key)} {value}")
            elif kind == "histogram":
                lines.append(f"# TYPE {prom} histogram")
                for key in sorted(family["series"]):
                    hist = family["series"][key]
                    cumulative = 0
                    for b in sorted(hist.buckets):
                        cumulative += hist.buckets[b]
                        le = hist.bucket_bound(b)
                        labels = dict(key) | {"le": le}
                        lines.append(
                            f"{prom}_bucket{_prom_suffix(_label_key(labels))} {cumulative}"
                        )
                    labels = dict(key) | {"le": "+Inf"}
                    lines.append(
                        f"{prom}_bucket{_prom_suffix(_label_key(labels))} {hist.count}"
                    )
                    lines.append(f"{prom}_sum{_prom_suffix(key)} {hist.sum}")
                    lines.append(f"{prom}_count{_prom_suffix(key)} {hist.count}")
            elif kind == "timeseries":
                lines.append(f"# TYPE {prom} gauge")
                for key in sorted(family["series"]):
                    samples = family["series"][key].samples()
                    value = samples[-1]["value"] if samples else 0
                    lines.append(f"{prom}{_prom_suffix(key)} {value}")
        if meta:
            for k in sorted(meta):
                lines.append(f'# META {k} {_escape_help(meta[k])}')
        return "\n".join(lines) + "\n"

    def __repr__(self):
        n = sum(len(f["series"]) for f in self._families.values())
        return f"MetricsRegistry({len(self._families)} families, {n} series)"

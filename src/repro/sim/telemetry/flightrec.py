"""The flight recorder: a bounded ring of recent events + postmortems.

A :class:`FlightRecorder` subscribes one handler to every event type in
the :mod:`repro.sim.events` vocabulary and keeps the **last N events**
in a ring buffer (a ``deque(maxlen=N)``), so the cost of being attached
is one append per event and memory stays bounded no matter how long the
run is. Detached, nothing subscribes, the bus guard stays cold, and the
simulation is bit-identical -- the same contract every telemetry
subscriber honors.

Its purpose is the *postmortem*: when a run dies -- a
:class:`~repro.sim.scheduler.DeadlockError`, an unsurvivable fault
plan, a worker crash -- :meth:`FlightRecorder.postmortem` drains the
ring into a machine-readable dict combining

- the last N events (type + fields, JSON-safe),
- the structured stall state
  (:meth:`~repro.sim.system.Machine.stall_snapshot`, preferring the
  snapshot captured at raise time on the :class:`DeadlockError`),
- a stats-counter snapshot, and
- the fault controller's report when a plan was armed,

which :meth:`save_postmortem` writes as ``postmortem.json``. The
experiment pool arms a :class:`FlightRecorderSession` in every worker
when ``--flight-recorder`` is set, so a crash that happened in a
subprocess hours into a sweep still leaves structured evidence behind.
"""

import dataclasses
import json
import os

from repro.sim import events as _events
from repro.sim.telemetry.log import get_logger

_log = get_logger("flightrec")

#: Postmortem payload layout version.
POSTMORTEM_SCHEMA = 1

#: Default ring capacity (events kept per machine).
DEFAULT_CAPACITY = 256


def event_vocabulary():
    """Every event dataclass the bus can carry, sorted by name."""
    types = [
        obj
        for obj in vars(_events).values()
        if isinstance(obj, type) and dataclasses.is_dataclass(obj)
    ]
    return sorted(types, key=lambda t: t.__name__)


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class FlightRecorder:
    """Record the last ``capacity`` events of one machine."""

    def __init__(self, machine, capacity=DEFAULT_CAPACITY, label=None):
        from collections import deque

        self.machine = machine
        self.label = label
        self.capacity = int(capacity)
        self.ring = deque(maxlen=self.capacity)
        self.events_seen = 0
        self._types = tuple(event_vocabulary())
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    # bus wiring
    # ------------------------------------------------------------------
    def attach(self):
        if not self._attached:
            for event_type in self._types:
                self.machine.events.subscribe(event_type, self._record)
            self._attached = True
        return self

    def detach(self):
        """Stop recording (idempotent; the ring stays readable)."""
        if self._attached:
            for event_type in self._types:
                self.machine.events.unsubscribe(event_type, self._record)
            self._attached = False
        return self

    def _record(self, event):
        self.events_seen += 1
        self.ring.append(event)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def recent_events(self):
        """The ring as JSON-safe dicts, oldest first."""
        out = []
        for event in self.ring:
            entry = {"type": type(event).__name__}
            for field in dataclasses.fields(event):
                entry[field.name] = _json_safe(getattr(event, field.name))
            out.append(entry)
        return out

    def postmortem(self, reason=None, error=None):
        """The machine-readable crash report for this machine.

        ``reason`` overrides the classification derived from ``error``
        (a :class:`~repro.sim.scheduler.DeadlockError` carries its own
        ``kind``/``snapshot``; anything else is reported by type).
        """
        snapshot = None
        if error is not None:
            snapshot = getattr(error, "snapshot", None)
            if reason is None:
                reason = getattr(error, "kind", None) or type(error).__name__
        if snapshot is None:
            snapshot = self.machine.stall_snapshot()
        faults = self.machine.faults
        return {
            "schema": POSTMORTEM_SCHEMA,
            "kind": "leviathan-postmortem",
            "reason": reason or "requested",
            "label": self.label,
            "error": (
                {"type": type(error).__name__, "message": str(error)}
                if error is not None
                else None
            ),
            "sim_time": self.machine.scheduler.now,
            "ring_capacity": self.capacity,
            "events_seen": self.events_seen,
            "events": self.recent_events(),
            "stall": snapshot,
            "stats": {
                key: value
                for key, value in sorted(self.machine.stats.counters.items())
            },
            "fault_report": faults.report() if faults is not None else None,
        }

    def save_postmortem(self, outdir, reason=None, error=None):
        """Write ``postmortem.json`` into ``outdir``; returns the path."""
        os.makedirs(outdir, exist_ok=True)
        path = os.path.join(outdir, "postmortem.json")
        payload = self.postmortem(reason=reason, error=error)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        _log.info(
            "flightrec.postmortem",
            extra={
                "path": path,
                "reason": payload["reason"],
                "events": len(payload["events"]),
            },
        )
        return path

    def __repr__(self):
        return (
            f"FlightRecorder({len(self.ring)}/{self.capacity} events, "
            f"{self.events_seen} seen)"
        )


# ----------------------------------------------------------------------
# the process-wide session (what --flight-recorder installs)
# ----------------------------------------------------------------------
_session = None


def active_session():
    return _session


class FlightRecorderSession:
    """Attach a flight recorder to every machine built while installed."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = int(capacity) if capacity else DEFAULT_CAPACITY
        self.recorders = []

    # -- hook management ------------------------------------------------
    def install(self):
        # Imported lazily: system.py imports this package's siblings, so
        # a module-level import would be order-sensitive.
        from repro.sim.system import add_machine_observer

        global _session
        if _session is not None and _session is not self:
            raise RuntimeError("another FlightRecorderSession is already installed")
        if _session is None:
            add_machine_observer(self.observe)
        _session = self
        return self

    def uninstall(self):
        from repro.sim.system import remove_machine_observer

        global _session
        if _session is self:
            remove_machine_observer(self.observe)
            _session = None
        return self

    def __enter__(self):
        return self.install()

    def __exit__(self, *exc):
        self.uninstall()
        return False

    # -- collection -----------------------------------------------------
    def observe(self, machine, label=None):
        recorder = FlightRecorder(
            machine,
            capacity=self.capacity,
            label=label or f"machine-{len(self.recorders):02d}",
        )
        self.recorders.append(recorder)
        return recorder

    def detach(self):
        for recorder in self.recorders:
            recorder.detach()
        return self

    def reset(self):
        self.detach()
        self.recorders = []
        return self

    # -- artifacts ------------------------------------------------------
    def postmortem(self, reason=None, error=None):
        """One payload covering every recorded machine."""
        return {
            "schema": POSTMORTEM_SCHEMA,
            "kind": "leviathan-postmortem",
            "reason": (
                reason
                or (getattr(error, "kind", None) or type(error).__name__
                    if error is not None else "requested")
            ),
            "error": (
                {"type": type(error).__name__, "message": str(error)}
                if error is not None
                else None
            ),
            "machines": [
                recorder.postmortem(reason=reason, error=error)
                for recorder in self.recorders
            ],
        }

    def save_postmortem(self, outdir, reason=None, error=None):
        """Write a combined ``postmortem.json``; returns the path (or
        None when no machine was recorded -- nothing to report)."""
        if not self.recorders:
            return None
        os.makedirs(outdir, exist_ok=True)
        path = os.path.join(outdir, "postmortem.json")
        with open(path, "w") as handle:
            json.dump(
                self.postmortem(reason=reason, error=error),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        return path

"""The telemetry facade: attach, collect, save.

:class:`Telemetry` subscribes one machine's event bus to a
:class:`~repro.sim.telemetry.metrics.MetricsRegistry` and a
:class:`~repro.sim.telemetry.spans.SpanTracker`, and knows how to write
the three artifacts a run produces:

- ``trace.json``  -- the Perfetto/Chrome trace (spans + counter tracks);
- ``metrics.json`` -- the JSON metrics snapshot;
- ``metrics.prom`` -- the Prometheus-style text dump.

:class:`TelemetrySession` scales that to whole experiment runs: while
*installed*, every :class:`~repro.sim.system.Machine` constructed
anywhere in the process gets a ``Telemetry`` attached automatically
(the construction hook is a single module-global check, so the
uninstalled cost is one ``is None`` test per machine, and zero per
event). ``session.save(outdir)`` then writes one artifact directory
per machine. This is what the experiment runner's ``--telemetry-out``
flag drives.

Telemetry is an observer: it subscribes to the bus and reads machine
state, but never advances time or mutates anything, so simulated
results are bit-identical with and without it attached.
"""

import json
import os

from repro.sim.events import (
    CacheAccess,
    DegradedToFallback,
    DramAccess,
    EngineFailed,
    EngineTask,
    EngineTaskDone,
    EngineTaskStart,
    FaultInjected,
    FlitHop,
    FutureFilled,
    InvokeDispatched,
    InvokeRetried,
    InvokeStalled,
    MemoryAccess,
    StreamBlocked,
    StreamPop,
    StreamPush,
    WatchdogFired,
)
from repro.sim.telemetry.critpath import (
    AccessCostModel,
    AttributionRollup,
    critical_path_flows,
    span_class,
)
from repro.sim.telemetry.metrics import MetricsRegistry
from repro.sim.telemetry.perfetto import chrome_trace, write_chrome_trace
from repro.sim.telemetry.spans import SpanTracker


class Telemetry:
    """Metrics + spans for one machine, fed by its event bus."""

    def __init__(self, machine, label=None, window=1024, max_spans=200_000):
        self.machine = machine
        self.label = label
        self.metrics = MetricsRegistry(default_window=window)
        self.spans = SpanTracker(max_spans=max_spans, on_close=self._span_closed)
        #: Per-request latency attribution (see critpath.COMPONENTS).
        self.attribution = AttributionRollup()
        #: cid -> accumulated [cache, noc, dram] memory cycles, stashed
        #: onto the invoke span's args at close time.
        self._mem = {}
        self._cost_model = None
        self._finalized = False
        self._attached = False
        self._handlers = (
            (InvokeDispatched, self._on_invoke_dispatched),
            (InvokeStalled, self._on_invoke_stalled),
            (EngineTask, self._on_engine_task),
            (EngineTaskStart, self._on_engine_start),
            (EngineTaskDone, self._on_engine_done),
            (FutureFilled, self._on_future_filled),
            (StreamPush, self._on_stream_push),
            (StreamPop, self._on_stream_pop),
            (StreamBlocked, self._on_stream_blocked),
            (CacheAccess, self._on_cache_access),
            (FlitHop, self._on_flit_hop),
            (DramAccess, self._on_dram_access),
            (MemoryAccess, self._on_memory_access),
            (FaultInjected, self._on_fault_injected),
            (EngineFailed, self._on_engine_failed),
            (InvokeRetried, self._on_invoke_retried),
            (DegradedToFallback, self._on_degraded),
            (WatchdogFired, self._on_watchdog_fired),
        )
        self.attach()

    # ------------------------------------------------------------------
    # bus wiring
    # ------------------------------------------------------------------
    def attach(self):
        if not self._attached:
            for event_type, handler in self._handlers:
                self.machine.events.subscribe(event_type, handler)
            self._attached = True
        return self

    def detach(self):
        """Stop observing (idempotent; recorded data stays readable)."""
        if self._attached:
            for event_type, handler in self._handlers:
                self.machine.events.unsubscribe(event_type, handler)
            self._attached = False
        return self

    # ------------------------------------------------------------------
    # handlers: offload lifecycle
    # ------------------------------------------------------------------
    def _on_invoke_dispatched(self, ev):
        self.metrics.counter(
            "invoke.dispatched", labels={"location": ev.location}
        ).inc()
        if ev.inline:
            self.metrics.counter("invoke.inline").inc()
        runtime = self.machine.leviathan
        if runtime is not None:
            buffer = runtime.invoke_buffers[ev.tile]
            self.metrics.timeseries(
                "invoke_buffer.occupancy",
                labels={"tile": ev.tile},
                help="in-flight (un-ACKed) invokes per core buffer",
            ).record(ev.time, buffer.in_flight)
        self.spans.invoke_dispatched(ev)

    def _on_invoke_stalled(self, ev):
        self.metrics.counter("invoke.stall_events").inc()
        if ev.wait is not None:
            self.metrics.histogram(
                "invoke.buffer_wait", help="cycles stalled on a full invoke buffer"
            ).observe(ev.wait)
        self.spans.invoke_stalled(ev)

    def _on_engine_task(self, ev):
        outcome = "accepted" if ev.accepted else "nacked"
        self.metrics.counter("engine.arrivals", labels={"outcome": outcome}).inc()
        engines = self.machine.engines
        if engines is not None:
            engine = engines[ev.tile]
            t = ev.time if ev.time is not None else self.machine.now
            self.metrics.timeseries(
                "engine.task_contexts",
                labels={"tile": ev.tile},
                help="busy offload task contexts + spill-queued tasks",
            ).record(t, engine.busy_offload + engine.queued_tasks)
        self.spans.engine_task(ev)

    def _on_engine_start(self, ev):
        self.spans.engine_start(ev)

    def _on_engine_done(self, ev):
        self.spans.engine_done(ev)

    def _on_future_filled(self, ev):
        self.metrics.counter("future.fills").inc()
        self.spans.future_filled(ev)

    def _span_closed(self, span):
        if span.cat == "invoke":
            mem = self._mem.pop(span.cid, None)
            if mem is not None:
                span.args["mem_cycles"] = {
                    "cache": mem[0],
                    "noc": mem[1],
                    "dram": mem[2],
                }
            self.metrics.histogram(
                "invoke.latency",
                help="invoke issue to completion (incl. future fill), cycles",
            ).observe(span.duration)
            for phase, metric in (
                ("execute", "invoke.execute_cycles"),
                ("nack-wait", "invoke.nack_wait"),
                ("buffer-wait", "invoke.buffer_wait_observed"),
                ("future-wait", "invoke.future_wait"),
            ):
                cycles = span.phase_cycles(phase)
                if cycles:
                    self.metrics.histogram(metric).observe(cycles)
            if span.args.get("nacks"):
                self.metrics.counter("invoke.nacked_spans").inc()
            self._observe_request(span.name.partition(":")[2], span.duration)
        elif span.cat == "stream":
            stream = span.name.split("[", 1)[0]
            self.metrics.histogram(
                "stream.entry_latency",
                labels={"stream": stream},
                help="push to pop, cycles",
            ).observe(span.duration)
            self._observe_request(stream, span.duration)
        elif span.cat == "stream-wait":
            self.metrics.histogram(
                "stream.block_cycles", labels={"side": span.args.get("side", "?")}
            ).observe(span.duration)
        if span.cat in ("invoke", "stream"):
            # Stamp the resolved class onto the span so offline
            # attribution (explain over trace.json) lands every span in
            # the same bucket the live rollup used.
            span.args["request_class"] = span_class(
                span, self.machine.request_classes
            )
            self.attribution.observe_span(span)

    def _observe_request(self, key, duration):
        """Bucket a closed span into its request-class latency histogram.

        Serving workloads declare ``machine.request_classes`` -- a map
        from invoke action name / stream base name to request class (see
        :mod:`repro.sim.telemetry.requests`). Machines that never
        declare one (every non-serving workload) skip this entirely.
        """
        classes = self.machine.request_classes
        if not classes:
            return
        cls = classes.get(key)
        if cls is None:
            return
        self.metrics.histogram(
            f"request.latency.{cls}",
            help="request issue to completion per request class, cycles",
        ).observe(duration)

    # ------------------------------------------------------------------
    # handlers: resilience (fault injection, retries, degradation)
    # ------------------------------------------------------------------
    def _on_fault_injected(self, ev):
        self.metrics.counter("faults.injected", labels={"kind": ev.kind}).inc()
        if ev.extra_cycles:
            self.metrics.histogram(
                "faults.extra_cycles",
                labels={"kind": ev.kind},
                help="latency added on the victim path per injection",
            ).observe(ev.extra_cycles)

    def _on_engine_failed(self, ev):
        self.metrics.counter("faults.engine_failures").inc()

    def _on_invoke_retried(self, ev):
        self.metrics.counter("invoke.retries_observed").inc()
        self.metrics.histogram(
            "invoke.retry_backoff", help="backoff cycles before each re-send"
        ).observe(ev.backoff)
        self.spans.invoke_retried(ev)

    def _on_degraded(self, ev):
        self.metrics.counter("faults.degraded", labels={"kind": ev.kind}).inc()
        self.spans.degraded(ev)

    def _on_watchdog_fired(self, ev):
        self.metrics.counter("watchdog.fired").inc()
        self.metrics.gauge("watchdog.parked_at_fire").set(ev.parked)

    # ------------------------------------------------------------------
    # handlers: streaming
    # ------------------------------------------------------------------
    def _on_stream_push(self, ev):
        self.metrics.counter("stream.pushes", labels={"stream": ev.stream}).inc()
        if ev.time is not None:
            self.metrics.timeseries(
                "stream.occupancy",
                labels={"stream": ev.stream},
                help="circular-buffer entries outstanding",
            ).record(ev.time, ev.occupancy)
        self.spans.stream_push(ev)

    def _on_stream_pop(self, ev):
        self.metrics.counter("stream.pops", labels={"stream": ev.stream}).inc()
        if ev.time is not None:
            self.metrics.timeseries(
                "stream.occupancy", labels={"stream": ev.stream}
            ).record(ev.time, ev.occupancy)
        self.spans.stream_pop(ev)

    def _on_stream_blocked(self, ev):
        self.metrics.counter(
            "stream.blocked", labels={"stream": ev.stream, "side": ev.side}
        ).inc()
        self.spans.stream_blocked(ev)

    # ------------------------------------------------------------------
    # handlers: fabric pressure
    # ------------------------------------------------------------------
    def _on_cache_access(self, ev):
        if ev.level != "llc":
            return
        self.metrics.counter("llc.bank_accesses", labels={"bank": ev.tile}).inc()
        if not ev.hit:
            self.metrics.counter("llc.bank_misses", labels={"bank": ev.tile}).inc()
        self.metrics.timeseries(
            "llc.bank_pressure",
            labels={"bank": ev.tile},
            mode="sum",
            help="LLC bank lookups per window",
        ).record(self.machine.sim_time(), 1)

    def _on_flit_hop(self, ev):
        flit_hops = ev.flits * ev.hops
        self.metrics.counter("noc.flits").inc(ev.flits)
        self.metrics.counter("noc.flit_hops").inc(flit_hops)
        t = self.machine.sim_time()
        self.metrics.timeseries(
            "noc.utilization", mode="sum", help="flit-hops per window"
        ).record(t, flit_hops)
        if ev.hops:
            noc = self.machine.hierarchy.noc
            for src, dst in self._xy_links(noc, ev.src, ev.dst):
                self.metrics.counter(
                    "noc.link_flits", labels={"link": f"{src}>{dst}"}
                ).inc(ev.flits)

    @staticmethod
    def _xy_links(noc, src, dst):
        """The directed (tile, tile) links an XY-routed message crosses."""
        x, y = noc.coords(src)
        dx, dy = noc.coords(dst)
        at = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = y * noc.width + x
            yield at, nxt
            at = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = y * noc.width + x
            yield at, nxt
            at = nxt

    def _on_dram_access(self, ev):
        self.metrics.counter("dram.accesses").inc()
        if ev.fifo_hit:
            self.metrics.counter("dram.fifo_hits").inc()

    def _on_memory_access(self, ev):
        who = "engine" if ev.engine else "core"
        self.metrics.histogram(
            "mem.request_latency", labels={"by": who}
        ).observe(ev.result.latency)
        # Attribute the access to the invoke executing it: engine task
        # contexts carry their invoke's cid, and the scheduler's current
        # context is exactly who issued this access. The decomposition
        # accumulates per cid and lands on the span at close time.
        current = self.machine.scheduler.current
        cid = getattr(current, "cid", None) if current is not None else None
        if cid is None or not self.spans.is_open(cid):
            return
        if self._cost_model is None:
            self._cost_model = AccessCostModel(self.machine)
        cache, noc, dram = self._cost_model.decompose(ev.result)
        acc = self._mem.get(cid)
        if acc is None:
            self._mem[cid] = [cache, noc, dram]
        else:
            acc[0] += cache
            acc[1] += noc
            acc[2] += dram

    # ------------------------------------------------------------------
    # teardown and artifacts
    # ------------------------------------------------------------------
    def finalize(self):
        """Close open spans and record run-level gauges (idempotent)."""
        if self._finalized:
            return self
        self._finalized = True
        now = self.machine.scheduler.now
        self.spans.finalize(now)
        self.metrics.gauge("machine.cycles").set(now)
        self.metrics.gauge("spans.finished").set(len(self.spans.finished))
        self.metrics.counter("spans.unclosed").inc(self.spans.unclosed)
        self.metrics.counter("spans.dropped").inc(self.spans.dropped)
        self.metrics.counter("spans.orphans").inc(self.spans.orphans)
        if self.attribution:
            self.metrics.gauge(
                "attribution.coverage",
                help="fraction of request cycles a named component explains",
            ).set(self.attribution.coverage())
        return self

    def meta(self):
        return {
            "label": self.label,
            "n_tiles": self.machine.config.n_tiles,
            "cycles": self.machine.scheduler.now,
            "spans": len(self.spans.finished),
            "spans_unclosed": self.spans.unclosed,
            "spans_dropped": self.spans.dropped,
            "spans_orphaned": self.spans.orphans,
        }

    def trace(self):
        """The Chrome-trace dict for this run (finalizes first)."""
        self.finalize()
        return chrome_trace(
            self.spans.finished,
            metrics=self.metrics,
            meta=self.meta(),
            extra_events=critical_path_flows(self.spans.finished),
        )

    def attribution_report(self):
        """The JSON-safe ``latency_attribution`` block (finalizes first)."""
        self.finalize()
        return {
            "meta": self.meta(),
            "coverage": self.attribution.coverage(),
            "classes": self.attribution.snapshot(),
        }

    def save(self, outdir):
        """Write trace.json / metrics.json / metrics.prom / attribution.json."""
        self.finalize()
        os.makedirs(outdir, exist_ok=True)
        meta = self.meta()
        write_chrome_trace(
            os.path.join(outdir, "trace.json"),
            self.spans.finished,
            metrics=self.metrics,
            meta=meta,
            extra_events=critical_path_flows(self.spans.finished),
        )
        with open(os.path.join(outdir, "metrics.json"), "w") as handle:
            handle.write(self.metrics.to_json(meta=meta))
        with open(os.path.join(outdir, "metrics.prom"), "w") as handle:
            handle.write(self.metrics.render_prometheus(meta=meta))
        with open(os.path.join(outdir, "attribution.json"), "w") as handle:
            json.dump(self.attribution_report(), handle, indent=2, sort_keys=True)
        return outdir

    def summary(self):
        """A short human-readable digest of the run's telemetry."""
        self.finalize()
        lines = [
            f"cycles {self.machine.scheduler.now:.0f}  spans {len(self.spans.finished)}"
            f"  unclosed {self.spans.unclosed}  dropped {self.spans.dropped}"
        ]
        latency = self.metrics.value("invoke.latency")
        if latency and latency["count"]:
            lines.append(
                f"invoke.latency: n={latency['count']} mean={latency['mean']:.0f}"
                f" p50<={latency['p50']:.0f} p95<={latency['p95']:.0f}"
                f" max={latency['max']:.0f}"
            )
        for name in ("invoke.execute_cycles", "invoke.nack_wait", "stream.entry_latency"):
            for key, hist in sorted(self.metrics.series(name).items()):
                if hist.count:
                    label = name + ("" if not key else str(dict(key)))
                    lines.append(
                        f"{label}: n={hist.count} mean={hist.mean:.0f} max={hist.max:.0f}"
                    )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the process-wide session (what --telemetry-out installs)
# ----------------------------------------------------------------------
_session = None


def notify_machine_created(machine):
    """Called by ``Machine.__init__``; no-op unless a session is installed."""
    if _session is not None:
        _session.observe(machine)


def active_session():
    return _session


class TelemetrySession:
    """Attach telemetry to every machine built while installed."""

    def __init__(self, window=1024, max_spans=200_000):
        self.window = window
        self.max_spans = max_spans
        self.telemetries = []

    # -- hook management ------------------------------------------------
    def install(self):
        global _session
        if _session is not None and _session is not self:
            raise RuntimeError("another TelemetrySession is already installed")
        _session = self
        return self

    def uninstall(self):
        global _session
        if _session is self:
            _session = None
        return self

    def __enter__(self):
        return self.install()

    def __exit__(self, *exc):
        self.uninstall()
        return False

    # -- collection -----------------------------------------------------
    def observe(self, machine, label=None):
        telemetry = Telemetry(
            machine,
            label=label or f"machine-{len(self.telemetries):02d}",
            window=self.window,
            max_spans=self.max_spans,
        )
        self.telemetries.append(telemetry)
        return telemetry

    def detach(self):
        for telemetry in self.telemetries:
            telemetry.detach()
        return self

    def reset(self):
        """Detach and forget every collected machine."""
        self.detach()
        self.telemetries = []
        return self

    # -- artifacts ------------------------------------------------------
    def save(self, outdir):
        """One artifact directory per observed machine; returns the paths."""
        os.makedirs(outdir, exist_ok=True)
        paths = []
        index = []
        for telemetry in self.telemetries:
            sub = os.path.join(outdir, telemetry.label)
            telemetry.save(sub)
            paths.append(sub)
            meta = telemetry.meta()
            index.append(
                f"{telemetry.label}: cycles={meta['cycles']:.0f} "
                f"spans={meta['spans']} unclosed={meta['spans_unclosed']}"
            )
        with open(os.path.join(outdir, "summary.txt"), "w") as handle:
            handle.write("\n".join(index) + "\n")
        return paths

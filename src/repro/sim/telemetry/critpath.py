"""Critical-path extraction and latency attribution.

Every closed request span (invoke or stream) already carries its causal
skeleton: the phase intervals stitched by
:class:`~repro.sim.telemetry.spans.SpanTracker` bound where the
request's sim-time went. This module turns that skeleton into an
*exact* attribution -- every cycle of the span's end-to-end latency is
assigned to exactly one component of the taxonomy:

==================  ====================================================
component           meaning
==================  ====================================================
``dispatch_queue``  core-side queueing on a full invoke buffer
                    (``buffer-wait`` phase)
``nack_retry``      engine task-context contention: NACK/spill/retry
                    wait (``nack-wait`` phase)
``noc_transit``     on-chip network cycles: dispatch transit to the
                    engine plus the NoC share of memory accesses
``cache_walk``      SRAM lookups down the cache hierarchy (L1/L2/LLC
                    tag and hit latencies)
``dram_service``    memory-controller queueing + service + DRAM latency
``engine_execute``  execute-phase cycles not spent in the memory
                    hierarchy (the action's own compute)
``future_wait``     completion store-update in flight back to the
                    waiting core (``future-wait`` phase)
``stream_wait``     stream-entry residence (push to pop) and
                    producer/consumer blocking episodes
``unattributed``    critical-path cycles no component explains --
                    the honesty bucket behind the coverage metric
==================  ====================================================

The partition is exact by construction: estimated sub-components are
scaled to fit their measured envelope and the final element of every
split is computed by subtraction, so ``sum(components) == duration``
bit-for-bit up to float addition order. Attribution is pure over
span-shaped data: the same function runs online (live
:class:`~repro.sim.telemetry.spans.Span` objects at close time) and
offline (spans rebuilt from a ``trace.json`` via
:func:`spans_from_trace`), which is what keeps ``leviathan explain``
on a run directory bit-identical with the in-process rollup.
"""

import math

from repro.sim.telemetry.metrics import LogHistogram

#: The attribution taxonomy, in waterfall display order.
COMPONENTS = (
    "dispatch_queue",
    "nack_retry",
    "noc_transit",
    "cache_walk",
    "dram_service",
    "engine_execute",
    "future_wait",
    "stream_wait",
    "unattributed",
)

#: Components that count toward coverage (everything but the residue).
ATTRIBUTED = tuple(c for c in COMPONENTS if c != "unattributed")

#: Payload sizes used by the access-path estimates (hierarchy constants).
_CTRL_BYTES = 8
_DATA_BYTES = 64


def _fit_exact(parts, total):
    """Scale non-negative ``parts`` to sum *exactly* to ``total``.

    The float residue of the scale goes to the largest part, so the
    returned list fsums to ``total`` and no element goes negative.
    """
    est = math.fsum(parts)
    if est <= 0.0 or total <= 0.0:
        return [0.0] * len(parts)
    scale = total / est
    fitted = [p * scale for p in parts]
    largest = max(range(len(fitted)), key=lambda i: fitted[i])
    fitted[largest] += total - math.fsum(fitted)
    return fitted


class AccessCostModel:
    """Splits one access-path latency into (cache, noc, dram) cycles.

    The hierarchy reports a single ``latency`` per access plus the
    per-level outcome trail; this model re-prices each trail step from
    the machine's own timing constants, then scales the estimates so
    they sum exactly to the measured latency (the measurement is ground
    truth; the estimates only apportion it).
    """

    def __init__(self, machine):
        hier = machine.hierarchy
        priv = hier.private
        shared = hier.shared
        noc = hier.noc
        mc = hier.mem.controllers[0]
        dram = float(mc._latency + mc._service)
        # Distance is unknown per access (the trail has no bank/MC
        # tile), so NoC sends are priced at the mesh's average XY hop
        # count; the scale-to-fit normalization absorbs the error.
        n = noc.n_tiles
        avg_hops = min(
            int(round(sum(map(sum, noc._hops)) / float(n * n))),
            len(noc._hop_latency) - 1,
        )
        ctrl = self._send(noc, avg_hops, _CTRL_BYTES)
        data = self._send(noc, avg_hops, _DATA_BYTES)
        l2_hit = float(priv._l2_hit)
        llc_hit = float(shared._llc_hit)
        #: (level, outcome) -> (cache, noc, dram) per-step estimate.
        self.table = {
            ("l1", "hit"): (float(priv._l1_hit), 0.0, 0.0),
            ("l1", "miss"): (float(priv._l1_tag), 0.0, 0.0),
            ("l2", "hit"): (l2_hit, 0.0, 0.0),
            ("l2", "miss"): (float(priv._l2_tag), 0.0, 0.0),
            ("l2", "snoop_hit"): (l2_hit, 0.0, 0.0),
            ("l2", "snoop_miss"): (0.0, 0.0, 0.0),
            ("engine_l1", "hit"): (2.0, 0.0, 0.0),
            ("engine_l1", "miss"): (1.0, 0.0, 0.0),
            ("engine_l1", "bypass"): (1.0, 0.0, 0.0),
            ("llc", "hit"): (llc_hit, ctrl + data, 0.0),
            ("llc", "miss"): (float(shared._llc_tag), ctrl, 0.0),
            ("llc", "construct"): (llc_hit, 0.0, 0.0),
            ("llc", "bypass"): (llc_hit, ctrl + data, 0.0),
            ("dram", "fill"): (0.0, ctrl + data, dram),
            # Near-memory engines read DRAM at the controller: no NoC.
            ("dram", "direct"): (0.0, 0.0, dram),
        }

    @staticmethod
    def _send(noc, hops, payload_bytes):
        flits = noc.config.flits(payload_bytes)
        if hops:
            return float(noc._hop_latency[hops] + (flits - 1))
        return float(noc._hop_latency[0])

    def decompose(self, result):
        """Exact (cache, noc, dram) split of one ``AccessResult``."""
        cache = noc = dram = 0.0
        table = self.table
        for step in result.outcomes:
            est = table.get(step)
            if est is None:
                # Unknown step (future outcome kinds): price as one
                # SRAM lookup so it lands in cache_walk, not nowhere.
                cache += 1.0
                continue
            cache += est[0]
            noc += est[1]
            dram += est[2]
        latency = float(result.latency)
        fitted = _fit_exact((cache, noc, dram), latency)
        if latency > 0.0 and not any(fitted):
            # Zero-estimate trail (pure constructs): it is all SRAM work.
            return (latency, 0.0, 0.0)
        return tuple(fitted)


def span_class(span, request_classes=None):
    """The rollup key for one span.

    Serving workloads declare request classes; anything undeclared
    falls back to the span's action/stream name so macro figures
    (fig18 etc.) still get a per-action waterfall.
    """
    declared = span.args.get("request_class")
    if declared is not None:
        return declared
    if span.cat == "invoke":
        key = span.name.partition(":")[2]
    elif span.cat == "stream":
        key = span.name.split("[", 1)[0]
    else:
        key = span.name
    if request_classes:
        return request_classes.get(key, key)
    return key


def attribute_span(span):
    """Exact partition of one closed span's duration over COMPONENTS.

    Invariant: ``sum(returned.values()) == span.duration`` (up to float
    addition order) and every value is non-negative. ``unattributed``
    holds whatever the phase skeleton could not explain.
    """
    comps = dict.fromkeys(COMPONENTS, 0.0)
    duration = span.duration
    if duration is None or duration <= 0.0:
        return comps
    if span.cat in ("stream", "stream-wait"):
        comps["stream_wait"] = duration
        return comps
    if span.cat != "invoke":
        comps["unattributed"] = duration
        return comps

    dispatch = span.phase_cycles("buffer-wait")
    nack = span.phase_cycles("nack-wait")
    future = span.phase_cycles("future-wait")
    execute = span.phase_cycles("execute")

    # Memory decomposition accumulated at access time (exact already);
    # clamp-to-fit guards against accesses charged outside the execute
    # envelope (overlapping retries).
    mem = span.args.get("mem_cycles") or {}
    mem_parts = [
        float(mem.get("cache", 0.0)),
        float(mem.get("noc", 0.0)),
        float(mem.get("dram", 0.0)),
    ]
    mem_total = math.fsum(mem_parts)
    if execute <= 0.0:
        mem_parts = [0.0, 0.0, 0.0]
        mem_total = 0.0
    elif mem_total > execute:
        mem_parts = _fit_exact(mem_parts, execute)
        mem_total = execute
    cache, mem_noc, dram = mem_parts
    engine = execute - mem_total

    # The stretch between issue and the first execute start that no
    # wait phase covers is the dispatch transit: router + wire to the
    # engine tile (plus accept bookkeeping). Anything uncovered after
    # execution starts has no causal explanation and stays residue.
    covered = math.fsum((dispatch, nack, execute, future))
    gap = duration - covered
    transit = 0.0
    first_exec = min(
        (p[1] for p in span.phases if p[0] == "execute"), default=None
    )
    if first_exec is not None and gap > 0.0:
        pre = (first_exec - span.start) - (dispatch + nack)
        transit = min(gap, max(pre, 0.0))

    parts = {
        "dispatch_queue": dispatch,
        "nack_retry": nack,
        "noc_transit": mem_noc + transit,
        "cache_walk": cache,
        "dram_service": dram,
        "engine_execute": engine,
        "future_wait": future,
    }
    attributed = math.fsum(parts.values())
    if attributed > duration:
        keys = list(parts)
        parts = dict(zip(keys, _fit_exact([parts[k] for k in keys], duration)))
        comps.update(parts)
        comps["unattributed"] = 0.0
        return comps
    comps.update(parts)
    comps["unattributed"] = duration - attributed
    return comps


class AttributionRollup:
    """Per-request-class accumulation of span attributions.

    Feeds both the live telemetry (``latency_attribution`` block in
    metrics / RunResult.stats) and the offline ``leviathan explain``
    report; the two agree bit-for-bit because both run
    :func:`attribute_span` over the same span data.
    """

    def __init__(self):
        #: class -> accumulation state.
        self._classes = {}

    def _entry(self, cls):
        entry = self._classes.get(cls)
        if entry is None:
            entry = self._classes[cls] = {
                "count": 0,
                "cycles": 0.0,
                "unattributed": 0.0,
                "latency": LogHistogram(),
                "totals": dict.fromkeys(COMPONENTS, 0.0),
                "hists": {c: LogHistogram() for c in COMPONENTS},
            }
        return entry

    def observe(self, cls, comps, duration):
        entry = self._entry(cls)
        entry["count"] += 1
        entry["cycles"] += duration
        entry["unattributed"] += comps.get("unattributed", 0.0)
        entry["latency"].observe(duration)
        totals = entry["totals"]
        hists = entry["hists"]
        for name, value in comps.items():
            totals[name] += value
            if value > 0.0:
                hists[name].observe(value)

    def observe_span(self, span, request_classes=None):
        comps = attribute_span(span)
        self.observe(
            span_class(span, request_classes), comps, span.duration or 0.0
        )
        return comps

    def __bool__(self):
        return bool(self._classes)

    @property
    def classes(self):
        return sorted(self._classes)

    def coverage(self, cls=None):
        """Fraction of request cycles a named component explains."""
        if cls is None:
            cycles = sum(e["cycles"] for e in self._classes.values())
            residue = sum(e["unattributed"] for e in self._classes.values())
        else:
            entry = self._classes[cls]
            cycles, residue = entry["cycles"], entry["unattributed"]
        if cycles <= 0.0:
            return 1.0
        return 1.0 - residue / cycles

    def snapshot(self):
        """The JSON-safe ``latency_attribution`` block."""
        out = {}
        for cls in sorted(self._classes):
            entry = self._classes[cls]
            comps = {}
            for name in COMPONENTS:
                # The full histogram snapshot (incl. buckets) rides
                # along so sweep dashboards can merge percentiles
                # across machines the same way latency histograms do.
                comps[name] = dict(
                    entry["hists"][name].snapshot(),
                    total=entry["totals"][name],
                    share=(
                        entry["totals"][name] / entry["cycles"]
                        if entry["cycles"]
                        else 0.0
                    ),
                )
            out[cls] = {
                "count": entry["count"],
                "cycles": entry["cycles"],
                "coverage": self.coverage(cls),
                "latency": entry["latency"].snapshot(),
                "components": comps,
            }
        return out

    def stat_fields(self, prefix="attribution"):
        """Flat float fields for merging into ``RunResult.stats``."""
        fields = {}
        for cls, entry in self.snapshot().items():
            base = f"{prefix}.{cls}"
            fields[f"{base}.count"] = float(entry["count"])
            fields[f"{base}.cycles"] = float(entry["cycles"])
            fields[f"{base}.coverage"] = float(entry["coverage"])
            for name, comp in entry["components"].items():
                comp_base = f"{base}.{name}"
                fields[f"{comp_base}.total"] = float(comp["total"])
                fields[f"{comp_base}.p50"] = float(comp["p50"])
                fields[f"{comp_base}.p95"] = float(comp["p95"])
                fields[f"{comp_base}.p99"] = float(comp["p99"])
        return fields


def rollup_spans(spans, request_classes=None):
    """Attribute a span list (live or rebuilt) into a fresh rollup.

    Mirrors the live session's policy exactly: only closed invoke and
    stream spans are requests (stream-wait episodes are *inside* a
    stream entry's latency, counting them would double-bill).
    """
    rollup = AttributionRollup()
    for span in spans:
        if span.end is None or span.cat not in ("invoke", "stream"):
            continue
        rollup.observe_span(span, request_classes)
    return rollup


# ----------------------------------------------------------------------
# offline reconstruction (trace.json -> spans)
# ----------------------------------------------------------------------
def spans_from_trace(trace):
    """Rebuild :class:`Span` objects from a Chrome-trace dict.

    Inverse of the Perfetto export for everything attribution needs:
    async b/e pairs grouped per (cat, id) yield the parent interval,
    its args (cid, mem_cycles, request_class) and the nested phases.
    Counter, metadata, and flow events are ignored.
    """
    from repro.sim.telemetry.spans import Span

    stacks = {}
    spans = []
    for event in trace.get("traceEvents", ()):
        ph = event.get("ph")
        if ph not in ("b", "e"):
            continue
        key = (event.get("cat"), event.get("id"))
        stack = stacks.setdefault(key, [])
        if ph == "b":
            stack.append(event)
            continue
        if not stack:
            continue  # torn trace: end without begin
        begin = stack.pop()
        if stack:
            # A nested pair is one phase of the span still on the stack.
            root = stack[0]
            root.setdefault("_phases", []).append(
                [begin["name"], begin["ts"], event["ts"]]
            )
            continue
        args = dict(begin.get("args") or {})
        span = Span(
            begin["name"],
            begin.get("cat"),
            args.pop("cid", None),
            begin.get("pid"),
            begin["ts"],
            args=args,
        )
        span.end = event["ts"]
        span.phases = begin.pop("_phases", [])
        spans.append(span)
    return spans


# ----------------------------------------------------------------------
# Perfetto flow events (the critical path drawn through the trace)
# ----------------------------------------------------------------------
def critical_path_flows(spans, limit=50):
    """Flow events threading the critical path of the slowest requests.

    One ``s``/``t``.../``f`` chain per span (cat ``critpath``), stepping
    through the phase boundaries in time order, so Chrome/Perfetto draws
    the request's causal arrow across its lanes. Only the ``limit``
    slowest invoke spans get a flow -- the interesting ones -- keeping
    the trace size bounded.
    """
    closed = [s for s in spans if s.end is not None and s.cat == "invoke"]
    closed.sort(key=lambda s: s.duration, reverse=True)
    events = []
    for flow_id, span in enumerate(closed[:limit]):
        pid = span.pid if span.pid is not None else 4095
        base = {
            "cat": "critpath",
            "name": f"critical-path:{span.name}",
            "id": flow_id,
            "pid": pid,
            "tid": 0,
        }
        events.append(dict(base, ph="s", ts=span.start))
        boundaries = sorted(
            {p[2] for p in span.phases if p[2] is not None and p[2] < span.end}
        )
        for ts in boundaries:
            events.append(dict(base, ph="t", ts=ts))
        events.append(dict(base, ph="f", bp="e", ts=span.end))
    return events

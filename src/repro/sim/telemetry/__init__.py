"""Telemetry over the event bus: metrics, causal spans, Perfetto export.

Nothing here runs unless attached: the simulator's emit sites are
guarded by ``events.active``, so a machine without telemetry pays one
attribute load per potential emit and allocates nothing. Attach a
:class:`Telemetry` to one machine, or install a
:class:`TelemetrySession` to capture every machine an experiment
builds (what ``--telemetry-out`` does).
"""

from repro.sim.telemetry.flightrec import (
    FlightRecorder,
    FlightRecorderSession,
)
from repro.sim.telemetry.log import (
    configure_run_logging,
    get_logger,
    set_log_context,
)
from repro.sim.telemetry.metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.sim.telemetry.perfetto import (
    chrome_trace,
    load_and_validate,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.telemetry.requests import (
    RequestLatencyProbe,
    declare_request_classes,
)
from repro.sim.telemetry.session import (
    Telemetry,
    TelemetrySession,
    active_session,
    notify_machine_created,
)
from repro.sim.telemetry.spans import Span, SpanTracker

__all__ = [
    "FlightRecorder",
    "FlightRecorderSession",
    "configure_run_logging",
    "get_logger",
    "set_log_context",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "TimeSeries",
    "RequestLatencyProbe",
    "declare_request_classes",
    "Span",
    "SpanTracker",
    "Telemetry",
    "TelemetrySession",
    "active_session",
    "notify_machine_created",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "load_and_validate",
]

"""Chrome-trace JSON export (openable in ``ui.perfetto.dev``).

Spans render as async begin/end pairs (``ph: "b"``/``"e"``) keyed by
category + id, so overlapping tasks on one tile nest on per-request
tracks instead of fighting over a thread lane; phases share their
parent's id and nest inside it. Time-series metrics render as counter
tracks (``ph: "C"``). One trace "process" per tile (plus a synthetic
``machine`` process for tile-less tracks), named via metadata events.

Timestamps are simulated cycles emitted in the JSON ``ts`` field (which
Chrome tracing nominally treats as microseconds): 1 UI microsecond ==
1 simulated cycle.

:func:`validate_chrome_trace` is the programmatic well-formedness check
used by the tests and the ``telemetry`` report command: every ``b``
must find its ``e``, per-track timestamps must be orderable, and child
intervals must nest within their parents.
"""

import json

#: Synthetic pid for spans/counters not anchored to a tile.
MACHINE_PID = 4095


def _span_events(span, uid):
    """The b/e event list for one span (parent first, phases inside)."""
    base = {"cat": span.cat, "id": uid, "pid": span.pid if span.pid is not None else MACHINE_PID, "tid": 0}
    events = [dict(base, ph="b", name=span.name, ts=span.start, args=dict(span.args, cid=str(span.cid)))]
    closed = [p for p in span.phases if p[2] is not None]
    for name, start, end in sorted(closed, key=lambda p: (p[1], p[2])):
        events.append(dict(base, ph="b", name=name, ts=start))
        events.append(dict(base, ph="e", name=name, ts=end))
    events.append(dict(base, ph="e", name=span.name, ts=span.end))
    return events


def chrome_trace(spans, metrics=None, meta=None, tile_of_label=("tile", "bank"), extra_events=None):
    """Build the Chrome-trace dict from spans and a metrics registry.

    ``metrics`` is an optional
    :class:`~repro.sim.telemetry.metrics.MetricsRegistry` whose time
    series become counter tracks; a series labeled with any key in
    ``tile_of_label`` is anchored to that tile's process.
    ``extra_events`` are pre-built trace events merged into the
    timeline (the critical-path flow arrows use this).
    """
    events = []
    pids = set()
    for uid, span in enumerate(spans):
        if span.end is None:
            continue
        span_events = _span_events(span, uid)
        pids.update(e["pid"] for e in span_events)
        events.extend(span_events)

    if extra_events:
        for event in extra_events:
            pids.add(event.get("pid", MACHINE_PID))
            events.append(dict(event))

    if metrics is not None:
        for name in metrics.names():
            if metrics.kind_of(name) != "timeseries":
                continue
            for label_key, series in sorted(metrics.series(name).items()):
                labels = dict(label_key)
                pid = MACHINE_PID
                for key in tile_of_label:
                    if key in labels:
                        try:
                            pid = int(labels[key])
                        except ValueError:
                            pass
                        break
                pids.add(pid)
                extra = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items()) if k not in tile_of_label
                )
                track = name + (f"[{extra}]" if extra else "")
                for sample in series.samples():
                    events.append(
                        {
                            "ph": "C",
                            "name": track,
                            "pid": pid,
                            "ts": sample["t0"],
                            "args": {track: sample["value"]},
                        }
                    )

    # Stable sort: ties keep parent-begin before child-begin and
    # child-end before parent-end (the per-span emission order), which
    # is what makes equal-timestamp nesting unambiguous.
    events.sort(key=lambda e: e["ts"])

    for pid in sorted(pids):
        name = "machine" if pid == MACHINE_PID else f"tile {pid}"
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "args": {"name": name}}
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "args": {"sort_index": pid},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}, time_unit="1 ts == 1 simulated cycle"),
    }


def write_chrome_trace(path, spans, metrics=None, meta=None, extra_events=None):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    trace = chrome_trace(spans, metrics=metrics, meta=meta, extra_events=extra_events)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return path


def validate_chrome_trace(trace):
    """Well-formedness problems of a Chrome-trace dict (empty == valid).

    Checks, per async (cat, id) track: begins and ends alternate into a
    properly matched stack, timestamps never run backwards, and nothing
    is left open -- i.e. spans closed and nested correctly.
    """
    problems = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["missing traceEvents"]
    stacks = {}
    for event in trace["traceEvents"]:
        ph = event.get("ph")
        if ph not in ("b", "e"):
            continue
        for field in ("cat", "id", "ts", "name"):
            if field not in event:
                problems.append(f"async event missing {field}: {event}")
                break
        else:
            key = (event["cat"], event["id"])
            stack = stacks.setdefault(key, [])
            if ph == "b":
                if stack and event["ts"] < stack[-1][1]:
                    problems.append(
                        f"{key}: begin {event['name']!r}@{event['ts']} before "
                        f"enclosing begin {stack[-1][0]!r}@{stack[-1][1]}"
                    )
                stack.append((event["name"], event["ts"]))
            else:
                if not stack:
                    problems.append(f"{key}: end {event['name']!r} without begin")
                    continue
                name, begin_ts = stack.pop()
                if name != event["name"]:
                    problems.append(
                        f"{key}: end {event['name']!r} does not match open "
                        f"{name!r} (improper nesting)"
                    )
                if event["ts"] < begin_ts:
                    problems.append(
                        f"{key}: {name!r} ends at {event['ts']} before its "
                        f"begin at {begin_ts}"
                    )
    for key, stack in stacks.items():
        if stack:
            problems.append(f"{key}: {len(stack)} unclosed span(s): {stack}")
    return problems


def load_and_validate(path):
    """Load a trace file; returns ``(trace, problems)``."""
    with open(path) as handle:
        trace = json.load(handle)
    return trace, validate_chrome_trace(trace)

"""Strided L2 prefetcher (Table V).

A simple per-tile stride detector: misses are grouped into 4 KB regions;
two consecutive misses at a constant line stride within a region arm the
detector, and each further miss issues a configurable prefetch depth
ahead. Prefetches warm the L2 without blocking the demand access.

Leviathan interacts with the prefetcher in one place: prefetches into a
registered Morph range ask the morph hook for permission (streams NACK
prefetches past the produced tail, Sec. VI-B3).
"""


class StridePrefetcher:
    """One tile's L2 stride prefetcher."""

    REGION_BITS = 12  # 4 KB training regions
    TABLE_ENTRIES = 16
    DEPTH = 2  # lines prefetched ahead once armed

    def __init__(self, tile, line_size):
        self.tile = tile
        self.line_size = line_size
        #: region -> (last_line, stride, confidence)
        self._table = {}

    def train(self, line):
        """Observe an L2 miss at ``line``; return lines to prefetch."""
        region = (line * self.line_size) >> self.REGION_BITS
        last = self._table.get(region)
        if last is None:
            if len(self._table) >= self.TABLE_ENTRIES:
                self._table.pop(next(iter(self._table)))
            self._table[region] = (line, 0, 0)
            return []
        last_line, stride, confidence = last
        new_stride = line - last_line
        if new_stride == 0:
            return []
        if new_stride == stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
            stride = new_stride
        self._table[region] = (line, stride, confidence)
        if confidence >= 1 and stride != 0:
            return [line + stride * (i + 1) for i in range(self.DEPTH)]
        return []

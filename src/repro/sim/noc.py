"""Mesh on-chip network.

Tiles are laid out on a 2D mesh with XY routing. The model is
queue-free: a message's latency is its hop count times the per-hop
router/link delay, and its cost is accounted as *flit-hops* (flits
crossing one link), which is what the paper's "NoC traffic" reductions
(e.g. 40% vs. tākō in Sec. IV-D) measure.
"""

from repro.sim.events import EventBus, FlitHop


class MeshNoc:
    """The on-chip network connecting tiles (cores, LLC banks, MCs)."""

    def __init__(self, config, stats, bus=None):
        self.config = config.noc
        self.n_tiles = config.n_tiles
        self.width = config.mesh_width
        self.height = (self.n_tiles + self.width - 1) // self.width
        self.stats = stats
        self.bus = bus if bus is not None else EventBus()
        #: Fault hook (:mod:`repro.sim.faults`): when a controller with
        #: NoC rules attaches it sets itself here; ``None`` (default)
        #: keeps the send path free of any fault check beyond this load.
        self.faults = None

    def coords(self, tile):
        """(x, y) position of ``tile`` on the mesh."""
        if not 0 <= tile < self.n_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.n_tiles})")
        return tile % self.width, tile // self.width

    def hops(self, src, dst):
        """XY-routed hop count between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def send(self, src, dst, payload_bytes):
        """Send a message; returns its latency and accounts traffic.

        A 0-hop (same-tile) message still pays one router traversal but
        generates no link traffic.
        """
        hops = self.hops(src, dst)
        flits = self.config.flits(payload_bytes)
        self.stats.add("noc.messages")
        self.stats.add("noc.flits", flits)
        self.stats.add("noc.flit_hops", flits * hops)
        if self.bus.active:
            self.bus.emit(FlitHop(src, dst, payload_bytes, flits, hops))
        latency = self.config.message_latency(hops, payload_bytes)
        if self.faults is not None:
            latency += self.faults.on_noc_message(src, dst, payload_bytes)
        return latency

    def round_trip(self, src, dst, request_bytes, response_bytes):
        """Request/response pair; returns combined latency."""
        return self.send(src, dst, request_bytes) + self.send(
            dst, src, response_bytes
        )

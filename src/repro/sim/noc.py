"""Mesh on-chip network.

Tiles are laid out on a 2D mesh with XY routing. The model is
queue-free: a message's latency is its hop count times the per-hop
router/link delay, and its cost is accounted as *flit-hops* (flits
crossing one link), which is what the paper's "NoC traffic" reductions
(e.g. 40% vs. tākō in Sec. IV-D) measure.
"""

from repro.sim.events import EventBus, FlitHop


class MeshNoc:
    """The on-chip network connecting tiles (cores, LLC banks, MCs)."""

    def __init__(self, config, stats, bus=None):
        self.config = config.noc
        self.n_tiles = config.n_tiles
        self.width = config.mesh_width
        self.height = (self.n_tiles + self.width - 1) // self.width
        self.stats = stats
        self.bus = bus if bus is not None else EventBus()
        #: Fault hook (:mod:`repro.sim.faults`): when a controller with
        #: NoC rules attaches it sets itself here; ``None`` (default)
        #: keeps the send path free of any fault check beyond this load.
        self.faults = None
        # The mesh is static, so every quantity ``send`` derives per
        # message is precomputed: the src x dst hop-count table, the
        # head-flit latency per hop count, and a payload-size ->
        # (flits, serialization) memo (payload sizes are a handful of
        # constants: CTRL_BYTES, DATA_BYTES, stream entries).
        width = self.width
        self._hops = [
            [
                abs(s % width - d % width) + abs(s // width - d // width)
                for d in range(self.n_tiles)
            ]
            for s in range(self.n_tiles)
        ]
        max_hops = (width - 1) + (self.height - 1)
        self._hop_latency = [self.config.hop_latency(h) for h in range(max_hops + 1)]
        self._flits = {}
        #: FlitHop emit flag, kept coherent with the bus registry.
        self._emit_flit_hop = False
        self.bus.on_change(self._refresh_emit_flags)

    def _refresh_emit_flags(self, bus):
        self._emit_flit_hop = bus.wants(FlitHop)

    def coords(self, tile):
        """(x, y) position of ``tile`` on the mesh."""
        if not 0 <= tile < self.n_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.n_tiles})")
        return tile % self.width, tile // self.width

    def hops(self, src, dst):
        """XY-routed hop count between two tiles."""
        if not 0 <= src < self.n_tiles:
            raise ValueError(f"tile {src} out of range [0, {self.n_tiles})")
        if not 0 <= dst < self.n_tiles:
            raise ValueError(f"tile {dst} out of range [0, {self.n_tiles})")
        return self._hops[src][dst]

    def send(self, src, dst, payload_bytes):
        """Send a message; returns its latency and accounts traffic.

        A 0-hop (same-tile) message still pays one router traversal but
        generates no link traffic.
        """
        hops = self._hops[src][dst]
        cached = self._flits.get(payload_bytes)
        if cached is None:
            flits = self.config.flits(payload_bytes)
            cached = (flits, flits - 1)
            self._flits[payload_bytes] = cached
        flits, serialization = cached
        stats = self.stats
        if stats._phase is None:
            counters = stats.counters
            counters["noc.messages"] += 1
            counters["noc.flits"] += flits
            counters["noc.flit_hops"] += flits * hops
        else:
            stats.add("noc.messages")
            stats.add("noc.flits", flits)
            stats.add("noc.flit_hops", flits * hops)
        if self._emit_flit_hop:
            self.bus.emit(FlitHop(src, dst, payload_bytes, flits, hops))
        if hops:
            latency = self._hop_latency[hops] + serialization
        else:
            latency = self._hop_latency[0]
        if self.faults is not None:
            latency += self.faults.on_noc_message(src, dst, payload_bytes)
        return latency

    def round_trip(self, src, dst, request_bytes, response_bytes):
        """Request/response pair; returns combined latency."""
        return self.send(src, dst, request_bytes) + self.send(
            dst, src, response_bytes
        )

"""Directory-based coherence state.

The LLC is inclusive and carries an in-directory sharer/owner record per
line (MESI collapsed to what the timing model needs: *who may have a
private copy* and *who owns it modified*). The hierarchy consults the
directory on every LLC access to charge invalidation and ping-pong
costs -- the costs that remote memory operations / task offload
eliminate for heavily shared data (Sec. II-A, Sec. IV).
"""


class DirectoryEntry:
    """Sharers and owner for one line."""

    __slots__ = ("sharers", "owner")

    def __init__(self):
        #: Tiles that may hold the line in a private cache (L1/L2/engine L1d).
        self.sharers = set()
        #: Tile holding the line modified, or ``None``.
        self.owner = None

    def __repr__(self):
        return f"DirectoryEntry(owner={self.owner}, sharers={sorted(self.sharers)})"


class Directory:
    """The (logically distributed, physically global here) LLC directory."""

    def __init__(self, stats):
        self.stats = stats
        self._entries = {}

    def entry(self, line):
        ent = self._entries.get(line)
        if ent is None:
            ent = self._entries[line] = DirectoryEntry()
        return ent

    def peek(self, line):
        """The entry if it exists, without creating one."""
        return self._entries.get(line)

    def owner_of(self, line):
        ent = self._entries.get(line)
        return ent.owner if ent else None

    def sharers_of(self, line):
        ent = self._entries.get(line)
        return set(ent.sharers) if ent else set()

    def record_fill(self, line, tile, exclusive):
        """A private cache at ``tile`` filled ``line``."""
        ent = self.entry(line)
        ent.sharers.add(tile)
        if exclusive:
            ent.owner = tile
        elif ent.owner == tile:
            # A read re-fill after losing ownership keeps it shared.
            ent.owner = None

    def record_private_eviction(self, line, tile):
        """``tile`` no longer holds ``line`` in any private cache."""
        ent = self._entries.get(line)
        if ent is None:
            return
        ent.sharers.discard(tile)
        if ent.owner == tile:
            ent.owner = None
        if not ent.sharers and ent.owner is None:
            del self._entries[line]

    def drop(self, line):
        """Forget all state for ``line`` (LLC eviction completed)."""
        self._entries.pop(line, None)

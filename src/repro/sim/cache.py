"""Set-associative cache model.

Caches are *tag-only*: they track which lines are resident (plus dirty
and Leviathan metadata bits) but store no data. Workload data lives in
Python objects; the cache model exists to decide hits, misses, and
evictions, which is all the timing and energy models need.

Three replacement policies are provided: classic LRU, SRRIP ("rrip"),
and a scan-resistant bimodal RRIP ("brrip"); the paper's L2/LLC use
"t̄r̄ip repl." [66], an RRIP-family policy. BRRIP inserts almost all
lines at the maximum re-reference prediction so single-use streams
(graph edge lists, logs) cannot displace the reused working set.
"""


class CacheLine:
    """Metadata for one resident cache line."""

    __slots__ = ("line", "dirty", "morph", "rrpv", "lru_tick")

    def __init__(self, line):
        self.line = line
        self.dirty = False
        #: Leviathan tag bit: run the actor destructor when this line is
        #: evicted (Sec. VI-B2, "one extra bit" in L2/LLC tags).
        self.morph = False
        self.rrpv = 0
        self.lru_tick = 0

    def __repr__(self):
        flags = "".join(
            flag for flag, on in (("D", self.dirty), ("M", self.morph)) if on
        )
        return f"CacheLine({self.line:#x}{',' + flags if flags else ''})"


class SetAssocCache:
    """A set-associative, tag-only cache.

    ``lookup`` / ``insert`` / ``invalidate`` operate on *line numbers*
    (byte address divided by line size); callers do the division so a
    single cache model serves every level.
    """

    RRIP_MAX = 3  # 2-bit RRPV
    RRIP_INSERT = 2  # long re-reference prediction on insert

    def __init__(self, n_sets, n_ways, policy="lru", name="cache", index_shift=0):
        if n_sets <= 0 or n_ways <= 0:
            raise ValueError(f"{name}: sets and ways must be positive")
        if n_sets & (n_sets - 1):
            raise ValueError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if policy not in ("lru", "rrip", "brrip"):
            raise ValueError(f"{name}: unknown replacement policy {policy!r}")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.policy = policy
        self.name = name
        #: Low line-index bits to skip when computing the set index.
        #: LLC banks set this to log2(n_banks): the bank-select bits are
        #: below the set-index bits, so they must not alias (a banked
        #: cache indexing sets with the bank bits would use one set).
        self.index_shift = index_shift
        # n_sets is a power of two (checked above): modulo is a mask.
        self._mask = n_sets - 1
        self._shift = index_shift
        #: list of dicts: set index -> {line: CacheLine}
        self._sets = [dict() for _ in range(n_sets)]
        #: Per-set LRU clocks. Replacement only ever compares ticks of
        #: lines in the *same* set, so each set keeps its own counter:
        #: touch order within a set is what LRU is defined over, and a
        #: shared global clock would couple unrelated sets (and made the
        #: tick a single ever-growing hot spot).
        self._ticks = [0] * n_sets
        self._brrip_counter = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def capacity_lines(self):
        return self.n_sets * self.n_ways

    def set_index(self, line):
        return (line >> self.index_shift) & (self.n_sets - 1)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def lookup(self, line, touch=True):
        """Return the resident :class:`CacheLine` or ``None``.

        ``touch`` updates replacement state on a hit (real accesses);
        pass ``touch=False`` for probes (directory checks, DYNAMIC
        invoke placement) that should not perturb replacement.
        """
        index = (line >> self._shift) & self._mask
        entry = self._sets[index].get(line)
        if entry is not None and touch:
            tick = self._ticks[index] + 1
            self._ticks[index] = tick
            entry.lru_tick = tick
            entry.rrpv = 0
        return entry

    def contains(self, line):
        return line in self._sets[(line >> self._shift) & self._mask]

    def insert(self, line, dirty=False, morph=False):
        """Insert ``line``; return the evicted :class:`CacheLine` or ``None``.

        Inserting a line that is already resident just updates its flags
        (and returns ``None``).
        """
        index = (line >> self._shift) & self._mask
        cache_set = self._sets[index]
        entry = cache_set.get(line)
        tick = self._ticks[index] + 1
        self._ticks[index] = tick
        if entry is not None:
            entry.dirty = entry.dirty or dirty
            entry.morph = entry.morph or morph
            entry.lru_tick = tick
            return None

        victim = None
        if len(cache_set) >= self.n_ways:
            victim = self._choose_victim(cache_set)
            del cache_set[victim.line]

        entry = CacheLine(line)
        entry.dirty = dirty
        entry.morph = morph
        entry.lru_tick = tick
        entry.rrpv = self._insertion_rrpv()
        cache_set[line] = entry
        return victim

    def _insertion_rrpv(self):
        if self.policy == "brrip":
            # Bimodal: nearly all insertions predict distant re-reference
            # (scan-resistant); one in 32 gets the SRRIP insertion so a
            # new working set can still ramp in.
            self._brrip_counter += 1
            if self._brrip_counter % 32 == 0:
                return self.RRIP_INSERT
            return self.RRIP_MAX
        return self.RRIP_INSERT

    def invalidate(self, line):
        """Remove ``line``; return its :class:`CacheLine` or ``None``."""
        return self._sets[(line >> self._shift) & self._mask].pop(line, None)

    def resident_lines(self):
        """Iterate over all resident line numbers (for range flushes)."""
        for cache_set in self._sets:
            yield from cache_set.keys()

    def resident_in(self, line_lo, line_hi):
        """Resident line numbers within ``[line_lo, line_hi)``."""
        return [
            line for line in self.resident_lines() if line_lo <= line < line_hi
        ]

    # ------------------------------------------------------------------
    # replacement
    # ------------------------------------------------------------------
    def _choose_victim(self, cache_set):
        if self.policy == "lru":
            return min(cache_set.values(), key=lambda e: e.lru_tick)
        # RRIP: evict a line at max RRPV, aging everyone until one exists.
        while True:
            for entry in cache_set.values():
                if entry.rrpv >= self.RRIP_MAX:
                    return entry
            for entry in cache_set.values():
                entry.rrpv += 1

    def __repr__(self):
        used = sum(len(s) for s in self._sets)
        return (
            f"SetAssocCache({self.name}, {self.n_sets}x{self.n_ways}, "
            f"{used}/{self.capacity_lines} lines)"
        )

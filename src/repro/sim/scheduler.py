"""Timestamp-ordered interleaving of simulated contexts.

Two interchangeable scheduler implementations produce bit-identical
schedules (``SystemConfig.scheduler_mode`` selects one):

- :class:`Scheduler` (``"runlist"``, the default): a calendar queue.
  Runnable contexts are batched into per-timestamp *run lists* (a dict
  of FIFO lists keyed by time, plus a small heap of distinct
  timestamps). Draining a run list executes every same-time context
  back to back without re-heapifying per operation, and the inner
  execute loop is inlined into :meth:`Scheduler.run` with the watchdog
  counter and resume bookkeeping hoisted into locals -- this loop is
  the hottest code in the simulator.
- :class:`HeapScheduler` (``"heap"``): the original per-entry binary
  heap of ``(time, seq, ctx)`` tuples, kept as the executable reference
  for the determinism contract (tests run both and compare schedules).

Ordering contract (both modes): contexts run in timestamp order; ties
are broken by enqueue order (spawn order at t=0); a running context
keeps running while its local time has not passed the earliest pending
context's time. Contexts block by raising
:class:`~repro.sim.ops.Park`; :meth:`Scheduler.wake_one` /
:meth:`Scheduler.wake_all` make them runnable again, either retrying
the blocked operation or resuming the generator with a wake value.

The model is deterministic: no randomness exists outside explicitly
seeded workload generators.
"""

import heapq

from repro.sim.events import WatchdogFired
from repro.sim.ops import Op, Park
from repro.sim.telemetry.log import get_logger
from repro.sim.thread import Context

_log = get_logger("scheduler")


class SimDeadlock(RuntimeError):
    """No context is runnable but some are still parked."""


class DeadlockError(SimDeadlock):
    """The simulation cannot make progress.

    Raised in two situations, both with a diagnostic dump of every
    parked context, its awaited condition, and the in-flight work
    visible to the runtime:

    - the run queue drained while contexts were still parked (a
      condition that is never signaled -- the classic lost-wakeup
      deadlock);
    - the watchdog counted ``watchdog_steps`` consecutive operations
      without simulated time advancing (a livelock: zero-latency spin,
      or park/wake ping-pong at a frozen timestamp), which previously
      hung ``machine.run()`` forever.

    Subclasses :class:`SimDeadlock` so existing handlers keep working.

    Instances carry structured post-mortem state: ``kind`` is
    ``"drained"`` or ``"watchdog"``, and ``snapshot`` is the
    :meth:`~repro.sim.system.Machine.stall_snapshot` dict captured at
    raise time (what the flight recorder persists in
    ``postmortem.json``).
    """

    kind = "deadlock"
    snapshot = None


class Scheduler:
    """The run-list (calendar-queue) scheduler -- the default."""

    __slots__ = (
        "machine",
        "_buckets",
        "_times",
        "_n_live",
        "_parked",
        "now",
        "current",
        "watchdog_steps",
        "_no_progress_ops",
    )

    def __init__(self, machine):
        self.machine = machine
        #: time -> FIFO list of contexts runnable at that time. A bucket
        #: is popped from the dict before it is drained, so same-time
        #: contexts enqueued *during* the drain open a fresh bucket that
        #: drains afterwards -- exactly the heap's seq-order tie-break.
        self._buckets = {}
        #: Min-heap of the distinct timestamps that have a live bucket.
        self._times = []
        self._n_live = 0
        self._parked = set()
        self.now = 0.0
        self.current = None
        #: Watchdog threshold (0 disables): consecutive zero-latency
        #: operations tolerated before declaring a no-progress cycle.
        #: Counted inside the run loop because a single spinning context
        #: with an empty queue never returns to the outer loop.
        self.watchdog_steps = machine.config.watchdog_steps or 0
        self._no_progress_ops = 0

    # ------------------------------------------------------------------
    # spawning and queueing
    # ------------------------------------------------------------------
    def spawn(self, program, tile, name=None, is_engine=False, engine=None, at_time=None):
        """Create and enqueue a context running ``program`` on ``tile``."""
        start = self.now if at_time is None else at_time
        ctx = Context(
            program, tile, name=name, is_engine=is_engine, engine=engine, at_time=start
        )
        self._n_live += 1
        self._enqueue(ctx)
        return ctx

    def _enqueue(self, ctx):
        """Append ``ctx`` to the run list for its local time."""
        time = ctx.time
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [ctx]
            heapq.heappush(self._times, time)
        else:
            bucket.append(ctx)

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------
    def park(self, ctx, condition, retry_op=None):
        ctx.parked_on = condition
        condition.waiters.append((ctx, retry_op))
        self._parked.add(ctx)

    def wake_all(self, condition, value=None, at_time=None):
        """Wake every waiter on ``condition``."""
        waiters, condition.waiters = condition.waiters, type(condition.waiters)()
        for ctx, retry_op in waiters:
            self._wake(ctx, retry_op, value, at_time)
        return len(waiters)

    def wake_one(self, condition, value=None, at_time=None):
        """Wake the longest-waiting waiter on ``condition`` (if any)."""
        if not condition.waiters:
            return 0
        ctx, retry_op = condition.waiters.popleft()
        self._wake(ctx, retry_op, value, at_time)
        return 1

    def _wake(self, ctx, retry_op, value, at_time):
        ctx.parked_on = None
        self._parked.discard(ctx)
        wake_time = self.now if at_time is None else at_time
        if wake_time > ctx.time:
            ctx.time = wake_time
        ctx.send_value = value
        ctx.retry_op = retry_op
        self._enqueue(ctx)

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self):
        """Run until every context has finished; returns the final time.

        Raises :class:`DeadlockError` when no progress is possible:
        either every runnable context drained while some were parked,
        or the watchdog saw ``watchdog_steps`` consecutive operations
        without simulated time advancing.

        The body is deliberately one large inlined loop: the per-op
        dispatch previously paid a method call, a ``_Resume``
        allocation, a ``getattr`` for the op result, and two watchdog
        method calls; all of that state now lives in locals, and
        contexts sharing a timestamp drain from one run list without
        touching the heap at all.
        """
        machine = self.machine
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        heappush = heapq.heappush
        wd = self.watchdog_steps
        spin = self._no_progress_ops
        while times:
            t = heappop(times)
            bucket = buckets.pop(t, None)
            if bucket is None:
                continue
            if t > self.now:
                self.now = t
                # Simulated time advanced: the machine is making progress.
                spin = 0
            i = 0
            n = len(bucket)
            while i < n:
                # A wake during the drain may target an *earlier* time
                # (explicit at_time): yield to it, parking the rest of
                # this bucket ahead of any newer same-time arrivals.
                if times and times[0] < t:
                    rest = bucket[i:]
                    newer = buckets.get(t)
                    if newer is None:
                        buckets[t] = rest
                        heappush(times, t)
                    else:
                        buckets[t] = rest + newer
                    break
                ctx = bucket[i]
                i += 1
                if ctx.done:
                    continue
                self.current = ctx
                op = ctx.retry_op
                send_value = ctx.send_value
                send = ctx.send
                while True:
                    if op is None:
                        try:
                            op = send(send_value)
                        except StopIteration as stop:
                            ctx.done = True
                            ctx.result = getattr(stop, "value", None)
                            self._n_live -= 1
                            for callback in ctx.on_done:
                                callback(machine, ctx)
                            break
                        send_value = None
                        if not isinstance(op, Op):
                            raise TypeError(
                                f"{ctx.name} yielded {op!r}, which is not an Op"
                            )
                    try:
                        latency = op.execute(machine, ctx)
                    except Park as parked:
                        condition = parked.condition
                        retry = op if parked.retry else None
                        ctx.parked_on = condition
                        condition.waiters.append((ctx, retry))
                        self._parked.add(ctx)
                        if wd:
                            spin += 1
                            if spin >= wd:
                                self._no_progress_ops = spin
                                self._watchdog_fire()
                        break
                    if latency:
                        spin = 0
                    elif wd:
                        spin += 1
                        if spin >= wd:
                            self._no_progress_ops = spin
                            self._watchdog_fire()
                    ctx.time = ctx_time = ctx.time + latency
                    send_value = op.result
                    op = None
                    # Keep running this context while it is still the
                    # earliest; otherwise requeue it and move on.
                    if i < n:
                        limit = t if not times or t <= times[0] else times[0]
                    elif times:
                        limit = times[0]
                    else:
                        limit = None
                    if limit is not None and ctx_time > limit:
                        ctx.send_value = send_value
                        ctx.retry_op = None
                        requeued = buckets.get(ctx_time)
                        if requeued is None:
                            buckets[ctx_time] = [ctx]
                            heappush(times, ctx_time)
                        else:
                            requeued.append(ctx)
                        break
                    if ctx_time > self.now:
                        self.now = ctx_time
        self.current = None
        self._no_progress_ops = spin
        if self._parked:
            self._raise_drained_deadlock()
        return self.now

    # ------------------------------------------------------------------
    # deadlock surfacing (both raise paths emit WatchdogFired, so the
    # flight recorder and span trackers see every deadlock, not just
    # watchdog-detected livelocks)
    # ------------------------------------------------------------------
    def _raise_drained_deadlock(self):
        """The run queue drained with contexts still parked."""
        machine = self.machine
        machine.stats.add("deadlock.drained")
        if machine.events.active:
            machine.events.emit(
                WatchdogFired(self._no_progress_ops, self.now, len(self._parked))
            )
        snapshot = machine.stall_snapshot()
        _log.error(
            "scheduler.deadlock",
            extra={
                "kind": "drained",
                "sim_time": self.now,
                "parked": len(self._parked),
            },
        )
        error = DeadlockError(
            "simulation deadlock; parked contexts: "
            + ", ".join(
                f"{c.name} on {c.parked_on}" for c in sorted(
                    self._parked, key=lambda c: c.ctid
                )
            )
            + "\n"
            + machine.describe_stall()
        )
        error.kind = "drained"
        error.snapshot = snapshot
        raise error

    # ------------------------------------------------------------------
    # the watchdog
    # ------------------------------------------------------------------
    def _watchdog_fire(self):
        machine = self.machine
        steps = self._no_progress_ops
        self._no_progress_ops = 0
        machine.stats.add("watchdog.fired")
        if machine.events.active:
            machine.events.emit(WatchdogFired(steps, self.now, len(self._parked)))
        snapshot = machine.stall_snapshot(steps=steps)
        _log.error(
            "scheduler.watchdog_fired",
            extra={
                "kind": "watchdog",
                "sim_time": self.now,
                "steps": steps,
                "parked": len(self._parked),
            },
        )
        error = DeadlockError(
            f"watchdog: no progress after {steps} operations at a frozen "
            f"t={self.now:.0f} (livelock or missed wake)\n"
            + machine.describe_stall(steps)
        )
        error.kind = "watchdog"
        error.snapshot = snapshot
        raise error

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def runnable_snapshot(self):
        """``(ctx, time)`` pairs for every queued context (diagnostics)."""
        return [
            (ctx, time)
            for time, bucket in self._buckets.items()
            for ctx in bucket
        ]

    @property
    def parked_contexts(self):
        """Contexts currently blocked on a condition (for diagnostics)."""
        return sorted(self._parked, key=lambda c: c.ctid)


class HeapScheduler(Scheduler):
    """The original per-entry binary-heap scheduler (reference mode).

    One heap entry per runnable context, ordered by ``(time, seq)``;
    ``seq`` is a global enqueue counter, so ties break by enqueue order
    -- the contract the run-list scheduler reproduces. Selected with
    ``scheduler_mode="heap"``; the determinism tests run both modes on
    the same workload and require identical schedules.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, machine):
        super().__init__(machine)
        self._heap = []
        self._seq = 0

    def _enqueue(self, ctx):
        self._seq += 1
        heapq.heappush(self._heap, (ctx.time, self._seq, ctx))

    def run(self):
        heap = self._heap
        while heap:
            time, _seq, ctx = heapq.heappop(heap)
            if ctx.done:
                continue
            if time > self.now:
                self.now = time
                self._no_progress_ops = 0
            self.current = ctx
            self._step(ctx)
        self.current = None
        if self._parked:
            self._raise_drained_deadlock()
        return self.now

    def _step(self, ctx):
        """Execute operations of ``ctx`` until it blocks, finishes, or
        falls behind another runnable context."""
        machine = self.machine
        heap = self._heap
        op = ctx.retry_op
        send_value = ctx.send_value
        send = ctx.send
        while True:
            if op is None:
                try:
                    op = send(send_value)
                except StopIteration as stop:
                    ctx.done = True
                    ctx.result = getattr(stop, "value", None)
                    self._n_live -= 1
                    for callback in ctx.on_done:
                        callback(machine, ctx)
                    return
                send_value = None
                if not isinstance(op, Op):
                    raise TypeError(
                        f"{ctx.name} yielded {op!r}, which is not an Op"
                    )
            try:
                latency = op.execute(machine, ctx)
            except Park as parked:
                self.park(ctx, parked.condition, retry_op=op if parked.retry else None)
                if self.watchdog_steps:
                    self._note_no_progress()
                return
            if latency:
                self._no_progress_ops = 0
            elif self.watchdog_steps:
                self._note_no_progress()
            ctx.time += latency
            send_value = op.result
            op = None
            # Keep running this context while it is still the earliest.
            if heap and ctx.time > heap[0][0]:
                ctx.send_value = send_value
                ctx.retry_op = None
                self._enqueue(ctx)
                return
            self.now = max(self.now, ctx.time)

    def _note_no_progress(self):
        """Count one operation that did not advance simulated time."""
        self._no_progress_ops += 1
        if self._no_progress_ops >= self.watchdog_steps:
            self._watchdog_fire()

    def runnable_snapshot(self):
        return [(ctx, time) for time, _seq, ctx in self._heap]


def make_scheduler(machine):
    """Build the scheduler selected by ``machine.config.scheduler_mode``."""
    if getattr(machine.config, "scheduler_mode", "runlist") == "heap":
        return HeapScheduler(machine)
    return Scheduler(machine)

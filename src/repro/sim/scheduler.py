"""Timestamp-ordered interleaving of simulated contexts.

The scheduler keeps a min-heap of runnable contexts ordered by local
time, resumes the earliest, executes the operation it yields (charging
latency), and re-queues it. Contexts block by raising
:class:`~repro.sim.ops.Park`; :meth:`Scheduler.wake_one` /
:meth:`Scheduler.wake_all` make them runnable again, either retrying the
blocked operation or resuming the generator with a wake value.

The model is deterministic: ties are broken by spawn order, and no
randomness exists outside explicitly seeded workload generators.
"""

import heapq

from repro.sim.events import WatchdogFired
from repro.sim.ops import Op, Park
from repro.sim.thread import Context


class SimDeadlock(RuntimeError):
    """No context is runnable but some are still parked."""


class DeadlockError(SimDeadlock):
    """The simulation cannot make progress.

    Raised in two situations, both with a diagnostic dump of every
    parked context, its awaited condition, and the in-flight work
    visible to the runtime:

    - the heap drained while contexts were still parked (a condition
      that is never signaled -- the classic lost-wakeup deadlock);
    - the watchdog counted ``watchdog_steps`` consecutive operations
      without simulated time advancing (a livelock: zero-latency spin,
      or park/wake ping-pong at a frozen timestamp), which previously
      hung ``machine.run()`` forever.

    Subclasses :class:`SimDeadlock` so existing handlers keep working.
    """


class _Resume:
    """What to do when a context is next scheduled."""

    __slots__ = ("send_value", "retry_op")

    def __init__(self, send_value=None, retry_op=None):
        self.send_value = send_value
        self.retry_op = retry_op


class Scheduler:
    def __init__(self, machine):
        self.machine = machine
        self._heap = []
        self._seq = 0
        self._n_live = 0
        self._parked = set()
        self.now = 0.0
        self.current = None
        #: Watchdog threshold (0 disables): consecutive zero-latency
        #: operations tolerated before declaring a no-progress cycle.
        #: Counted inside ``_step`` because a single spinning context
        #: with an empty heap never returns to the outer loop.
        self.watchdog_steps = machine.config.watchdog_steps or 0
        self._no_progress_ops = 0

    # ------------------------------------------------------------------
    # spawning and queueing
    # ------------------------------------------------------------------
    def spawn(self, program, tile, name=None, is_engine=False, engine=None, at_time=None):
        """Create and enqueue a context running ``program`` on ``tile``."""
        start = self.now if at_time is None else at_time
        ctx = Context(
            program, tile, name=name, is_engine=is_engine, engine=engine, at_time=start
        )
        self._n_live += 1
        self._push(ctx, _Resume())
        return ctx

    def _push(self, ctx, resume):
        self._seq += 1
        heapq.heappush(self._heap, (ctx.time, self._seq, ctx, resume))

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------
    def park(self, ctx, condition, retry_op=None):
        ctx.parked_on = condition
        condition.waiters.append((ctx, retry_op))
        self._parked.add(ctx)

    def wake_all(self, condition, value=None, at_time=None):
        """Wake every waiter on ``condition``."""
        waiters, condition.waiters = condition.waiters, type(condition.waiters)()
        for ctx, retry_op in waiters:
            self._wake(ctx, retry_op, value, at_time)
        return len(waiters)

    def wake_one(self, condition, value=None, at_time=None):
        """Wake the longest-waiting waiter on ``condition`` (if any)."""
        if not condition.waiters:
            return 0
        ctx, retry_op = condition.waiters.popleft()
        self._wake(ctx, retry_op, value, at_time)
        return 1

    def _wake(self, ctx, retry_op, value, at_time):
        ctx.parked_on = None
        self._parked.discard(ctx)
        wake_time = self.now if at_time is None else at_time
        ctx.time = max(ctx.time, wake_time)
        self._push(ctx, _Resume(send_value=value, retry_op=retry_op))

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self):
        """Run until every context has finished; returns the final time.

        Raises :class:`DeadlockError` when no progress is possible:
        either every runnable context drained while some were parked,
        or the watchdog saw ``watchdog_steps`` consecutive operations
        without simulated time advancing.
        """
        heap = self._heap
        while heap:
            time, _seq, ctx, resume = heapq.heappop(heap)
            if ctx.done:
                continue
            if time > self.now:
                self.now = time
                # Simulated time advanced: the machine is making progress.
                self._no_progress_ops = 0
            self.current = ctx
            self._step(ctx, resume)
        self.current = None
        if self._parked:
            raise DeadlockError(
                "simulation deadlock; parked contexts: "
                + ", ".join(
                    f"{c.name} on {c.parked_on}" for c in sorted(
                        self._parked, key=lambda c: c.ctid
                    )
                )
                + "\n"
                + self.machine.describe_stall()
            )
        return self.now

    def _step(self, ctx, resume):
        """Execute operations of ``ctx`` until it blocks, finishes, or
        falls behind another runnable context."""
        machine = self.machine
        heap = self._heap
        op = resume.retry_op
        send_value = resume.send_value
        while True:
            if op is None:
                try:
                    op = ctx.program.send(send_value)
                except StopIteration as stop:
                    ctx.done = True
                    ctx.result = getattr(stop, "value", None)
                    self._n_live -= 1
                    for callback in ctx.on_done:
                        callback(machine, ctx)
                    return
                send_value = None
                if not isinstance(op, Op):
                    raise TypeError(
                        f"{ctx.name} yielded {op!r}, which is not an Op"
                    )
            try:
                latency = op.execute(machine, ctx)
            except Park as park:
                self.park(ctx, park.condition, retry_op=op if park.retry else None)
                if self.watchdog_steps:
                    self._note_no_progress()
                return
            if latency:
                self._no_progress_ops = 0
            elif self.watchdog_steps:
                self._note_no_progress()
            ctx.time += latency
            send_value = getattr(op, "result", None)
            op = None
            # Keep running this context while it is still the earliest.
            if heap and ctx.time > heap[0][0]:
                self._push(ctx, _Resume(send_value=send_value))
                return
            self.now = max(self.now, ctx.time)

    # ------------------------------------------------------------------
    # the watchdog
    # ------------------------------------------------------------------
    def _note_no_progress(self):
        """Count one operation that did not advance simulated time.

        Parks and zero-latency executions both count; any nonzero
        latency (or the global clock advancing between steps) resets the
        counter, so only a genuine frozen-clock cycle accumulates.
        """
        self._no_progress_ops += 1
        if self._no_progress_ops >= self.watchdog_steps:
            self._watchdog_fire()

    def _watchdog_fire(self):
        machine = self.machine
        steps = self._no_progress_ops
        self._no_progress_ops = 0
        machine.stats.add("watchdog.fired")
        if machine.events.active:
            machine.events.emit(WatchdogFired(steps, self.now, len(self._parked)))
        raise DeadlockError(
            f"watchdog: no progress after {steps} operations at a frozen "
            f"t={self.now:.0f} (livelock or missed wake)\n"
            + machine.describe_stall(steps)
        )

    @property
    def parked_contexts(self):
        """Contexts currently blocked on a condition (for diagnostics)."""
        return sorted(self._parked, key=lambda c: c.ctid)

"""Operations yielded by simulated programs.

A simulated thread (or near-data action) is a Python generator. Each
``yield`` hands the scheduler one operation; the scheduler executes it
against the machine, charges its latency to the yielding context, and
resumes the generator (with the operation's result, if any).

Every operation implements ``execute(machine, ctx) -> latency`` and may
raise :class:`Park` to block the context until an event wakes it. Higher
layers (the Leviathan runtime in :mod:`repro.core`) define additional
operations with the same protocol; the scheduler is agnostic.
"""

from collections import deque
from dataclasses import dataclass, field


class Condition:
    """Something contexts can block on (a future, a queue slot, ...)."""

    __slots__ = ("name", "waiters")

    def __init__(self, name="condition"):
        self.name = name
        #: FIFO of ``(ctx, retry_op)``; a deque so wake_one's popleft is
        #: O(1) even with thousands of parked contexts.
        self.waiters = deque()

    def __repr__(self):
        return f"Condition({self.name}, {len(self.waiters)} waiters)"


class Park(Exception):
    """Raised by an operation to block the yielding context.

    ``retry=True`` re-executes the same operation when the context is
    woken (e.g. an invoke spilled by an engine NACK); ``retry=False``
    resumes the generator with the value passed to ``Machine.wake``
    (e.g. a future's payload).
    """

    def __init__(self, condition, retry=False):
        super().__init__(condition.name)
        self.condition = condition
        self.retry = retry


class Op:
    """Base class for operations (used only for isinstance checks).

    ``result`` is the value the scheduler sends back into the yielding
    generator after executing the op. Most operations produce nothing,
    so it is a class attribute: the scheduler reads ``op.result``
    unconditionally (no per-op ``getattr``), and the few result-bearing
    operations (``WaitFuture``, ``Invoke``) shadow it with an instance
    attribute in their ``execute``.
    """

    __slots__ = ()

    result = None

    def execute(self, machine, ctx):
        raise NotImplementedError


@dataclass(slots=True)
class Compute(Op):
    """Execute ``instructions`` dynamic instructions of pure compute.

    On a core, latency is ``instructions / ipc``; on an engine it is
    ``instructions * pe_latency`` (0 for the idealized engine). Energy is
    charged per instruction at the executing resource's cost.
    """

    instructions: int = 1

    def execute(self, machine, ctx):
        # Body of Machine.compute_latency, inlined: Compute is the
        # single most frequent operation and the trampoline call frame
        # was a measurable share of the step loop.
        instructions = self.instructions
        if instructions <= 0:
            return 0.0
        stats = machine.stats
        if ctx.is_engine:
            if stats._phase is None:
                stats.counters["engine.instructions"] += instructions
            else:
                stats.add("engine.instructions", instructions)
            engine = machine._engine_cfg
            if engine.ideal:
                return 0.0
            return instructions * engine.pe_latency / engine.issue_width
        if stats._phase is None:
            stats.counters["core.instructions"] += instructions
        else:
            stats.add("core.instructions", instructions)
        return instructions / machine._core_cfg.ipc


@dataclass(slots=True)
class Branch(Op):
    """A conditional branch; mispredictions cost pipeline refill time.

    Engines (dataflow fabrics) do not speculate, so mispredictions are
    only charged on cores -- this is exactly the effect Fig. 21's
    misprediction plot reports.
    """

    mispredicted: bool = False

    def execute(self, machine, ctx):
        latency = machine.compute_latency(ctx, 1)
        if not ctx.is_engine and self.mispredicted:
            machine.stats.add("core.branch_mispredictions")
            latency += machine.config.core.branch_miss_penalty
        return latency


@dataclass(slots=True)
class Load(Op):
    """Load ``size`` bytes at ``addr``.

    ``apply`` (optional, zero-argument callable) runs atomically with
    the access -- after the cache access (and any constructor it
    triggered), before any other context can run. Use it for functional
    reads that must be consistent with cache state.
    """

    addr: int
    size: int = 8
    apply: object = field(default=None, compare=False)

    def execute(self, machine, ctx):
        return machine.hierarchy.access_latency(
            ctx.tile,
            self.addr,
            self.size,
            False,
            ctx.is_engine,
            self.apply,
            ctx.near_memory,
        )


@dataclass(slots=True)
class Store(Op):
    """Store ``size`` bytes at ``addr``.

    ``apply`` runs atomically with the access (see :class:`Load`); use
    it for the functional side of the store, so concurrent evictions and
    constructions on other contexts observe a consistent value.
    """

    addr: int
    size: int = 8
    apply: object = field(default=None, compare=False)

    def execute(self, machine, ctx):
        return machine.hierarchy.access_latency(
            ctx.tile,
            self.addr,
            self.size,
            True,
            ctx.is_engine,
            self.apply,
            ctx.near_memory,
        )


@dataclass(slots=True)
class AtomicRMW(Op):
    """An atomic read-modify-write on ``size`` bytes at ``addr``.

    ``fenced=True`` models a conventional x86 locked RMW, which
    serializes the core (Sec. IV-D: "fences serialize memory accesses
    and impose a severe performance penalty"). ``fenced=False`` models
    relaxed atomics [9, 70], the crutch tākō needs to approximate RMOs.
    """

    addr: int
    size: int = 8
    fenced: bool = True
    apply: object = field(default=None, compare=False)

    def execute(self, machine, ctx):
        latency = machine.hierarchy.access_latency(
            ctx.tile,
            self.addr,
            self.size,
            True,
            ctx.is_engine,
            self.apply,
            ctx.near_memory,
        )
        machine.stats.add("core.atomics" if not ctx.is_engine else "engine.atomics")
        if self.fenced and not ctx.is_engine:
            machine.stats.add("core.fences")
            latency += machine.config.core.fence_penalty
        return latency


@dataclass(slots=True)
class Fence(Op):
    """A full memory fence on a core."""

    def execute(self, machine, ctx):
        if ctx.is_engine:
            return 0
        machine.stats.add("core.fences")
        return machine.config.core.fence_penalty


@dataclass(slots=True)
class Sleep(Op):
    """Advance the context's local clock by ``cycles`` without work."""

    cycles: int

    def execute(self, machine, ctx):
        return max(0, int(self.cycles))


@dataclass(slots=True)
class SetPhase(Op):
    """Mark entry into a named execution phase for per-phase stats."""

    phase: object = None

    def execute(self, machine, ctx):
        machine.stats.set_phase(self.phase)
        return 0


@dataclass(slots=True)
class Wait(Op):
    """Block until ``condition`` is signalled; resumes with the wake value."""

    condition: Condition

    def execute(self, machine, ctx):
        raise Park(self.condition)


@dataclass(slots=True)
class Prefetch(Op):
    """A software prefetch hint: warms caches without blocking.

    The requester is charged only issue cost; events are accounted.
    """

    addr: int
    size: int = 64

    def execute(self, machine, ctx):
        machine.hierarchy.access_latency(
            ctx.tile, self.addr, self.size, False, ctx.is_engine
        )
        return 1

"""Deterministic fault injection (robustness harness, Sec. VI-C).

A :class:`FaultPlan` is a seeded, composable set of fault rules applied
to one or more machines. The plan is *data*: it can be parsed from and
rendered to a compact spec string (the ``--faults`` CLI flag), compared,
and replayed bit-identically -- every probabilistic decision draws from
one ``random.Random(seed)`` stream, so the same plan over the same
workload injects the same faults at the same points.

Rules and their spec clauses::

    crash:T[@TIME]          engine at tile T fails (fail-stop) at TIME
    stall:T@TIME+DUR        engine at tile T NACKs arrivals in the window
    exhaust:T@TIME+DUR      task-context exhaustion window at tile T
    noc-delay:P@CYCLES      each NoC message delayed CYCLES with prob. P
    noc-drop:P[@RETRANS]    message "dropped": retransmit penalty w/ prob. P
    dram-err:LO-HI@P[@PEN]  transient error on DRAM lines [LO, HI]:
                            ECC-retry penalty PEN with probability P
    seed:S                  the plan's RNG seed

Clauses are ``;``-separated; ``FaultPlan.parse(FaultPlan.spec())`` is
the identity. Injection is split between *timing* faults (NoC, DRAM:
extra latency on the victim path; functional values untouched) and
*state* faults (engine crash/stall/exhaustion: the engine stops
accepting and the Sec. VI-C degradation paths take over). Survivable
plans therefore leave application *results* bit-identical to the
fault-free run -- only timing and routing change -- which is exactly
what the chaos harness asserts.

Hook overhead mirrors the event bus: every hot-path hook site guards on
``faults is None`` (one attribute load and branch), so a machine with no
plan attached pays nothing and simulates bit-identically.

:class:`FaultSession` is the process-wide installer (the fault-plan
analogue of :class:`~repro.sim.telemetry.session.TelemetrySession`):
while installed, every :class:`~repro.sim.system.Machine` constructed
gets a fresh :class:`FaultController` for the plan.
"""

import json
import os
import random
from dataclasses import dataclass

from repro.sim.events import (
    DegradedToFallback,
    EngineTask,
    EngineTaskDone,
    EngineTaskStart,
    FaultInjected,
    FutureFilled,
    InvokeDispatched,
    InvokeRetried,
    InvokeStalled,
)
from repro.sim.telemetry.log import get_logger
from repro.sim.telemetry.spans import SpanTracker

_log = get_logger("faults")


class FaultPlanError(ValueError):
    """A fault plan spec could not be parsed or applied."""


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineCrash:
    """Fail-stop the engine at ``tile`` from ``at_time`` on."""

    tile: int
    at_time: float = 0.0
    kind = "engine-crash"

    def spec(self):
        if self.at_time:
            return f"crash:{self.tile}@{_num(self.at_time)}"
        return f"crash:{self.tile}"


@dataclass(frozen=True)
class EngineStall:
    """The engine at ``tile`` NACKs every arrival inside the window."""

    tile: int
    at_time: float
    duration: float
    kind = "engine-stall"

    def spec(self):
        return f"stall:{self.tile}@{_num(self.at_time)}+{_num(self.duration)}"


@dataclass(frozen=True)
class ContextExhaustion:
    """Task-context-buffer exhaustion at ``tile`` for the window."""

    tile: int
    at_time: float
    duration: float
    kind = "ctx-exhaust"

    def spec(self):
        return f"exhaust:{self.tile}@{_num(self.at_time)}+{_num(self.duration)}"


@dataclass(frozen=True)
class NocDelay:
    """Delay each NoC message by ``delay`` cycles with probability ``prob``."""

    prob: float
    delay: float
    kind = "noc-delay"

    def spec(self):
        return f"noc-delay:{_num(self.prob)}@{_num(self.delay)}"


@dataclass(frozen=True)
class NocDrop:
    """"Drop" a message with probability ``prob``.

    The mesh guarantees delivery, so a drop is modeled as the detect-
    and-retransmit penalty on the same message -- functional delivery is
    preserved (a survivable fault), timing degrades.
    """

    prob: float
    retransmit_delay: float = 256.0
    kind = "noc-drop"

    def spec(self):
        if self.retransmit_delay != 256.0:
            return f"noc-drop:{_num(self.prob)}@{_num(self.retransmit_delay)}"
        return f"noc-drop:{_num(self.prob)}"


@dataclass(frozen=True)
class DramError:
    """Transient (correctable) error on DRAM lines ``[lo_line, hi_line]``.

    Hits pay an ECC-detect-and-retry penalty (defaults to one extra DRAM
    access latency); data is corrected, so results stay bit-identical.
    """

    lo_line: int
    hi_line: int
    prob: float
    penalty: float = None
    kind = "dram-err"

    def spec(self):
        base = f"dram-err:{self.lo_line}-{self.hi_line}@{_num(self.prob)}"
        if self.penalty is not None:
            base += f"@{_num(self.penalty)}"
        return base


def _num(value):
    """Render a number without a trailing ``.0`` (specs stay compact)."""
    value = float(value)
    return str(int(value)) if value == int(value) else repr(value)


_ENGINE_RULES = (EngineCrash, EngineStall, ContextExhaustion)
_NOC_RULES = (NocDelay, NocDrop)
_DRAM_RULES = (DramError,)


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class FaultPlan:
    """An immutable, seeded set of fault rules.

    ``attach(machine)`` arms the plan on one machine and returns the
    :class:`FaultController` doing the injecting; one plan can be
    attached to any number of machines (each gets its own controller
    and its own ``random.Random(seed)`` stream).
    """

    def __init__(self, rules=(), seed=0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        for rule in self.rules:
            self._validate(rule)

    @staticmethod
    def _validate(rule):
        if isinstance(rule, _ENGINE_RULES):
            if rule.tile < 0:
                raise FaultPlanError(f"negative tile in {rule.spec()}")
            if not isinstance(rule, EngineCrash) and rule.duration <= 0:
                raise FaultPlanError(f"non-positive window in {rule.spec()}")
        elif isinstance(rule, _NOC_RULES):
            if not 0.0 <= rule.prob <= 1.0:
                raise FaultPlanError(f"probability out of [0, 1] in {rule.spec()}")
        elif isinstance(rule, _DRAM_RULES):
            if not 0.0 <= rule.prob <= 1.0:
                raise FaultPlanError(f"probability out of [0, 1] in {rule.spec()}")
            if rule.lo_line > rule.hi_line or rule.lo_line < 0:
                raise FaultPlanError(f"bad line range in {rule.spec()}")
        else:
            raise FaultPlanError(f"unknown fault rule {rule!r}")

    # -- spec grammar ---------------------------------------------------
    @classmethod
    def parse(cls, spec):
        """Parse a ``;``-separated spec string (see module docstring)."""
        rules = []
        seed = 0
        for clause in str(spec).split(";"):
            clause = clause.strip()
            if not clause:
                continue
            try:
                head, _, body = clause.partition(":")
                head = head.strip()
                body = body.strip()
                if head == "seed":
                    seed = int(body)
                elif head == "crash":
                    tile, _, at_time = body.partition("@")
                    rules.append(EngineCrash(int(tile), float(at_time or 0.0)))
                elif head in ("stall", "exhaust"):
                    tile, _, window = body.partition("@")
                    at_time, _, duration = window.partition("+")
                    rule_cls = EngineStall if head == "stall" else ContextExhaustion
                    rules.append(rule_cls(int(tile), float(at_time), float(duration)))
                elif head == "noc-delay":
                    prob, _, delay = body.partition("@")
                    rules.append(NocDelay(float(prob), float(delay)))
                elif head == "noc-drop":
                    prob, _, retrans = body.partition("@")
                    if retrans:
                        rules.append(NocDrop(float(prob), float(retrans)))
                    else:
                        rules.append(NocDrop(float(prob)))
                elif head == "dram-err":
                    lines, _, rest = body.partition("@")
                    lo, _, hi = lines.partition("-")
                    prob, _, penalty = rest.partition("@")
                    rules.append(
                        DramError(
                            int(lo),
                            int(hi),
                            float(prob),
                            float(penalty) if penalty else None,
                        )
                    )
                else:
                    raise FaultPlanError(f"unknown fault clause {clause!r}")
            except FaultPlanError:
                raise
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(f"bad fault clause {clause!r}: {exc}") from exc
        return cls(rules, seed=seed)

    def spec(self):
        """The plan's spec string; ``parse(spec())`` round-trips."""
        parts = [rule.spec() for rule in self.rules]
        parts.append(f"seed:{self.seed}")
        return "; ".join(parts)

    def attach(self, machine):
        """Arm the plan on ``machine``; returns the controller."""
        return FaultController(self, machine)

    def __eq__(self, other):
        return (
            isinstance(other, FaultPlan)
            and self.rules == other.rules
            and self.seed == other.seed
        )

    def __hash__(self):
        return hash((self.rules, self.seed))

    def __repr__(self):
        return f"FaultPlan({self.spec()!r})"


# ----------------------------------------------------------------------
# the controller: one plan armed on one machine
# ----------------------------------------------------------------------
class FaultController:
    """Injects one :class:`FaultPlan` into one machine.

    Attaching installs the ``faults`` hook on the machine, its NoC, and
    its memory controllers (only where the plan has matching rules, so
    un-faulted components keep their ``None`` guard), spawns *driver*
    contexts that apply engine rules at their scheduled times, and
    subscribes a :class:`~repro.sim.telemetry.spans.SpanTracker` to the
    invoke lifecycle so the watchdog's diagnostic dump can list in-flight
    invokes.
    """

    def __init__(self, plan, machine):
        self.plan = plan
        self.machine = machine
        self.rng = random.Random(plan.seed)
        #: kind -> count of injections performed so far.
        self.injected = {}
        self.spans = SpanTracker(max_spans=10_000)
        self._noc_rules = [r for r in plan.rules if isinstance(r, _NOC_RULES)]
        self._dram_rules = [r for r in plan.rules if isinstance(r, _DRAM_RULES)]
        self._engine_rules = [r for r in plan.rules if isinstance(r, _ENGINE_RULES)]
        for rule in self._engine_rules:
            if rule.tile >= machine.config.n_tiles:
                raise FaultPlanError(
                    f"rule {rule.spec()} targets tile {rule.tile} but the "
                    f"machine has {machine.config.n_tiles} tiles"
                )
        # Cached once per controller: per-injection DEBUG records are
        # emitted only when a handler actually wants them (noc-delay
        # plans inject thousands of times).
        self._log_injections = _log.isEnabledFor(10)  # logging.DEBUG
        self._handlers = (
            (InvokeDispatched, self.spans.invoke_dispatched),
            (InvokeStalled, self.spans.invoke_stalled),
            (EngineTask, self.spans.engine_task),
            (EngineTaskStart, self.spans.engine_start),
            (EngineTaskDone, self.spans.engine_done),
            (FutureFilled, self.spans.future_filled),
            (InvokeRetried, self.spans.invoke_retried),
            (DegradedToFallback, self.spans.degraded),
        )
        self._attached = False
        self.attach()

    # -- wiring ---------------------------------------------------------
    def attach(self):
        if self._attached:
            return self
        machine = self.machine
        machine.faults = self
        if self._noc_rules:
            machine.hierarchy.noc.faults = self
        if self._dram_rules:
            for controller in machine.hierarchy.mem.controllers:
                controller.faults = self
        for event_type, handler in self._handlers:
            machine.events.subscribe(event_type, handler)
        for rule in self._engine_rules:
            machine.spawn(
                self._engine_rule_driver(rule),
                tile=min(rule.tile, machine.config.n_tiles - 1),
                name=f"fault:{rule.kind}@tile{rule.tile}",
                at_time=rule.at_time,
            )
        self._attached = True
        _log.info(
            "faults.armed",
            extra={"spec": self.plan.spec(), "rules": len(self.plan.rules)},
        )
        return self

    def detach(self):
        """Stop injecting (idempotent). Already-applied state faults
        (failed engines, open windows) are not undone."""
        if not self._attached:
            return self
        machine = self.machine
        if machine.faults is self:
            machine.faults = None
        if machine.hierarchy.noc.faults is self:
            machine.hierarchy.noc.faults = None
        for controller in machine.hierarchy.mem.controllers:
            if controller.faults is self:
                controller.faults = None
        for event_type, handler in self._handlers:
            machine.events.unsubscribe(event_type, handler)
        self._attached = False
        return self

    # -- injection ------------------------------------------------------
    def _record(self, kind, where=None, extra_cycles=0.0):
        self.injected[kind] = self.injected.get(kind, 0) + 1
        machine = self.machine
        machine.stats.add("faults.injected")
        if machine.events.active:
            machine.events.emit(
                FaultInjected(kind, where, machine.sim_time(), extra_cycles)
            )
        if self._log_injections:
            _log.debug(
                "faults.injected",
                extra={
                    "kind": kind,
                    "where": where,
                    "sim_time": machine.sim_time(),
                    "extra_cycles": extra_cycles,
                },
            )

    def _engine_rule_driver(self, rule):
        """A zero-duration context applying ``rule`` at its fire time."""
        engines = self.machine.engines
        if engines is None:
            # A baseline machine (no Leviathan runtime) has no engines
            # to fault; the rule is inert.
            self.machine.stats.add("faults.inert_rules")
            return
        engine = engines[rule.tile]
        now = self.machine.now
        if isinstance(rule, EngineCrash):
            self._record(rule.kind, rule.tile)
            engine.fail(at_time=max(now, rule.at_time))
            return
        until = rule.at_time + rule.duration
        self._record(rule.kind, rule.tile)
        if isinstance(rule, EngineStall):
            engine.stall(until)
        else:
            engine.exhaust(until)
        self.machine.spawn(
            self._recovery_driver(engine),
            tile=rule.tile,
            name=f"fault:{rule.kind}-recover@tile{rule.tile}",
            at_time=until,
        )
        return
        yield  # pragma: no cover -- makes this a generator function

    def _recovery_driver(self, engine):
        """Drain the spill queue when a stall/exhaustion window closes."""
        engine.kick(self.machine.now)
        return
        yield  # pragma: no cover

    def on_noc_message(self, src, dst, payload_bytes):
        """Extra cycles to add to one NoC message (timing fault)."""
        extra = 0.0
        for rule in self._noc_rules:
            if self.rng.random() >= rule.prob:
                continue
            added = rule.delay if isinstance(rule, NocDelay) else rule.retransmit_delay
            self.machine.stats.add("faults.noc")
            self._record(rule.kind, dst, added)
            extra += added
        return extra

    def on_dram_access(self, controller, dram_line, is_write):
        """Extra cycles to add to one DRAM-cycling access (ECC retry)."""
        extra = 0.0
        for rule in self._dram_rules:
            if not rule.lo_line <= dram_line <= rule.hi_line:
                continue
            if self.rng.random() >= rule.prob:
                continue
            penalty = rule.penalty
            if penalty is None:
                penalty = self.machine.config.memory.latency
            self.machine.stats.add("faults.dram_errors")
            self._record(rule.kind, controller, penalty)
            extra += penalty
        return extra

    # -- reporting ------------------------------------------------------
    @property
    def total_injected(self):
        return sum(self.injected.values())

    def report(self):
        """A JSON-ready summary of what this controller injected."""
        counters = self.machine.stats.counters
        return {
            "spec": self.plan.spec(),
            "seed": self.plan.seed,
            "injected": dict(sorted(self.injected.items())),
            "total_injected": self.total_injected,
            "engine_failures": counters.get("faults.engine_failures", 0),
            "rerouted_tasks": counters.get("faults.rerouted_tasks", 0),
            "on_core_tasks": counters.get("faults.on_core_tasks", 0),
            "invoke_retries": counters.get("invoke.retries", 0),
            "invoke_spill_bytes": counters.get("invoke.spill_bytes", 0),
            "degraded_streams": counters.get("stream.degraded", 0),
            "open_invokes": len(self.spans.open_spans),
        }

    def __repr__(self):
        return f"FaultController({self.plan.spec()!r}, injected={self.total_injected})"


# ----------------------------------------------------------------------
# the process-wide session (what --faults installs)
# ----------------------------------------------------------------------
_session = None


def notify_machine_created(machine):
    """Called by ``Machine.__init__``; no-op unless a session is installed."""
    if _session is not None:
        _session.observe(machine)


def active_session():
    return _session


class FaultSession:
    """Attach a fault plan to every machine built while installed."""

    def __init__(self, plan):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan
        self.controllers = []

    # -- hook management ------------------------------------------------
    def install(self):
        global _session
        if _session is not None and _session is not self:
            raise RuntimeError("another FaultSession is already installed")
        _session = self
        return self

    def uninstall(self):
        global _session
        if _session is self:
            _session = None
        return self

    def __enter__(self):
        return self.install()

    def __exit__(self, *exc):
        self.uninstall()
        return False

    # -- collection -----------------------------------------------------
    def observe(self, machine):
        controller = self.plan.attach(machine)
        self.controllers.append(controller)
        return controller

    def detach(self):
        for controller in self.controllers:
            controller.detach()
        return self

    def reset(self):
        self.detach()
        self.controllers = []
        return self

    # -- reporting ------------------------------------------------------
    @property
    def total_injected(self):
        return sum(controller.total_injected for controller in self.controllers)

    def report(self):
        return {
            "spec": self.plan.spec(),
            "seed": self.plan.seed,
            "machines": [controller.report() for controller in self.controllers],
            "total_injected": self.total_injected,
        }

    def save(self, outdir):
        """Write ``fault_report.json`` into ``outdir``; returns the path."""
        os.makedirs(outdir, exist_ok=True)
        path = os.path.join(outdir, "fault_report.json")
        with open(path, "w") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

"""The access-path request/result pair.

Every load/store entering the hierarchy becomes a
:class:`MemoryRequest` per cache line touched; the pipeline components
(:class:`~repro.sim.hierarchy.PrivateCachePath`,
:class:`~repro.sim.hierarchy.SharedCachePath`, the DRAM path) thread
the request through, accumulating latency and recording a per-level
outcome at each step. :meth:`Hierarchy.access` folds the per-line
requests into one :class:`AccessResult` -- the latency of the slowest
line plus the concatenated outcome trail -- which is what operations,
the tracer, and experiment reports consume.

Outcomes are ``(level, outcome)`` pairs. Levels: ``l1``, ``l2``,
``engine_l1``, ``llc``, ``dram``. Outcomes:

- ``hit`` / ``miss``: an ordinary lookup at that level;
- ``snoop_hit`` / ``snoop_miss``: the engine L1d's snoop of the tile's
  L2 (clustered coherence, Sec. VI-A1);
- ``construct``: a data-triggered constructor handled the fill
  (phantom data, Sec. V-B2) -- nothing below this level was accessed;
- ``fill``: the line was fetched from DRAM into the LLC;
- ``direct``: a near-memory engine read DRAM at the controller,
  bypassing the LLC (Sec. IX);
- ``bypass``: an engine access to an LLC-level morph line skipped the
  private caches and operated in the bank.
"""

from collections import Counter

#: Level names, in pipeline order.
LEVELS = ("l1", "engine_l1", "l2", "llc", "dram")

#: Outcome names (see module docstring).
HIT = "hit"
MISS = "miss"
SNOOP_HIT = "snoop_hit"
SNOOP_MISS = "snoop_miss"
CONSTRUCT = "construct"
FILL = "fill"
DIRECT = "direct"
BYPASS = "bypass"


class MemoryRequest:
    """One cache line's walk down the access path.

    Components mutate the request in place: ``latency`` accumulates the
    critical-path cycles, ``outcomes`` records the per-level trail.
    """

    __slots__ = (
        "tile",
        "line",
        "size",
        "is_write",
        "engine",
        "near_memory",
        "latency",
        "outcomes",
    )

    def __init__(self, tile, line, size, is_write, engine=False, near_memory=False):
        self.tile = tile
        self.line = line
        self.size = size
        self.is_write = is_write
        self.engine = engine
        self.near_memory = near_memory
        self.latency = 0.0
        self.outcomes = []

    def record(self, level, outcome):
        """Append a ``(level, outcome)`` step to the request's trail."""
        self.outcomes.append((level, outcome))

    def __repr__(self):
        op = "store" if self.is_write else "load"
        return (
            f"MemoryRequest({op} line {self.line:#x} by "
            f"{'engine' if self.engine else 'core'}{self.tile}, "
            f"latency={self.latency:.0f}, outcomes={self.outcomes})"
        )


class AccessResult:
    """The completed request: latency plus the per-level outcome trail.

    For multi-line accesses the latency is that of the slowest line
    (lines overlap) and ``outcomes`` concatenates every line's trail,
    so outcome *counts* still attribute all traffic correctly.
    """

    __slots__ = (
        "tile",
        "addr",
        "size",
        "is_write",
        "engine",
        "near_memory",
        "latency",
        "outcomes",
    )

    def __init__(self, tile, addr, size, is_write, engine, near_memory, latency, outcomes):
        self.tile = tile
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.engine = engine
        self.near_memory = near_memory
        self.latency = latency
        self.outcomes = outcomes

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def served_by(self):
        """The terminal ``(level, outcome)`` step (None if empty)."""
        return self.outcomes[-1] if self.outcomes else None

    def count(self, level, outcome=None):
        """Occurrences of ``level`` (optionally of a specific outcome)."""
        return sum(
            1
            for lvl, out in self.outcomes
            if lvl == level and (outcome is None or out == outcome)
        )

    def outcome_counts(self):
        """``Counter`` of ``(level, outcome)`` pairs."""
        return Counter(self.outcomes)

    def __repr__(self):
        op = "store" if self.is_write else "load"
        return (
            f"AccessResult({op} {self.size}B @ {self.addr:#x} by "
            f"{'engine' if self.engine else 'core'}{self.tile}, "
            f"latency={self.latency:.0f}, outcomes={self.outcomes})"
        )

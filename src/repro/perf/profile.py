"""Profiler harness: cProfile with subsystem attribution + flamegraphs.

:class:`ProfileHarness` runs a callable under two collectors at once:

- **cProfile** (deterministic): every function's own time (``tottime``)
  is attributed to a *subsystem* by its module path -- ``sim.scheduler``,
  ``sim.cache``, ``sim.noc``, ``core.offload``, ``telemetry``, ... --
  giving a per-subsystem wall-time breakdown whose buckets sum exactly
  to the total profiled time (everything unmatched lands in ``other``),
  plus a top-N hot-function table and a ``pstats`` dump for ad-hoc
  digging.
- **a stack sampler** (statistical): a daemon thread snapshots the
  profiled thread's Python stack every few milliseconds and folds the
  samples into Brendan-Gregg collapsed-stack lines
  (``root;caller;callee count``), the input format of ``flamegraph.pl``
  and https://www.speedscope.app.

Both collectors observe only; the profiled function's results are
bit-identical to an unprofiled call (the simulator consults no clocks).
"""

import cProfile
import json
import os
import pstats
import sys
import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.perf.fingerprint import fingerprint

#: Module-prefix -> subsystem label, first match wins (order matters:
#: specific prefixes before their parents).
SUBSYSTEM_RULES = [
    ("repro.sim.telemetry", "telemetry"),
    ("repro.sim.faults", "sim.faults"),
    ("repro.sim.noc", "sim.noc"),
    ("repro.sim.dram", "sim.dram"),
    ("repro.sim.scheduler", "sim.scheduler"),
    ("repro.sim.thread", "sim.scheduler"),
    ("repro.sim.ops", "sim.scheduler"),
    ("repro.sim.events", "sim.scheduler"),
    ("repro.sim.system", "sim.scheduler"),
    ("repro.sim.cache", "sim.cache"),
    ("repro.sim.hierarchy", "sim.cache"),
    ("repro.sim.access", "sim.cache"),
    ("repro.sim.coherence", "sim.cache"),
    ("repro.sim.prefetch", "sim.cache"),
    ("repro.sim.address", "sim.cache"),
    ("repro.sim.stats", "sim.stats"),
    ("repro.sim", "sim.other"),
    ("repro.core.stream", "core.stream"),
    ("repro.core.morph", "core.morph"),
    ("repro.core", "core.offload"),
    ("repro.workloads", "workloads"),
    ("repro.experiments", "experiments"),
    ("repro.perf", "perf"),
    ("repro", "repro.other"),
]


def module_of(filename):
    """Best-effort dotted module path for a profiler filename."""
    if not filename or filename.startswith("<"):
        return ""
    path = filename.replace(os.sep, "/")
    marker = "/repro/"
    index = path.rfind(marker)
    if index < 0:
        return ""
    dotted = path[index + 1 :]
    if dotted.endswith(".py"):
        dotted = dotted[:-3]
    return dotted.replace("/", ".")


def classify(filename):
    """Subsystem label for one profiled file (``other`` off-repo)."""
    module = module_of(filename)
    if module:
        for prefix, label in SUBSYSTEM_RULES:
            if module == prefix or module.startswith(prefix + "."):
                return label
    return "other"


@dataclass
class ProfileReport:
    """Digested cProfile output: attribution + hot functions."""

    #: Total profiled time: the sum of every function's own time.
    total_s: float = 0.0
    #: Subsystem label -> seconds of own time. Sums to ``total_s``.
    subsystems: dict = field(default_factory=dict)
    #: Top-N functions by own time.
    hot: list = field(default_factory=list)

    @classmethod
    def from_profile(cls, profile, top=30):
        stats = pstats.Stats(profile)
        total = 0.0
        subsystems = {}
        rows = []
        for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in (
            stats.stats.items()
        ):
            total += tt
            label = classify(filename)
            subsystems[label] = subsystems.get(label, 0.0) + tt
            rows.append(
                {
                    "function": funcname,
                    "module": module_of(filename) or filename,
                    "line": lineno,
                    "subsystem": label,
                    "calls": nc,
                    "tottime_s": tt,
                    "cumtime_s": ct,
                }
            )
        rows.sort(key=lambda row: row["tottime_s"], reverse=True)
        return cls(total_s=total, subsystems=subsystems, hot=rows[:top])

    def to_dict(self):
        return {
            "total_s": round(self.total_s, 6),
            "subsystems": {
                label: round(seconds, 6)
                for label, seconds in sorted(
                    self.subsystems.items(), key=lambda kv: -kv[1]
                )
            },
            "hot": [
                {**row, "tottime_s": round(row["tottime_s"], 6),
                 "cumtime_s": round(row["cumtime_s"], 6)}
                for row in self.hot
            ],
        }

    def render(self, top=15):
        lines = [f"profiled {self.total_s:.3f}s of function time"]
        lines.append("per-subsystem breakdown:")
        for label, seconds in sorted(
            self.subsystems.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * seconds / self.total_s if self.total_s else 0.0
            lines.append(f"  {label:16s} {seconds:8.3f}s  {share:5.1f}%")
        lines.append(f"top {min(top, len(self.hot))} functions by own time:")
        for row in self.hot[:top]:
            lines.append(
                f"  {row['tottime_s']:8.3f}s {row['calls']:>9d}x "
                f"{row['module']}:{row['function']} [{row['subsystem']}]"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# collapsed stacks
# ----------------------------------------------------------------------
def _frame_name(frame):
    module = frame.f_globals.get("__name__") or module_of(
        frame.f_code.co_filename
    ) or "?"
    name = f"{module}.{frame.f_code.co_name}"
    # ';' separates frames and ' ' separates the count in the folded
    # format; neither may appear inside a frame name.
    return name.replace(";", ":").replace(" ", "_")


def _stack_key(frame):
    """Root-first tuple of frame names for one sampled stack."""
    names = []
    while frame is not None:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()
    return tuple(names)


class StackSampler:
    """Samples one thread's Python stack from a daemon thread.

    ``sys._current_frames()`` snapshots are taken every ``interval``
    seconds and accumulated as ``stack-tuple -> samples``; the profiled
    code is never touched, so sampling composes with cProfile (which
    hooks only call events on its own thread).
    """

    def __init__(self, interval=0.002, target_ident=None):
        self.interval = interval
        self.target_ident = (
            threading.get_ident() if target_ident is None else target_ident
        )
        self.counts = Counter()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._sample_loop, name="perf-stack-sampler", daemon=True
        )

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        self._thread.join()

    def _sample_loop(self):
        while not self._stop.is_set():
            frame = sys._current_frames().get(self.target_ident)
            if frame is not None:
                self.counts[_stack_key(frame)] += 1
            del frame
            self._stop.wait(self.interval)

    def folded(self):
        return fold_stacks(self.counts)


def fold_stacks(counts):
    """Collapsed-stack text: one ``frame;frame;... count`` line each."""
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(counts.items())
        if stack
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
class ProfileHarness:
    """Run a callable under cProfile + the stack sampler, keep both.

    After :meth:`run`, ``self.report`` holds the
    :class:`ProfileReport`, ``self.folded`` the collapsed-stack text,
    and :meth:`save` writes the artifact triple (``profile.json``,
    ``profile.pstats``, ``stacks.folded``) into a directory.
    """

    def __init__(self, top=30, sample_interval=0.002, sample=True):
        self.top = top
        self.sample_interval = sample_interval
        self.sample = sample
        self.profile = None
        self.report = None
        self.folded = ""

    def run(self, fn, *args, **kwargs):
        sampler = None
        if self.sample:
            sampler = StackSampler(interval=self.sample_interval).start()
        profile = cProfile.Profile()
        try:
            result = profile.runcall(fn, *args, **kwargs)
        finally:
            if sampler is not None:
                sampler.stop()
                self.folded = sampler.folded()
            self.profile = profile
            self.report = ProfileReport.from_profile(profile, top=self.top)
        return result

    def save(self, outdir):
        """Write profile.json / profile.pstats / stacks.folded."""
        if self.report is None:
            raise RuntimeError("nothing profiled yet; call run() first")
        os.makedirs(outdir, exist_ok=True)
        payload = {"fingerprint": fingerprint(), **self.report.to_dict()}
        with open(os.path.join(outdir, "profile.json"), "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        pstats.Stats(self.profile).dump_stats(
            os.path.join(outdir, "profile.pstats")
        )
        with open(os.path.join(outdir, "stacks.folded"), "w") as handle:
            handle.write(self.folded)
        return outdir

"""Benchmark history files: ``BENCH_<git-sha>.json``.

One file per bench invocation, named after the commit that produced it,
embedding the machine/python fingerprint -- the benchmark *trajectory*
across PRs is the set of these files, and
:mod:`repro.perf.compare` renders the verdict between any two of them
(or against the committed budget baseline,
``benchmarks/bench_baseline.json``).
"""

import json
import os
import time

from repro.perf.fingerprint import fingerprint, short_sha

#: Bump when the payload layout changes.
SCHEMA_VERSION = 1


def bench_payload(results, trials, warmup, fp=None):
    """The JSON payload for one bench run (a list of BenchResults)."""
    fp = fp or fingerprint()
    return {
        "schema": SCHEMA_VERSION,
        "kind": "leviathan-bench",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "fingerprint": fp,
        "trials": trials,
        "warmup": warmup,
        "benchmarks": {res.name: res.to_dict() for res in results},
    }


def history_filename(fp=None):
    return f"BENCH_{short_sha(fp)}.json"


def write_history(payload, out_dir=".", path=None):
    """Write ``payload``; returns the file path actually written."""
    if path is None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, history_filename(payload["fingerprint"]))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_history(path):
    """Load and minimally validate one history (or baseline) file."""
    with open(path) as handle:
        payload = json.load(handle)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path}: not a bench history file (no 'benchmarks')")
    for name, entry in benchmarks.items():
        if "median_s" not in entry:
            raise ValueError(f"{path}: benchmark {name!r} has no median_s")
    return payload

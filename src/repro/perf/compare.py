"""Noise-aware regression verdicts between two bench payloads.

Wall-clock benchmarks are noisy; a naive ``new > old * factor`` check
either cries wolf on runner jitter or needs margins so wide it misses
real regressions. The verdict here demands *both* signals:

- the new median exceeds ``factor`` x the old median (the magnitude
  test), **and**
- the new median lies outside the old run's interquartile range (the
  noise test: the old trials themselves never spread that far).

Improvements are flagged symmetrically (``faster``), benchmarks present
on only one side are reported but never fail the comparison, and
:func:`has_regression` drives the CLI's nonzero exit.
"""

from dataclasses import dataclass

#: Default magnitude threshold. The committed baseline records budgets
#: at ~2x a warm dev-machine run, so with factor 2 the CI gate trips at
#: ~4x a typical dev machine -- the same generosity the old smoke test
#: used, now per benchmark.
DEFAULT_FACTOR = 2.0


@dataclass
class Verdict:
    """The comparison outcome for one benchmark name."""

    name: str
    status: str  # "ok" | "faster" | "REGRESSION" | "new" | "missing"
    old_median: float = None
    new_median: float = None
    ratio: float = None
    note: str = ""


def _verdict_for(name, old, new, factor):
    om = old["median_s"]
    nm = new["median_s"]
    ratio = (nm / om) if om > 0 else None
    q1 = old.get("q1_s", om)
    q3 = old.get("q3_s", om)
    if om > 0 and nm > om * factor and nm > q3:
        return Verdict(
            name,
            "REGRESSION",
            om,
            nm,
            ratio,
            note=f"median {nm:.4f}s > {factor:g}x baseline {om:.4f}s "
            f"and above its IQR (q3={q3:.4f}s)",
        )
    if om > 0 and nm * factor < om and nm < q1:
        return Verdict(name, "faster", om, nm, ratio)
    return Verdict(name, "ok", om, nm, ratio)


def compare(old_payload, new_payload, factor=DEFAULT_FACTOR):
    """Verdicts for every benchmark present in either payload."""
    old_b = old_payload["benchmarks"]
    new_b = new_payload["benchmarks"]
    verdicts = []
    for name in sorted(set(old_b) | set(new_b)):
        if name not in new_b:
            verdicts.append(
                Verdict(name, "missing", old_median=old_b[name]["median_s"],
                        note="present in baseline only")
            )
        elif name not in old_b:
            verdicts.append(
                Verdict(name, "new", new_median=new_b[name]["median_s"],
                        note="no baseline entry yet")
            )
        else:
            verdicts.append(_verdict_for(name, old_b[name], new_b[name], factor))
    return verdicts


def has_regression(verdicts):
    return any(v.status == "REGRESSION" for v in verdicts)


def render_verdicts(verdicts, factor=DEFAULT_FACTOR):
    """The verdict table the CLI prints."""
    header = (
        f"{'benchmark':28s} {'baseline':>10s} {'current':>10s} "
        f"{'ratio':>7s}  verdict"
    )
    lines = [header, "-" * len(header)]
    for v in verdicts:
        old = f"{v.old_median:9.4f}s" if v.old_median is not None else "      --  "
        new = f"{v.new_median:9.4f}s" if v.new_median is not None else "      --  "
        ratio = f"{v.ratio:6.2f}x" if v.ratio is not None else "    -- "
        tail = f"  ({v.note})" if v.note else ""
        lines.append(f"{v.name:28s} {old} {new} {ratio}  {v.status}{tail}")
    regressions = sum(1 for v in verdicts if v.status == "REGRESSION")
    lines.append(
        f"{regressions} regression(s) at factor {factor:g} "
        f"(regression = median beyond factor AND outside baseline IQR)"
    )
    return "\n".join(lines)

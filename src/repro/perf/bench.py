"""Benchmark execution: warmup, trials, median/IQR, steps/second.

A :class:`Benchmark` is a *named recipe*: ``make()`` builds one fresh,
fully-set-up instance of the scenario (machine construction, table
population, ...) and returns a zero-argument callable; calling it runs
the timed section and returns the number of work units it performed
(scheduler ops, cache accesses, NoC messages, simulated instructions).
Setup cost is thereby excluded from every timing, and each trial runs
on a pristine machine, so trials are independent and the workload stays
bit-deterministic.

:func:`run_benchmark` performs ``warmup`` throwaway runs, then
``trials`` timed runs, and folds them into a :class:`BenchResult` with
the median, the interquartile range (the noise band the regression
verdict in :mod:`repro.perf.compare` uses), and ``units / median`` as a
steps-per-second normalization that survives resizing a benchmark.
"""

import statistics
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Benchmark:
    """One named benchmark recipe (see :mod:`repro.perf.registry`)."""

    name: str
    #: ``"micro"`` (one subsystem in a loop) or ``"macro"`` (a paper
    #: case study end to end).
    kind: str
    #: Zero-arg factory: returns the timed callable. Everything the
    #: factory does is setup and excluded from the measurement.
    make: callable
    #: What one unit means (``"ops"``, ``"accesses"``, ``"invokes"``...).
    unit: str = "steps"
    description: str = ""


@dataclass
class BenchResult:
    """Trial timings of one benchmark, folded into robust statistics."""

    name: str
    kind: str
    unit: str
    units: int
    trials_s: list = field(default_factory=list)
    median_s: float = 0.0
    q1_s: float = 0.0
    q3_s: float = 0.0

    @property
    def iqr_s(self):
        return self.q3_s - self.q1_s

    @property
    def steps_per_sec(self):
        if self.median_s <= 0:
            return 0.0
        return self.units / self.median_s

    @classmethod
    def from_trials(cls, bench, trials_s, units):
        q1, q3 = quartiles(trials_s)
        return cls(
            name=bench.name,
            kind=bench.kind,
            unit=bench.unit,
            units=units,
            trials_s=list(trials_s),
            median_s=statistics.median(trials_s),
            q1_s=q1,
            q3_s=q3,
        )

    def to_dict(self):
        return {
            "kind": self.kind,
            "unit": self.unit,
            "units": self.units,
            "trials_s": [round(t, 6) for t in self.trials_s],
            "median_s": round(self.median_s, 6),
            "q1_s": round(self.q1_s, 6),
            "q3_s": round(self.q3_s, 6),
            "iqr_s": round(self.iqr_s, 6),
            "steps_per_sec": round(self.steps_per_sec, 1),
        }


def quartiles(samples):
    """(q1, q3) of ``samples``; degenerate for fewer than two samples."""
    values = sorted(samples)
    if len(values) < 2:
        return values[0], values[0]
    q1, _q2, q3 = statistics.quantiles(values, n=4, method="inclusive")
    return q1, q3


def run_benchmark(bench, trials=5, warmup=1, timer=time.perf_counter):
    """Run one benchmark; returns its :class:`BenchResult`.

    Every warmup and trial builds a fresh scenario via ``bench.make()``
    (untimed) and times only the returned callable. The unit count must
    be identical across trials -- a drifting count means the benchmark
    is not deterministic, which would poison steps/sec comparisons.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    for _ in range(warmup):
        bench.make()()
    timings = []
    units = None
    for _ in range(trials):
        timed = bench.make()
        start = timer()
        count = timed()
        elapsed = timer() - start
        count = int(count if count is not None else 0)
        if units is None:
            units = count
        elif count != units:
            raise RuntimeError(
                f"benchmark {bench.name!r} is nondeterministic: "
                f"trial did {count} {bench.unit}, previous trials did {units}"
            )
        timings.append(elapsed)
    return BenchResult.from_trials(bench, timings, units or 0)


def render_results(results):
    """An aligned text table of :class:`BenchResult` rows."""
    header = (
        f"{'benchmark':28s} {'kind':5s} {'median':>10s} {'iqr':>10s} "
        f"{'steps/s':>12s} {'units':>10s}"
    )
    lines = [header, "-" * len(header)]
    for res in results:
        lines.append(
            f"{res.name:28s} {res.kind:5s} {res.median_s:9.4f}s "
            f"{res.iqr_s:9.4f}s {res.steps_per_sec:12.0f} "
            f"{res.units:>10d} {res.unit}"
        )
    return "\n".join(lines)

"""The named benchmark registry: what the host-performance lab runs.

Micro benchmarks put one simulator subsystem in a tight loop (the
scheduler step loop, the private/shared cache access paths, a NoC hop,
an invoke round-trip, stream push/pop, morph construct/destruct); macro
benchmarks run a paper case study end to end (the Fig. 18 hash table,
the Fig. 20 HATS traversal) exactly as the experiment harness would, so
profiler output maps one-to-one onto real evaluation cost.

Every benchmark is deterministic: the same work-unit count every trial
(:func:`repro.perf.bench.run_benchmark` enforces this), no RNG outside
the workloads' own seeded generators, and -- for macros -- application
results bit-identical to a direct ``run_*`` call, which
``tests/test_perf_bench.py`` locks in.
"""

from repro.perf.bench import Benchmark

_REGISTRY = {}


def register(bench):
    """Add ``bench``; duplicate names are a programming error."""
    if bench.name in _REGISTRY:
        raise ValueError(f"benchmark {bench.name!r} already registered")
    _REGISTRY[bench.name] = bench
    return bench


def get(name):
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(names())}"
        )
    return _REGISTRY[name]


def names():
    return sorted(_REGISTRY)


def select(pattern=None):
    """Benchmarks whose name contains ``pattern`` (all, when None)."""
    return [
        _REGISTRY[name]
        for name in names()
        if pattern is None or pattern in name
    ]


# ----------------------------------------------------------------------
# micro benchmark scenarios
# ----------------------------------------------------------------------
#: Work-loop sizes. Sized so each trial lands in the 20-500 ms band:
#: long enough to dwarf timer resolution, short enough that the full
#: suite with warmup + 3 trials stays under a minute on a laptop.
SCHED_CONTEXTS = 8
SCHED_OPS = 5000
CACHE_PRIVATE_LINES = 8
CACHE_SHARED_LINES = 512
CACHE_ACCESSES = 20000
CACHE_SHARED_ACCESSES = 8000
NOC_MESSAGES = 100000
INVOKES = 2000
STREAM_ITEMS = 4000
MORPH_ACTORS = 2048


def _small_machine():
    from repro.sim.config import small_config
    from repro.sim.system import Machine

    return Machine(small_config())


def _make_scheduler_steps():
    """The scheduler's heap loop: N contexts leapfrogging on Compute."""
    from repro.sim.ops import Compute

    machine = _small_machine()

    def program(n):
        for i in range(n):
            yield Compute(1 + (i & 3))

    for t in range(SCHED_CONTEXTS):
        machine.spawn(
            program(SCHED_OPS),
            tile=t % machine.config.n_tiles,
            name=f"bench-sched{t}",
        )

    def timed():
        machine.run()
        return SCHED_CONTEXTS * SCHED_OPS

    return timed


def _make_cache_path(lines, accesses):
    from repro.sim.ops import Load

    machine = _small_machine()
    base = machine.address_space.alloc(lines * 64, align=64)

    def program():
        for i in range(accesses):
            yield Load(base + (i % lines) * 64, 8)

    machine.spawn(program(), tile=0, name="bench-cache")

    def timed():
        machine.run()
        return accesses

    return timed


def _make_noc_hop():
    """Raw NoC sends, no scheduler: the per-message cost itself."""
    machine = _small_machine()
    noc = machine.hierarchy.noc
    n_tiles = machine.config.n_tiles

    def timed():
        send = noc.send
        for i in range(NOC_MESSAGES):
            send(i % n_tiles, (i >> 2) % n_tiles, 64)
        return NOC_MESSAGES

    return timed


def _make_invoke_round_trip():
    from repro.core.actor import Actor, action
    from repro.core.future import Future, WaitFuture
    from repro.core.offload import Invoke, Location
    from repro.core.runtime import Leviathan
    from repro.sim.ops import Compute, Load

    class Cell(Actor):
        SIZE = 8

        @action
        def read(self, env):
            yield Load(self.addr, 8)
            yield Compute(1)
            return env.machine.mem.get(self.addr, 0)

    machine = _small_machine()
    runtime = Leviathan(machine)
    cell = runtime.allocator_for(Cell, capacity=8).allocate()
    machine.mem[cell.addr] = 7
    results = []

    def program():
        for _ in range(INVOKES):
            future = Future(machine, 0)
            yield Invoke(
                cell, "read", (), location=Location.DYNAMIC,
                future=future, args_bytes=8,
            )
            results.append((yield WaitFuture(future)))

    machine.spawn(program(), tile=0, name="bench-invoke")

    def timed():
        machine.run()
        if len(results) != INVOKES or any(v != 7 for v in results):
            raise RuntimeError("invoke benchmark returned wrong values")
        return INVOKES

    return timed


def _make_stream_push_pop():
    from repro.core.runtime import Leviathan
    from repro.core.stream import STREAM_END, Stream
    from repro.sim.ops import Compute

    class RangeStream(Stream):
        def gen_stream(self, env):
            for i in range(STREAM_ITEMS):
                yield Compute(1)
                yield from self.push(i)

    machine = _small_machine()
    runtime = Leviathan(machine)
    stream = RangeStream(
        runtime, object_size=8, buffer_entries=32, consumer_tile=0
    )
    stream.start()
    got = []

    def consumer():
        while True:
            value = yield from stream.consume()
            if value is STREAM_END:
                return
            got.append(value)

    machine.spawn(consumer(), tile=0, name="bench-stream")

    def timed():
        machine.run()
        if len(got) != STREAM_ITEMS:
            raise RuntimeError("stream benchmark dropped items")
        return STREAM_ITEMS

    return timed


def _make_morph_trigger():
    from repro.core.morph import Morph
    from repro.core.runtime import Leviathan
    from repro.sim.ops import Compute, Load

    class TouchMorph(Morph):
        triggered = 0

        def construct(self, view, index):
            TouchMorph.triggered += 1
            self.machine.mem[self.get_actor_addr(index)] = index
            yield Compute(1)

        def destruct(self, view, index, dirty):
            TouchMorph.triggered += 1
            yield Compute(1)

    machine = _small_machine()
    runtime = Leviathan(machine)
    TouchMorph.triggered = 0
    morph = TouchMorph(runtime, "l2", MORPH_ACTORS, 8)

    def program():
        for i in range(MORPH_ACTORS):
            yield Load(morph.get_actor_addr(i), 8)

    machine.spawn(program(), tile=0, name="bench-morph")

    def timed():
        machine.run()
        morph.unregister()  # flush: every cached object destructs
        return TouchMorph.triggered

    return timed


# ----------------------------------------------------------------------
# macro benchmark scenarios (paper case studies, end to end)
# ----------------------------------------------------------------------
#: Fig. 18 at the speed-smoke scale the repo has tracked since PR 1.
FIG18_PARAMS = {
    "n_buckets": 64,
    "nodes_per_bucket": 32,
    "n_threads": 16,
    "lookups_per_thread": 32,
}
FIG18_TILES = 16

#: Fig. 20 scaled down (quarter-size graph) to keep one trial ~0.5 s.
HATS_PARAMS = {"n_vertices": 1024, "n_edges": 8192}
HATS_TILES = 16


def macro_units(result):
    """Simulated instructions executed: the macro 'steps' normalizer."""
    stats = result.stats
    return int(
        stats.get("core.instructions", 0) + stats.get("engine.instructions", 0)
    )


def _make_macro(fn_path, params, n_tiles):
    import importlib

    module_name, _, fn_name = fn_path.partition(":")
    runner = getattr(importlib.import_module(module_name), fn_name)

    def timed():
        result = runner(dict(params), n_tiles=n_tiles)
        timed.result = result
        return macro_units(result)

    return timed


for _bench in [
    Benchmark(
        "scheduler.steps",
        "micro",
        _make_scheduler_steps,
        unit="ops",
        description=f"{SCHED_CONTEXTS} contexts x {SCHED_OPS} Compute ops "
        "through the timestamp-ordered step loop",
    ),
    Benchmark(
        "cache.private_path",
        "micro",
        lambda: _make_cache_path(CACHE_PRIVATE_LINES, CACHE_ACCESSES),
        unit="accesses",
        description="loads served by the private L1/L2 path "
        f"({CACHE_PRIVATE_LINES} hot lines)",
    ),
    Benchmark(
        "cache.shared_path",
        "micro",
        lambda: _make_cache_path(CACHE_SHARED_LINES, CACHE_SHARED_ACCESSES),
        unit="accesses",
        description="loads spilling past the L2 into the shared LLC path "
        f"({CACHE_SHARED_LINES} lines)",
    ),
    Benchmark(
        "noc.hop",
        "micro",
        _make_noc_hop,
        unit="messages",
        description="raw MeshNoc.send cost (XY hops, flit accounting)",
    ),
    Benchmark(
        "invoke.round_trip",
        "micro",
        _make_invoke_round_trip,
        unit="invokes",
        description="Invoke -> engine action -> future fill -> WaitFuture",
    ),
    Benchmark(
        "stream.push_pop",
        "micro",
        _make_stream_push_pop,
        unit="items",
        description="producer push through a bounded stream buffer to a "
        "consuming context",
    ),
    Benchmark(
        "morph.trigger",
        "micro",
        _make_morph_trigger,
        unit="triggers",
        description="data-triggered construct on miss + destruct on flush",
    ),
    Benchmark(
        "fig18.hashtable_baseline",
        "macro",
        lambda: _make_macro(
            "repro.workloads.hashtable:run_baseline", FIG18_PARAMS, FIG18_TILES
        ),
        unit="instructions",
        description="Fig. 18 hash-table lookups, plain multicore baseline",
    ),
    Benchmark(
        "fig18.hashtable_leviathan",
        "macro",
        lambda: _make_macro(
            "repro.workloads.hashtable:run_leviathan", FIG18_PARAMS, FIG18_TILES
        ),
        unit="instructions",
        description="Fig. 18 hash-table lookups offloaded through engines",
    ),
    Benchmark(
        "fig20.hats_leviathan",
        "macro",
        lambda: _make_macro(
            "repro.workloads.hats:run_leviathan", HATS_PARAMS, HATS_TILES
        ),
        unit="instructions",
        description="Fig. 20 HATS decoupled traversal (quarter-size graph)",
    ),
]:
    register(_bench)

"""Who/what/where stamp for benchmark files.

Benchmark numbers are only comparable when you know what produced
them. Every ``BENCH_*.json`` embeds this fingerprint -- git sha and
dirty flag, python version/implementation, platform and CPU count --
so the trajectory across PRs stays attributable even when files are
copied between machines.
"""

import os
import platform
import subprocess
from pathlib import Path

#: Repository root (three levels above src/repro/perf/).
_REPO_ROOT = Path(__file__).resolve().parents[3]


def _git(*args):
    """One git query against the repo root; ``None`` when unavailable."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_sha():
    """The current commit sha, or ``None`` outside a git checkout."""
    return _git("rev-parse", "HEAD") or None


def git_dirty():
    """True when the working tree differs from HEAD (``None``: unknown)."""
    status = _git("status", "--porcelain")
    if status is None:
        return None
    return bool(status)


def fingerprint():
    """The provenance dict embedded in every benchmark history file."""
    return {
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def short_sha(fp=None, length=12):
    """A filename-safe sha prefix (``nogit`` outside a checkout)."""
    sha = fp.get("git_sha") if fp is not None else git_sha()
    return (sha or "nogit")[:length]

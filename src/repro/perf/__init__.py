"""``repro.perf``: the host-performance lab.

The simulator *is* the hardware this reproduction runs on -- the paper
replaces cycle-level SwarmSim with this event-driven model, so the
repo's own hot paths (scheduler step loop, cache access path, NoC hops,
engine offload) decide how much evaluation we can afford. This package
makes host time a first-class, tracked quantity:

- :mod:`repro.perf.bench` / :mod:`repro.perf.registry` -- named micro
  and macro benchmarks run with warmup, N trials, median/IQR, and a
  steps-per-second normalization.
- :mod:`repro.perf.profile` -- a cProfile harness with per-subsystem
  wall-time attribution plus a sampling collector that emits
  Brendan-Gregg collapsed stacks for flamegraphs.
- :mod:`repro.perf.history` / :mod:`repro.perf.compare` -- every bench
  run writes ``BENCH_<git-sha>.json`` stamped with a machine/python
  fingerprint (:mod:`repro.perf.fingerprint`); ``bench --compare``
  renders a noise-aware verdict table against a baseline file.

``python -m repro.experiments bench`` is the command-line entry point;
``docs/performance.md`` is the guide.
"""

from repro.perf.bench import Benchmark, BenchResult, run_benchmark
from repro.perf.compare import compare, render_verdicts
from repro.perf.fingerprint import fingerprint
from repro.perf.history import bench_payload, load_history, write_history
from repro.perf.profile import ProfileHarness, ProfileReport

__all__ = [
    "Benchmark",
    "BenchResult",
    "run_benchmark",
    "compare",
    "render_verdicts",
    "fingerprint",
    "bench_payload",
    "load_history",
    "write_history",
    "ProfileHarness",
    "ProfileReport",
]

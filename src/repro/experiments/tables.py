"""Tables I-V: taxonomy, actions, microarchitecture support, area, config.

These runners are analytic (no simulation), so they never submit work
to the experiment pool; they still accept ``pool=None`` so the registry
can drive every experiment through one uniform interface.
"""

from repro import taxonomy
from repro.core.area import AreaModel
from repro.experiments.runner import Experiment
from repro.sim.config import SystemConfig


def run_table1(pool=None):
    exp = Experiment(
        name="NDC taxonomy",
        paper_reference="Table I",
        notes="Paradigms characterized by task size and core communication.",
    )
    for name, small, talks, prior in taxonomy.table1():
        exp.add_row(
            paradigm=name,
            small_tasks="yes" if small else "no",
            talks_to_cores="yes" if talks else "no",
            prior_work=prior[:60] + ("..." if len(prior) > 60 else ""),
        )
    exp.expect("four paradigms", "between", len(exp.rows), 4, 4)
    # The 2x2 taxonomy covers all combinations exactly once.
    coords = {(r["small_tasks"], r["talks_to_cores"]) for r in exp.rows}
    exp.expect("paradigms cover the 2x2 space", "between", len(coords), 4, 4)
    return exp


def run_table2(pool=None):
    exp = Experiment(name="Actions per paradigm", paper_reference="Table II")
    for name, actions in taxonomy.table2():
        exp.add_row(paradigm=name, actions=actions)
    exp.expect(
        "data-triggered uses constructors/destructors",
        "between",
        int("constructor" in dict(taxonomy.table2())["Data-triggered actions"]),
        1,
        1,
    )
    return exp


def run_table3(pool=None):
    exp = Experiment(
        name="Per-paradigm microarchitecture support", paper_reference="Table III"
    )
    for name, core, cache, engine in taxonomy.table3():
        exp.add_row(paradigm=name, core=core, cache=cache, engine=engine)
    exp.expect("three rows (offload/long-lived share)", "between", len(exp.rows), 3, 3)
    return exp


def run_table4(pool=None):
    model = AreaModel()
    exp = Experiment(
        name="Hardware overhead per LLC bank",
        paper_reference="Table IV",
        notes="Paper: 32.8 KB per 512 KB bank = 6.4%.",
    )
    for label, nbytes in model.breakdown().items():
        exp.add_row(component=label, kilobytes=nbytes / 1024)
    total_kb = model.total_bytes() / 1024
    exp.add_row(component="Total", kilobytes=total_kb)
    exp.expect("total ~32.8 KB", "between", total_kb, 30.0, 35.0)
    exp.expect(
        "overhead ~6.4% of bank", "between", model.overhead_fraction(), 0.058, 0.070
    )
    return exp


def run_table5(pool=None):
    cfg = SystemConfig()
    exp = Experiment(
        name="System parameters", paper_reference="Table V",
        notes="The unscaled simulated machine (case studies scale caches per study).",
    )
    exp.add_row(component="Cores", value=f"{cfg.n_tiles} cores, {cfg.core.freq_ghz} GHz, OOO (IPC {cfg.core.ipc})")
    exp.add_row(component="Invoke buffer", value=f"{cfg.core.invoke_buffer_entries} entries")
    exp.add_row(
        component="Engines",
        value=(
            f"{cfg.n_tiles} engines, {cfg.engine.int_fus} int + "
            f"{cfg.engine.mem_fus} mem FUs, {cfg.engine.l1d_kb} KB L1d, "
            f"{cfg.engine.rtlb_entries}-entry rTLB, {cfg.engine.task_contexts} contexts"
        ),
    )
    exp.add_row(component="L1", value=f"{cfg.l1.size_kb} KB, {cfg.l1.ways}-way")
    exp.add_row(
        component="L2",
        value=f"{cfg.l2.size_kb} KB, {cfg.l2.ways}-way, {cfg.l2.tag_latency}/{cfg.l2.data_latency} cycle tag/data",
    )
    exp.add_row(
        component="LLC",
        value=(
            f"{cfg.llc_total_kb // 1024} MB ({cfg.llc.size_kb} KB/tile), "
            f"{cfg.llc.ways}-way, inclusive"
        ),
    )
    exp.add_row(
        component="NoC",
        value=(
            f"{cfg.mesh_width}x{cfg.n_tiles // cfg.mesh_width} mesh, "
            f"{cfg.noc.flit_bits}-bit flits, {cfg.noc.router_delay}/{cfg.noc.link_delay} cycle router/link"
        ),
    )
    exp.add_row(
        component="Memory",
        value=(
            f"{cfg.memory.controllers} controllers, {cfg.memory.latency}-cycle latency, "
            f"{cfg.memory.fifo_lines}-entry FIFO cache"
        ),
    )
    exp.expect("16 tiles", "between", cfg.n_tiles, 16, 16)
    exp.expect("8 MB LLC", "between", cfg.llc_total_kb, 8192, 8192)
    exp.expect("4 memory controllers", "between", cfg.memory.controllers, 4, 4)
    return exp

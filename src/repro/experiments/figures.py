"""Figures 5, 16, 18, 20, 21: the case-study results.

Each ``run_figN`` enumerates the corresponding case study into
:class:`~repro.experiments.pool.RunSpec` entries (one simulator
execution each), executes them on an experiment pool -- in parallel
when the pool has ``jobs>1``, with content-addressed result caching --
and checks the paper's qualitative claims on the reassembled study.
Absolute factors are checked against generous bands around the paper's
numbers (the substrate is a coarse simulator, not the authors'
testbed); orderings are checked strictly.

Figs. 20 and 21 enumerate identical HATS specs, so the second figure
is served entirely from the pool's cache.
"""

from repro.experiments.pool import RunSpec, default_pool, run_study
from repro.experiments.runner import Experiment
from repro.workloads import hats
from repro.workloads.common import StudyResult

_PHI = "repro.workloads.phi:"
_DEC = "repro.workloads.decompress:"
_HT = "repro.workloads.hashtable:"
_HATS = "repro.workloads.hats:"


def _phi_specs(params):
    return [
        RunSpec(_PHI + "run_baseline", {"params": params}, "fig5/baseline"),
        RunSpec(_PHI + "run_tako", {"params": params, "relaxed": False}, "fig5/tako_fence"),
        RunSpec(_PHI + "run_tako", {"params": params, "relaxed": True}, "fig5/tako_relax"),
        RunSpec(_PHI + "run_leviathan", {"params": params}, "fig5/leviathan"),
        RunSpec(_PHI + "run_leviathan", {"params": params, "ideal": True}, "fig5/ideal"),
    ]


def _decompress_specs(params):
    return [
        RunSpec(_DEC + "run_baseline", {"params": params}, "fig16/baseline"),
        RunSpec(_DEC + "run_offload", {"params": params}, "fig16/offload"),
        RunSpec(_DEC + "run_no_padding", {"params": params}, "fig16/no_padding"),
        RunSpec(_DEC + "run_leviathan", {"params": params}, "fig16/leviathan"),
        RunSpec(_DEC + "run_leviathan", {"params": params, "ideal": True}, "fig16/ideal"),
    ]


def _hats_specs(params):
    return [
        RunSpec(_HATS + "run_baseline", {"params": params}, "hats/baseline"),
        RunSpec(_HATS + "run_sw_bdfs", {"params": params}, "hats/sw_bdfs"),
        RunSpec(_HATS + "run_tako", {"params": params}, "hats/tako"),
        RunSpec(_HATS + "run_leviathan", {"params": params}, "hats/leviathan"),
        RunSpec(_HATS + "run_leviathan", {"params": params, "ideal": True}, "hats/ideal"),
    ]


def _fig18_specs(params, sizes):
    """Per-size spec lists; flattened into ONE pool submission so every
    run of the grid is in flight at once under ``--jobs N``."""
    by_size = {}
    for size in sizes:
        p = dict(params or {})
        p["object_size"] = size
        specs = [
            RunSpec(_HT + "run_baseline", {"params": p}, f"fig18/{size}B/baseline"),
            RunSpec(_HT + "run_leviathan", {"params": p}, f"fig18/{size}B/leviathan"),
        ]
        if size == 24:
            specs.append(
                RunSpec(_HT + "run_no_padding", {"params": p}, f"fig18/{size}B/no_padding")
            )
        if size == 128:
            specs.append(
                RunSpec(
                    _HT + "run_no_llc_mapping",
                    {"params": p},
                    f"fig18/{size}B/no_llc_mapping",
                )
            )
        by_size[size] = (p, specs)
    return by_size


def _study_rows(exp, study):
    speedups = study.speedups()
    savings = study.energy_savings()
    for name, result in study.results.items():
        exp.add_row(
            variant=name,
            speedup=speedups[name],
            energy_savings_pct=savings[name] * 100,
            cycles=result.cycles if result.functional else float("nan"),
            functional="yes" if result.functional else "NO (" + result.notes[:40] + ")",
        )
    return speedups, savings


def run_fig5(params=None, pool=None):
    pool = pool or default_pool()
    study = run_study(pool, "PHI (Fig. 5)", "baseline", _phi_specs(params), params=params)
    exp = Experiment(
        name="PHI / commutative scatter-updates",
        paper_reference="Fig. 5",
        notes=(
            "Paper: tako Fence 1.4x, tako Relax 3.1x, Leviathan 3.7x "
            "(within 1.3% of ideal); energy -12% (tako), -22% (Leviathan)."
        ),
    )
    speedups, savings = _study_rows(exp, study)
    exp.expect(
        "ordering base < fence < relax < leviathan",
        "ordering",
        [
            speedups["baseline"],
            speedups["tako_fence"],
            speedups["tako_relax"],
            speedups["leviathan"],
        ],
    )
    exp.expect("Leviathan speedup ~3.7x", "between", speedups["leviathan"], 2.5, 5.0)
    exp.expect("tako Relax ~3.1x", "between", speedups["tako_relax"], 1.8, 4.0)
    exp.expect("tako Fence ~1.4x", "between", speedups["tako_fence"], 1.05, 2.0)
    if "ideal" in study.results:
        gap = abs(speedups["ideal"] - speedups["leviathan"]) / speedups["leviathan"]
        exp.expect("Leviathan close to ideal", "less", gap, 0.08)
    exp.expect("Leviathan saves energy", "greater", savings["leviathan"], 0.10)
    exp.expect(
        "Leviathan saves more energy than tako",
        "greater",
        savings["leviathan"] - savings["tako_fence"],
        0.0,
    )
    return exp


def run_fig16(params=None, pool=None):
    pool = pool or default_pool()
    study = run_study(
        pool, "Decompression (Fig. 16)", "baseline", _decompress_specs(params), params=params
    )
    exp = Experiment(
        name="Near-cache data transformation (decompression)",
        paper_reference="Fig. 16",
        notes=(
            "Paper: Leviathan 2.4x / -65% energy; offload (OL) is worse "
            "than the baseline; no-padding does not work at all."
        ),
    )
    speedups, savings = _study_rows(exp, study)
    exp.expect("Leviathan speedup ~2.4x", "between", speedups["leviathan"], 1.5, 3.5)
    exp.expect("offload is worse than baseline", "less", speedups["offload"], 1.0)
    exp.expect(
        "no-padding does not work",
        "between",
        int(study["no_padding"].functional),
        0,
        0,
    )
    exp.expect("Leviathan energy ~-65%", "between", savings["leviathan"], 0.4, 0.9)
    if "ideal" in study.results:
        gap = abs(speedups["ideal"] - speedups["leviathan"]) / speedups["leviathan"]
        exp.expect("Leviathan close to ideal", "less", gap, 0.15)
    return exp


def run_fig18(params=None, sizes=(24, 64, 128), pool=None):
    pool = pool or default_pool()
    spec_grid = _fig18_specs(params, sizes)
    flat = [spec for _, specs in spec_grid.values() for spec in specs]
    results = pool.run_results(flat)
    studies = {}
    cursor = 0
    for size, (p, specs) in spec_grid.items():
        study = StudyResult(
            study=f"Hash table {size}B (Fig. 18)", baseline="baseline", params=p
        )
        for result in results[cursor : cursor + len(specs)]:
            study.add(result)
        cursor += len(specs)
        studies[size] = study
    exp = Experiment(
        name="Hash-table lookups across object sizes",
        paper_reference="Fig. 18",
        notes=(
            "Paper: up to 2.0x and -77% energy across 24/64/128 B objects; "
            "no-padding drops 24 B to 1.5x; no-LLC-mapping drops 128 B to 0.91x."
        ),
    )
    by_size = {}
    for size, study in studies.items():
        speedups = study.speedups()
        savings = study.energy_savings()
        by_size[size] = (speedups, savings, study)
        for name, result in study.results.items():
            # Per-level attribution from the run's AccessProfile: where
            # each variant's chain-walk loads were actually served.
            exp.add_row(
                object_size=size,
                variant=name,
                speedup=speedups[name],
                energy_savings_pct=savings[name] * 100,
                l1_hits=result.accesses("l1", "hit"),
                engine_l1_hits=result.accesses("engine_l1", "hit"),
                llc_hits=result.accesses("llc", "hit"),
                dram_fills=result.accesses("dram", "fill"),
            )
    lev = [by_size[s][0]["leviathan"] for s in sizes]
    headline = sizes[len(sizes) // 2] if sizes else None
    if headline is not None:
        base_r = by_size[headline][2]["baseline"]
        lev_r = by_size[headline][2]["leviathan"]
        exp.expect(
            "offloaded lookups run at engines (engine-L1 traffic appears)",
            "greater",
            lev_r.accesses("engine_l1"),
            0,
        )
        exp.expect(
            "baseline has no engine-side accesses",
            "between",
            base_r.accesses("engine_l1"),
            0,
            0,
        )
        exp.expect(
            "the table is LLC-resident: most node loads hit the LLC, not DRAM",
            "greater",
            lev_r.accesses("llc", "hit") - lev_r.accesses("dram", "fill"),
            0,
        )
    exp.expect("Leviathan wins at every size", "greater", min(lev), 1.1)
    exp.expect(
        "performance is consistent across sizes (max/min < 1.5)",
        "less",
        max(lev) / min(lev),
        1.5,
    )
    if 24 in by_size and "no_padding" in by_size[24][2]:
        exp.expect(
            "padding helps 24 B objects",
            "greater",
            by_size[24][0]["leviathan"] - by_size[24][0]["no_padding"],
            0.0,
        )
    if 128 in by_size and "no_llc_mapping" in by_size[128][2]:
        exp.expect(
            "LLC mapping helps 128 B objects",
            "greater",
            by_size[128][0]["leviathan"] - by_size[128][0]["no_llc_mapping"],
            0.0,
        )
        exp.expect(
            "without mapping, close to or below baseline",
            "less",
            by_size[128][0]["no_llc_mapping"],
            1.25,
        )
    exp.expect(
        "Leviathan saves energy at every size",
        "greater",
        min(by_size[s][1]["leviathan"] for s in sizes),
        0.15,
    )
    return exp


def run_fig20(params=None, pool=None):
    pool = pool or default_pool()
    study = run_study(
        pool, "HATS (Figs. 20-21)", "baseline", _hats_specs(params), params=params
    )
    exp = Experiment(
        name="Decoupled graph traversal (HATS)",
        paper_reference="Fig. 20",
        notes=(
            "Paper: software BDFS 1.2x, tako 1.4x, Leviathan 1.7x "
            "(nearly identical to ideal), energy -26%."
        ),
    )
    speedups, savings = _study_rows(exp, study)
    exp.expect(
        "ordering base < tako < leviathan",
        "ordering",
        [speedups["baseline"], speedups["tako"], speedups["leviathan"]],
    )
    exp.expect("software BDFS helps", "greater", speedups["sw_bdfs"], 1.0)
    exp.expect("Leviathan ~1.7x", "between", speedups["leviathan"], 1.4, 2.2)
    exp.expect("tako ~1.4x", "between", speedups["tako"], 1.15, 1.8)
    if "ideal" in study.results:
        gap = abs(speedups["ideal"] - speedups["leviathan"]) / speedups["leviathan"]
        exp.expect("Leviathan nearly identical to ideal", "less", gap, 0.05)
    exp.expect("Leviathan saves energy", "greater", savings["leviathan"], 0.05)
    return exp


def run_fig21(params=None, study=None, pool=None):
    if study is None:
        pool = pool or default_pool()
        study = run_study(
            pool, "HATS (Figs. 20-21)", "baseline", _hats_specs(params), params=params
        )
    exp = Experiment(
        name="HATS performance breakdown",
        paper_reference="Fig. 21",
        notes=(
            "Paper: BDFS versions cut edge-phase DRAM accesses ~40%; tako and "
            "Leviathan eliminate branch mispredictions; tako needs more engine "
            "instructions per edge than Leviathan (stack re-initialization)."
        ),
    )
    edges = study.params.get("n_edges") or hats.DEFAULT_PARAMS["n_edges"]
    for name, result in study.results.items():
        exp.add_row(
            variant=name,
            dram_vertex_phase=result.stat("vertex/dram.accesses"),
            dram_edge_phase=result.stat("edge/dram.accesses"),
            mispredicts_per_edge=result.stat("core.branch_mispredictions") / edges,
            engine_instr_per_edge=result.stat("edge/engine.instructions") / edges,
        )
    base = study["baseline"]
    lev = study["leviathan"]
    tako = study["tako"]
    exp.expect(
        "vertex-phase DRAM equal across versions",
        "less",
        abs(lev.stat("vertex/dram.accesses") - base.stat("vertex/dram.accesses"))
        / max(1, base.stat("vertex/dram.accesses")),
        0.1,
    )
    reduction = 1 - lev.stat("edge/dram.accesses") / base.stat("edge/dram.accesses")
    exp.expect("BDFS cuts edge-phase DRAM (~40% in paper)", "between", reduction, 0.1, 0.6)
    exp.expect(
        "tako/Leviathan eliminate mispredictions",
        "less",
        lev.stat("core.branch_mispredictions") + tako.stat("core.branch_mispredictions"),
        1,
    )
    exp.expect(
        "tako needs more engine instructions per edge",
        "greater",
        tako.stat("edge/engine.instructions") - lev.stat("edge/engine.instructions"),
        0,
    )
    return exp

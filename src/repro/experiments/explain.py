"""``leviathan explain``: why is this run slow?

Turns a run's telemetry artifacts (or a cached result entry) into a
per-request-class critical-path waterfall -- every request cycle
attributed to one taxonomy component (see
:data:`~repro.sim.telemetry.critpath.COMPONENTS`) -- and, with
``--diff``, attributes the end-to-end latency delta between two runs
to those components. This is the tool that converts a bench REGRESSION
flag or a serve-* speedup number into a one-screen causal story.

Three input shapes are accepted:

- a **machine directory** (``.../machine-00`` with ``trace.json``):
  spans are rebuilt from the trace and re-attributed offline --
  bit-identical to the attribution the live session computed, because
  both run the same pure function over the same span data;
- a **run/sweep directory**: every machine directory underneath is
  aggregated into one report;
- a **cache entry** (``<hash>.json`` written by the experiment pool):
  the flat ``attribution.*`` stats merged into the cached
  ``RunResult`` are unflattened back into a waterfall (no trace
  needed).
"""

import json
import math
import os

from repro.experiments.telemetry_report import _read_json, find_runs
from repro.sim.telemetry.critpath import (
    ATTRIBUTED,
    COMPONENTS,
    AttributionRollup,
    spans_from_trace,
)

#: Waterfall fields reported per component.
WATERFALL_FIELDS = ("total", "share", "p50", "p95", "p99")


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def analyze(target):
    """The explain report for ``target`` (run dir or cache entry)."""
    if os.path.isfile(target):
        return analyze_cache_entry(target)
    if os.path.isdir(target):
        return analyze_run_dir(target)
    raise FileNotFoundError(
        f"{target}: neither a telemetry directory nor a cache entry"
    )


def analyze_run_dir(target):
    """Rebuild spans from every trace under ``target`` and attribute them."""
    machine_dirs = find_runs(target)
    if not machine_dirs and os.path.isfile(os.path.join(target, "trace.json")):
        machine_dirs = [target]
    machines = []
    machine_cycles = 0.0
    orphaned = unclosed = dropped = 0
    problems = []
    rollup = AttributionRollup()
    for machine_dir in machine_dirs:
        trace, problem = _read_json(os.path.join(machine_dir, "trace.json"))
        if trace is None:
            problems.append(f"{machine_dir}: {problem}")
            continue
        for span in spans_from_trace(trace):
            if span.cat in ("invoke", "stream"):
                rollup.observe_span(span)
        meta = (trace.get("otherData") or {})
        machines.append(machine_dir)
        machine_cycles += float(meta.get("cycles") or 0.0)
        orphaned += int(meta.get("spans_orphaned") or 0)
        unclosed += int(meta.get("spans_unclosed") or 0)
        dropped += int(meta.get("spans_dropped") or 0)
    snapshot = rollup.snapshot()
    return {
        "kind": "leviathan-explain",
        "source": target,
        "source_kind": "run-dir",
        "machines": machines,
        "machine_cycles": machine_cycles,
        "requests": sum(e["count"] for e in snapshot.values()),
        "request_cycles": math.fsum(e["cycles"] for e in snapshot.values()),
        "coverage": rollup.coverage() if rollup else 1.0,
        "spans_orphaned": orphaned,
        "spans_unclosed": unclosed,
        "spans_dropped": dropped,
        "problems": problems,
        "classes": snapshot,
    }


def analyze_cache_entry(path):
    """Unflatten the ``attribution.*`` stats of one cached result."""
    payload, problem = _read_json(path)
    if payload is None:
        raise ValueError(f"{path}: {problem}")
    result = payload.get("result", payload)
    if result.get("kind") != "run_result":
        raise ValueError(f"{path}: cached value is not a RunResult")
    stats = result.get("stats") or {}
    classes = {}

    def entry(cls):
        found = classes.get(cls)
        if found is None:
            found = classes[cls] = {
                "count": 0,
                "cycles": 0.0,
                "coverage": 1.0,
                "latency": None,
                "components": {
                    c: dict.fromkeys(WATERFALL_FIELDS, 0.0) for c in COMPONENTS
                },
            }
        return found

    for key, value in stats.items():
        if not key.startswith("attribution."):
            continue
        rest = key[len("attribution.") :]
        parts = rest.rsplit(".", 2)
        if (
            len(parts) == 3
            and parts[1] in COMPONENTS
            and parts[2] in ("total", "p50", "p95", "p99")
        ):
            cls, component, field = parts
            entry(cls)["components"][component][field] = float(value)
        else:
            cls, _dot, field = rest.rpartition(".")
            if cls and field in ("count", "cycles", "coverage"):
                entry(cls)[field] = (
                    int(value) if field == "count" else float(value)
                )
    for cls, data in classes.items():
        cycles = data["cycles"]
        for component in COMPONENTS:
            comp = data["components"][component]
            comp["share"] = comp["total"] / cycles if cycles else 0.0
        latency = {
            field: float(stats.get(f"request.{cls}.{field}", 0.0))
            for field in ("count", "p50", "p95", "p99", "mean", "max")
        }
        if latency["count"]:
            data["latency"] = latency
    return {
        "kind": "leviathan-explain",
        "source": path,
        "source_kind": "cache-entry",
        "machines": [],
        "machine_cycles": float(result.get("cycles") or 0.0),
        "requests": sum(e["count"] for e in classes.values()),
        "request_cycles": math.fsum(e["cycles"] for e in classes.values()),
        "coverage": _weighted_coverage(classes),
        "spans_orphaned": 0,
        "spans_unclosed": 0,
        "spans_dropped": 0,
        "problems": [],
        "classes": classes,
    }


def _weighted_coverage(classes):
    cycles = math.fsum(e["cycles"] for e in classes.values())
    if cycles <= 0.0:
        return 1.0
    residue = math.fsum(
        (1.0 - e.get("coverage", 1.0)) * e["cycles"] for e in classes.values()
    )
    return 1.0 - residue / cycles


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value):
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.2f}"
    return str(value)


def render_markdown(report):
    """The one-screen waterfall for one :func:`analyze` report."""
    lines = [
        f"# Latency attribution: {report['source']}",
        "",
        f"- requests attributed: **{report['requests']}** across "
        f"**{len(report['classes'])}** class(es)",
        f"- request cycles: **{report['request_cycles']:,.0f}**"
        + (
            f" (machine cycles {report['machine_cycles']:,.0f})"
            if report.get("machine_cycles")
            else ""
        ),
        f"- attribution coverage: **{report['coverage'] * 100:.2f}%**"
        f" (orphaned segments: {report['spans_orphaned']},"
        f" unclosed: {report['spans_unclosed']},"
        f" dropped: {report['spans_dropped']})",
    ]
    for problem in report.get("problems", []):
        lines.append(f"- !! {problem}")
    for cls in sorted(report["classes"]):
        entry = report["classes"][cls]
        lines += [
            "",
            f"## {cls}  (n={entry['count']}, "
            f"coverage {entry.get('coverage', 1.0) * 100:.2f}%)",
            "",
            "| component | cycles | share | p50 | p95 | p99 |",
            "|---|---|---|---|---|---|",
        ]
        for component in COMPONENTS:
            comp = entry["components"].get(component)
            # Sub-cycle totals are float residue of the exact
            # partition, not a real contribution -- drop the row.
            if comp is None or comp.get("total", 0.0) < 0.5:
                continue
            lines.append(
                f"| {component} | {comp['total']:,.0f} "
                f"| {comp.get('share', 0.0) * 100:.1f}% "
                f"| {_fmt(comp.get('p50', 0.0))} "
                f"| {_fmt(comp.get('p95', 0.0))} "
                f"| {_fmt(comp.get('p99', 0.0))} |"
            )
        latency = entry.get("latency")
        if latency and latency.get("count"):
            lines.append(
                f"\nend-to-end: n={latency['count']:.0f} "
                f"mean={latency['mean']:.1f} p50<={latency['p50']:.0f} "
                f"p95<={latency['p95']:.0f} p99<={latency['p99']:.0f}"
            )
    if not report["classes"]:
        lines += ["", "_No request spans recorded (baseline/core-only run?)._"]
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def diff_reports(report_a, report_b):
    """Attribute the latency delta between two explain reports.

    Per shared request class the per-request component means are
    differenced; a class present on only one side diffs against zeros
    (a baseline without offloads legitimately has no attribution -- the
    delta then reads as "everything the variant spends per request").
    """
    classes = sorted(set(report_a["classes"]) | set(report_b["classes"]))
    out_classes = {}
    for cls in classes:
        entry_a = report_a["classes"].get(cls)
        entry_b = report_b["classes"].get(cls)
        count_a = entry_a["count"] if entry_a else 0
        count_b = entry_b["count"] if entry_b else 0
        mean_a = (entry_a["cycles"] / count_a) if count_a else 0.0
        mean_b = (entry_b["cycles"] / count_b) if count_b else 0.0
        components = {}
        for component in COMPONENTS:
            total_a = (
                entry_a["components"][component]["total"] if entry_a else 0.0
            )
            total_b = (
                entry_b["components"][component]["total"] if entry_b else 0.0
            )
            per_req_a = total_a / count_a if count_a else 0.0
            per_req_b = total_b / count_b if count_b else 0.0
            components[component] = {
                "total_a": total_a,
                "total_b": total_b,
                "per_request_a": per_req_a,
                "per_request_b": per_req_b,
                "delta_per_request": per_req_b - per_req_a,
            }
        out_classes[cls] = {
            "count_a": count_a,
            "count_b": count_b,
            "mean_a": mean_a,
            "mean_b": mean_b,
            "delta_mean": mean_b - mean_a,
            "components": components,
        }
    cycles_a = report_a.get("machine_cycles") or 0.0
    cycles_b = report_b.get("machine_cycles") or 0.0
    return {
        "kind": "leviathan-explain-diff",
        "a": report_a["source"],
        "b": report_b["source"],
        "machine_cycles_a": cycles_a,
        "machine_cycles_b": cycles_b,
        "machine_cycles_delta": cycles_b - cycles_a,
        "speedup_b_over_a": (cycles_a / cycles_b) if cycles_b else None,
        "classes": out_classes,
    }


def render_diff_markdown(diff):
    """The one-screen causal story for one :func:`diff_reports` result."""
    lines = [
        "# Latency attribution diff",
        "",
        f"- A: `{diff['a']}`",
        f"- B: `{diff['b']}`",
    ]
    if diff["machine_cycles_a"] and diff["machine_cycles_b"]:
        speedup = diff["speedup_b_over_a"]
        direction = "faster" if speedup >= 1.0 else "slower"
        lines.append(
            f"- machine cycles: {diff['machine_cycles_a']:,.0f} -> "
            f"{diff['machine_cycles_b']:,.0f} "
            f"(B is **{max(speedup, 1 / speedup) if speedup else 0:.2f}x "
            f"{direction}**)"
        )
    for cls in sorted(diff["classes"]):
        entry = diff["classes"][cls]
        if not entry["count_a"] and not entry["count_b"]:
            continue
        lines += [
            "",
            f"## {cls}  (n: {entry['count_a']} -> {entry['count_b']}, "
            f"mean/request: {entry['mean_a']:,.1f} -> {entry['mean_b']:,.1f}, "
            f"delta {entry['delta_mean']:+,.1f})",
            "",
            "| component | A cycles/req | B cycles/req | delta | of mean delta |",
            "|---|---|---|---|---|",
        ]
        denom = entry["delta_mean"]
        ranked = sorted(
            (
                (component, entry["components"][component])
                for component in ATTRIBUTED + ("unattributed",)
            ),
            key=lambda item: abs(item[1]["delta_per_request"]),
            reverse=True,
        )
        for component, comp in ranked:
            # Skip components that are float residue on both sides.
            if (
                abs(comp["per_request_a"]) < 0.05
                and abs(comp["per_request_b"]) < 0.05
            ):
                continue
            of_delta = (
                f"{comp['delta_per_request'] / denom * 100:.0f}%"
                if denom
                else "n/a"
            )
            lines.append(
                f"| {component} | {comp['per_request_a']:,.1f} "
                f"| {comp['per_request_b']:,.1f} "
                f"| {comp['delta_per_request']:+,.1f} | {of_delta} |"
            )
    if not any(
        entry["count_a"] or entry["count_b"]
        for entry in diff["classes"].values()
    ):
        lines += [
            "",
            "_Neither side recorded request spans; only the machine-cycle "
            "delta above is attributable._",
        ]
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# entry point (driven by the CLI's ``explain`` subcommand)
# ----------------------------------------------------------------------
def explain(target, out_dir=None):
    """Analyze ``target``; write + print the report. Returns (text, report)."""
    report = analyze(target)
    text = render_markdown(report)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "explain.json"), "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(os.path.join(out_dir, "explain.md"), "w") as handle:
            handle.write(text)
    return text, report


def explain_diff(target_a, target_b, out_dir=None):
    """Diff two targets; write + print the report. Returns (text, diff)."""
    diff = diff_reports(analyze(target_a), analyze(target_b))
    text = render_diff_markdown(diff)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "explain-diff.json"), "w") as handle:
            json.dump(diff, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(os.path.join(out_dir, "explain-diff.md"), "w") as handle:
            handle.write(text)
    return text, diff

"""Pluggable executor backends behind the experiment pool.

The :class:`~repro.experiments.pool.ExperimentPool` owns *policy*
(caching, retry, deadlines, hang detection, graceful drain); a backend
owns *mechanism*: where a job dict actually executes and how its
worker can be observed and killed. Two local backends ship today:

- :class:`LocalInlineBackend` executes jobs synchronously in the
  calling process -- the ``jobs=1`` fast path used by tests and
  benchmarks. Nothing to kill, no deadline enforcement (a blocking
  call cannot be preempted), bit-identical to calling the worker
  function directly.
- :class:`LocalProcessBackend` runs each job in its own worker
  process (forked where available) with a result pipe back to the
  supervisor. Per-job processes are what make the supervision
  contract enforceable: a deadline or hang kill takes down exactly
  one run, never a shared pool, and a SIGKILLed worker surfaces as a
  :class:`WorkerDeath` for that one handle instead of poisoning every
  in-flight future the way a ``BrokenProcessPool`` does.

A future scale-out backend (SSH, cloud functions) implements the same
five methods -- ``start``/``capacity``/``submit``/``poll``/``kill`` --
and inherits the whole supervision story for free.

The worker entrypoint carries a **chaos hook** for CI: setting
``LEVIATHAN_POOL_CHAOS="p=0.4;seed=7"`` makes each worker SIGKILL
itself with probability ``p`` before executing, decided
deterministically from ``(seed, spec hash, attempt)`` -- so a given
seed produces the same kill schedule on every run, and retried
attempts roll fresh deterministic dice. The ``pool-chaos`` CI job uses
this to prove a sweep completes bit-identically through requeue.
"""

import hashlib
import os
import signal
import time
from dataclasses import dataclass

#: Environment variable carrying the worker-kill chaos spec.
CHAOS_ENV = "LEVIATHAN_POOL_CHAOS"


@dataclass
class WorkerDeath:
    """A worker vanished without delivering an outcome.

    ``exitcode`` is the process exit status when known (negative =
    killed by that signal number, matching ``multiprocessing``).
    """

    exitcode: int = None
    message: str = ""

    def describe(self):
        if self.exitcode is not None and self.exitcode < 0:
            try:
                name = signal.Signals(-self.exitcode).name
            except ValueError:
                name = f"signal {-self.exitcode}"
            return f"worker killed by {name}"
        if self.exitcode is not None:
            return f"worker exited with status {self.exitcode}"
        return self.message or "worker died before delivering a result"


class ExecutorBackend:
    """The contract every executor backend implements.

    Handles returned by :meth:`submit` are opaque; the supervisor maps
    them back to its own attempt records. ``poll`` returns completed
    work as ``(handle, payload)`` pairs where ``payload`` is either
    the worker's outcome dict or a :class:`WorkerDeath`.
    """

    name = "abstract"
    #: Whether :meth:`kill` can terminate one running job (enables
    #: host-side deadlines and hang kills).
    supports_kill = False

    def start(self, workers):
        """Prepare for up to ``workers`` concurrent jobs; returns self."""
        return self

    def capacity(self):
        """Free worker slots right now."""
        raise NotImplementedError

    def submit(self, job):
        """Dispatch one job dict; returns an opaque handle."""
        raise NotImplementedError

    def poll(self, timeout=0.0):
        """Completed ``(handle, outcome_or_WorkerDeath)`` pairs.

        Blocks up to ``timeout`` seconds waiting for the first
        completion; returns everything ready by then.
        """
        raise NotImplementedError

    def kill(self, handle, reason=""):
        """Best-effort terminate the worker running ``handle``."""
        raise NotImplementedError

    def shutdown(self):
        """Terminate every in-flight worker and release resources."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class LocalInlineBackend(ExecutorBackend):
    """Synchronous execution in the calling process (``jobs=1``)."""

    name = "local-inline"
    supports_kill = False

    def __init__(self):
        self._ready = []
        self._seq = 0

    def start(self, workers):
        return self

    def capacity(self):
        # One at a time, and only when the previous result was drained:
        # the supervisor journals each outcome before dispatching more.
        return 0 if self._ready else 1

    def submit(self, job):
        from repro.experiments.pool import _execute_job

        self._seq += 1
        handle = self._seq
        self._ready.append((handle, _execute_job(job)))
        return handle

    def poll(self, timeout=0.0):
        ready, self._ready = self._ready, []
        return ready

    def kill(self, handle, reason=""):
        pass  # nothing to kill: submit() already returned


class LocalProcessBackend(ExecutorBackend):
    """One worker process per job, supervised over a result pipe.

    Uses the ``fork`` start method where available (Linux -- workers
    inherit warm imports and the parent's run-log handler, matching
    the previous ``ProcessPoolExecutor`` behavior), falling back to
    the platform default elsewhere. Workers are daemonic, so an
    abandoned supervisor never leaks simulators.
    """

    name = "local-process"
    supports_kill = True

    def __init__(self, mp_context=None):
        import multiprocessing

        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self._ctx = mp_context
        self._workers = 1
        self._running = {}  # handle -> (process, connection, job)
        self._seq = 0

    def start(self, workers):
        self._workers = max(1, int(workers))
        return self

    def capacity(self):
        return self._workers - len(self._running)

    def submit(self, job):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(job, child_conn),
            name=f"pool-worker-{job['hash'][:12]}-a{job.get('attempt', 1)}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker owns the write end now
        self._seq += 1
        handle = self._seq
        self._running[handle] = (process, parent_conn, job)
        return handle

    def poll(self, timeout=0.0):
        from multiprocessing import connection

        if not self._running:
            if timeout > 0:
                time.sleep(timeout)
            return []
        by_conn = {conn: handle for handle, (_p, conn, _j) in self._running.items()}
        ready = connection.wait(list(by_conn), timeout=timeout)
        results = []
        for conn in ready:
            handle = by_conn[conn]
            process, _conn, _job = self._running.pop(handle)
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                payload = WorkerDeath()
            finally:
                conn.close()
            process.join(timeout=5.0)
            if isinstance(payload, WorkerDeath):
                payload.exitcode = process.exitcode
            results.append((handle, payload))
        return results

    def kill(self, handle, reason=""):
        entry = self._running.get(handle)
        if entry is None:
            return
        process = entry[0]
        if process.is_alive():
            process.kill()  # SIGKILL: a hung worker may ignore SIGTERM

    def shutdown(self):
        for process, conn, _job in self._running.values():
            if process.is_alive():
                process.kill()
            conn.close()
        for process, _conn, _job in self._running.values():
            process.join(timeout=5.0)
        self._running.clear()


#: Registered backend names (``auto`` picks per job count).
BACKENDS = {
    "local-inline": LocalInlineBackend,
    "local-process": LocalProcessBackend,
}


def make_backend(backend, jobs):
    """Resolve ``backend`` (name, instance, or None/'auto') for ``jobs``.

    ``None``/``"auto"`` keeps the pool's historical behavior: inline
    for a single worker, per-job processes otherwise.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None or backend == "auto":
        return LocalInlineBackend() if jobs <= 1 else LocalProcessBackend()
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"known: auto, {', '.join(sorted(BACKENDS))}"
        ) from None


# ----------------------------------------------------------------------
# the worker entrypoint
# ----------------------------------------------------------------------
def parse_chaos_spec(spec):
    """``"p=0.4;seed=7"`` -> ``(probability, seed)``; bad specs raise."""
    probability, seed = 0.0, 0
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        if key == "p":
            probability = float(value)
        elif key == "seed":
            seed = int(value)
        else:
            raise ValueError(f"unknown chaos field {key!r} in {spec!r}")
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"chaos probability must be in [0, 1], got {probability}")
    return probability, seed


def chaos_decision(probability, seed, run_hash, attempt):
    """Deterministic per-(seed, hash, attempt) kill decision."""
    if probability <= 0.0:
        return False
    digest = hashlib.sha256(f"{seed}:{run_hash}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return fraction < probability


def _maybe_chaos_kill(job):
    """CI test hook: SIGKILL this worker per the chaos spec, if armed."""
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    probability, seed = parse_chaos_spec(spec)
    if chaos_decision(probability, seed, job["hash"], job.get("attempt", 1)):
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(job, conn):
    """Entry of one worker process: execute the job, pipe the outcome."""
    _maybe_chaos_kill(job)
    from repro.experiments.pool import _execute_job

    outcome = _execute_job(job)
    try:
        conn.send(outcome)
    finally:
        conn.close()
